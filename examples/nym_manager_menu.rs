//! The §3.5 Nym Manager workflow as a scripted menu session.
//!
//! "In a typical workflow, Nymix on boot presents the user with a Nym
//! Manager, offering options to start a fresh nym or load an existing
//! nym... the user returns to the Nym Manager and selects store nym.
//! The user enters a name for the nym, a password to encrypt it with,
//! and an indication of a cloud service on which to store the nym."
//!
//! This example drives that exact command sequence (scripted rather
//! than interactive, so it runs under CI) and prints what the user
//! would see.
//!
//! Run with: `cargo run --example nym_manager_menu`

use nymix::{NymManager, NymManagerError, StorageDest, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_workload::Site;

/// The menu commands a user can issue.
enum Command {
    StartFreshNym {
        name: &'static str,
    },
    Browse {
        name: &'static str,
        site: Site,
    },
    StoreNym {
        name: &'static str,
        password: &'static str,
    },
    CloseNym {
        name: &'static str,
    },
    LoadExistingNym {
        name: &'static str,
        password: &'static str,
    },
}

fn run(script: Vec<Command>) -> Result<(), NymManagerError> {
    let mut nymix = NymManager::new(31337, 64);
    nymix.register_cloud("dropbox", "pseudonymous-acct", "app-token");
    let dest = StorageDest::Cloud {
        provider: "dropbox".into(),
        account: "pseudonymous-acct".into(),
        credential: "app-token".into(),
    };
    let mut live: std::collections::BTreeMap<&str, nymix::NymId> = Default::default();

    for cmd in script {
        match cmd {
            Command::StartFreshNym { name } => {
                let (id, b) =
                    nymix.create_nym(name, AnonymizerKind::Tor, UsageModel::Persistent)?;
                live.insert(name, id);
                println!("> start a fresh nym '{name}'");
                println!("  {}", b.render(name));
            }
            Command::Browse { name, site } => {
                let id = live[name];
                let t = nymix.visit_site(id, site)?;
                println!("> browse {:?} in '{name}'  ({:.1}s)", site, t.as_secs_f64());
            }
            Command::StoreNym { name, password } => {
                let id = live[name];
                let (bytes, dur) = nymix.save_nym(id, password, &dest)?;
                println!(
                    "> store nym '{name}' -> dropbox ({} bytes sealed, {:.1}s upload)",
                    bytes,
                    dur.as_secs_f64()
                );
            }
            Command::CloseNym { name } => {
                let id = live.remove(name).expect("script bug: nym not live");
                nymix.destroy_nym(id)?;
                println!("> close nym '{name}' (memory wiped)");
            }
            Command::LoadExistingNym { name, password } => {
                let (id, b) = nymix.restore_nym(
                    name,
                    AnonymizerKind::Tor,
                    UsageModel::Persistent,
                    password,
                    &dest,
                )?;
                live.insert(name, id);
                println!("> load an existing nym '{name}'");
                println!("  {}", b.render(name));
            }
        }
    }

    println!(
        "\nsession over; host at {:.0} MiB; local evidence: {} blobs",
        nymix.hypervisor().used_memory_mib(),
        nymix.local_store().confiscate().len()
    );
    Ok(())
}

fn main() {
    // Night one: create the pseudonymous Twitter nym, log in, store it.
    // Night two: load it back (credentials intact), read, store again.
    let script = vec![
        Command::StartFreshNym { name: "tyr-press" },
        Command::Browse {
            name: "tyr-press",
            site: Site::Twitter,
        },
        Command::StoreNym {
            name: "tyr-press",
            password: "len(gth)-of-rope",
        },
        Command::CloseNym { name: "tyr-press" },
        Command::LoadExistingNym {
            name: "tyr-press",
            password: "len(gth)-of-rope",
        },
        Command::Browse {
            name: "tyr-press",
            site: Site::Twitter,
        },
        Command::StoreNym {
            name: "tyr-press",
            password: "len(gth)-of-rope",
        },
        Command::CloseNym { name: "tyr-press" },
    ];
    run(script).expect("workflow succeeds");
}
