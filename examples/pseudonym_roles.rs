//! Alice's workflow (§2, Freetopia): three unlinkable roles — work
//! mail, family social media, and an anonymous forum — each in its own
//! nymbox, with different persistence models and anonymizers.
//!
//! Run with: `cargo run --example pseudonym_roles`

use nymix::{NymManager, StorageDest, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_workload::Site;

fn main() {
    let mut nymix = NymManager::new(1001, 64);
    nymix.register_cloud("drive", "pseud-alpha", "tok");

    // Role 1: work e-mail. Low sensitivity; incognito mode gives a
    // pristine environment without Tor's latency.
    let (work, _) = nymix
        .create_nym("work", AnonymizerKind::Incognito, UsageModel::PreConfigured)
        .expect("capacity");
    let t = nymix.visit_site(work, Site::Gmail).expect("live");
    println!("work nym: gmail in {:.1}s over incognito", t.as_secs_f64());

    // Role 2: family social media, kept apart from work. Tor, with a
    // persistent profile so logins survive.
    let (family, _) = nymix
        .create_nym("family", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    let t = nymix.visit_site(family, Site::Facebook).expect("live");
    println!("family nym: facebook in {:.1}s over tor", t.as_secs_f64());

    // Role 3: the forum she'd rather keep to herself — Dissent for
    // traffic-analysis resistance, ephemeral so no trace outlives the
    // session.
    let (forum, _) = nymix
        .create_nym("forum", AnonymizerKind::Dissent, UsageModel::Ephemeral)
        .expect("capacity");
    let t = nymix.visit_site(forum, Site::Slashdot).expect("live");
    println!(
        "forum nym: slashdot in {:.1}s over dissent",
        t.as_secs_f64()
    );

    // The three roles are structurally unlinkable: identical guest
    // fingerprints, separate anonymizer instances, no shared state.
    let fp = |id| {
        let nb = nymix.nymbox(id).expect("live").clone();
        nymix
            .hypervisor()
            .vm(nb.anon_vm)
            .expect("vm")
            .fingerprint()
            .canonical_string()
    };
    assert_eq!(fp(work), fp(family));
    assert_eq!(fp(family), fp(forum));
    println!("all three AnonVMs present identical fingerprints");
    let exits: Vec<String> = [work, family, forum]
        .iter()
        .map(|id| {
            nymix
                .anonymizer(*id)
                .expect("live")
                .exit_address(nymix.public_ip())
                .to_string()
        })
        .collect();
    println!("exit addresses per role: {exits:?}");

    // End of day: family persists to the cloud; forum evaporates.
    let dest = StorageDest::Cloud {
        provider: "drive".into(),
        account: "pseud-alpha".into(),
        credential: "tok".into(),
    };
    let (bytes, _) = nymix.save_nym(family, "family-pw", &dest).expect("save");
    println!("family nym sealed: {bytes} bytes to the cloud");
    for id in [work, family, forum] {
        nymix.destroy_nym(id).expect("live");
    }
    println!(
        "all nymboxes destroyed; host memory back to {:.0} MiB",
        nymix.hypervisor().used_memory_mib()
    );

    // Tomorrow: the family nym comes back with logins intact.
    let (family2, breakdown) = nymix
        .restore_nym(
            "family",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "family-pw",
            &dest,
        )
        .expect("restore");
    println!(
        "family nym restored (ephemeral fetch {:.1}s); facebook login kept: {}",
        breakdown.ephemeral_fetch.as_secs_f64(),
        nymix
            .hypervisor()
            .vm(nymix.nymbox(family2).expect("live").anon_vm)
            .expect("vm")
            .disk()
            .exists(&nymix_fs::Path::new(
                "/home/user/.config/chromium/logins/facebook.com"
            ))
    );
}
