//! A multi-nym fleet: one user, eight concurrent pseudonyms — the
//! paper's "explicit, first-class control over pseudonyms representing
//! the multiple roles or personas they may use online" (§3.1), run at
//! fleet scale on a larger host.
//!
//! Eight persistent nyms browse different sites, then snapshot
//! *together* through the batched store pipeline: dirty-detection per
//! session, chunk hashing batched across sessions, sealing on one
//! thread per session, and one backend round trip per destination.
//! The whole fleet is then destroyed (amnesia) and restored, and each
//! nym's state comes back isolated — no nym's chunks, deltas or base
//! can satisfy another's restore. Then the fleet snapshots to the
//! crash-consistent journaled disk, the device loses power mid-save,
//! and a fresh manager recovers every nym from the torn image.
//! Finally the chains stripe 2-of-3 across three independent providers:
//! a provider that is dark during the save is absorbed by the write
//! quorum, the fleet restores whole from the survivors, and one repair
//! pass re-materializes the missed shards once the provider returns.
//!
//! Run with: `cargo run --release --example nym_fleet`
//!
//! With `NYMIX_TRACE=1` the run also records a privacy-disciplined
//! Chrome trace (see `OBSERVABILITY.md`) of every pipeline stage and
//! writes it to `NYMIX_TRACE_OUT` (default `nym_fleet_trace.json`),
//! plus an end-of-run metrics snapshot. Validate the artifact with
//! `cargo run -p nymix-obs --bin trace_check -- <path>`.

use nymix::{NymFleet, NymManager, SaveKind, StorageDest, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_store::{CrashMode, FaultPlan};
use nymix_workload::Site;

const FLEET: usize = 8;

fn dest_for(i: usize) -> StorageDest {
    // Each nym keeps its own pseudonymous account on the shared
    // provider — the provider sees eight unlinkable accounts.
    StorageDest::Cloud {
        provider: "dropbox".into(),
        account: format!("acct-{i}"),
        credential: format!("tok-{i}"),
    }
}

fn main() {
    let tracing = std::env::var("NYMIX_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
    if tracing {
        nymix_obs::set_enabled(true);
    }

    // A 64 GiB host: the paper's 16 GiB testbed admits ~22 nymboxes;
    // fleets want headroom (each nymbox costs ~706 MiB).
    let mut nymix = NymManager::with_host_ram(2026, 8, 65_536);
    for i in 0..FLEET {
        nymix.register_cloud("dropbox", &format!("acct-{i}"), &format!("tok-{i}"));
    }

    // Spawn the fleet and give every nym its own browsing life.
    let fleet = NymFleet::spawn(
        &mut nymix,
        "persona",
        FLEET,
        AnonymizerKind::Tor,
        UsageModel::Persistent,
    )
    .expect("host admits the fleet");
    let sites = [
        Site::Twitter,
        Site::Bbc,
        Site::Facebook,
        Site::Youtube,
        Site::Slashdot,
        Site::Espn,
        Site::TorBlog,
        Site::Gmail,
    ];
    let loads = fleet
        .visit_round(&mut nymix, |i| sites[i % sites.len()])
        .expect("fleet browses");
    println!(
        "{FLEET} nyms browsing: first page {:.1}s, used host memory {:.0} MiB",
        loads[0].as_secs_f64(),
        nymix.hypervisor().used_memory_mib()
    );

    // First snapshot round: every chain starts with a full archive.
    let round1 = fleet
        .save_round(&mut nymix, "fleet-pw", dest_for)
        .expect("fleet saves");
    let full_bytes: usize = round1.iter().map(|(_, b, _)| b).sum();
    assert!(round1.iter().all(|(k, _, _)| *k == SaveKind::Full));
    println!(
        "fleet save #1 (full): {full_bytes} sealed bytes, concurrent completion {:.1}s",
        round1[0].2.as_secs_f64()
    );

    // A second round of check-ins on the same sites dirties only a
    // slice of each nym's state; the next batched save ships deltas +
    // the chunks each write touched, not eight re-sealed archives.
    fleet
        .visit_round(&mut nymix, |i| sites[i % sites.len()])
        .expect("fleet browses again");
    let round2 = fleet
        .save_round(&mut nymix, "fleet-pw", dest_for)
        .expect("fleet delta saves");
    let delta_bytes: usize = round2.iter().map(|(_, b, _)| b).sum();
    assert!(round2.iter().all(|(k, _, _)| *k == SaveKind::Delta));
    println!(
        "fleet save #2 (delta): {delta_bytes} sealed bytes ({:.1}x less than full)",
        full_bytes as f64 / delta_bytes as f64
    );

    // Amnesia for the whole fleet, then restore it.
    let names = fleet.names().to_vec();
    fleet.destroy_all(&mut nymix).expect("fleet teardown");
    assert_eq!(nymix.hypervisor().vm_count(), 0);
    let (restored, breakdowns) = NymFleet::restore_all(
        &mut nymix,
        &names,
        AnonymizerKind::Tor,
        UsageModel::Persistent,
        "fleet-pw",
        dest_for,
    )
    .expect("fleet restores");
    println!(
        "fleet restored: {} nyms, ephemeral fetch {:.1}s each",
        restored.ids().len(),
        breakdowns[0].ephemeral_fetch.as_secs_f64()
    );

    // Every provider interaction showed an anonymizer exit, never the
    // user's address — across both batched rounds and the restores.
    let user_ip = nymix.public_ip();
    let provider = nymix.cloud_provider("dropbox").expect("registered");
    assert!(provider.access_log().total_recorded() > 0);
    for entry in provider.access_log() {
        assert_ne!(entry.observed_ip, user_ip, "provider saw the user");
    }
    println!(
        "provider observed {} operations, none from the user's address",
        provider.access_log().total_recorded()
    );

    // Crash-consistent disk tier: snapshot the restored fleet to the
    // journaled disk store, then cut power during the *next* batched
    // save. The write-ahead journal makes every batch atomic, so a
    // fresh manager attached to the torn device recovers the whole
    // fleet at the last durable save — never a blend.
    let disk_round = restored
        .save_round(&mut nymix, "fleet-pw", |_| StorageDest::Disk)
        .expect("fleet saves to disk");
    println!(
        "fleet save #3 (journaled disk): {} sealed bytes, device commit {:.0} ms",
        disk_round.iter().map(|(_, b, _)| b).sum::<usize>(),
        disk_round[0].2.as_secs_f64() * 1e3
    );
    let armed = nymix.disk_store().disk().ops() + 3; // dies mid-batch
    nymix.set_disk_fault_plan(FaultPlan::kill_at_op(armed));
    let cut = restored.save_round(&mut nymix, "fleet-pw", |_| StorageDest::Disk);
    assert!(cut.is_err(), "the armed power cut must abort the save");

    let mut recovered = NymManager::with_host_ram(2027, 8, 65_536);
    recovered
        .attach_disk(nymix.crash_disk(CrashMode::All))
        .expect("journal recovery never fails on a torn image");
    let (back, _) = NymFleet::restore_all(
        &mut recovered,
        &names,
        AnonymizerKind::Tor,
        UsageModel::Persistent,
        "fleet-pw",
        |_| StorageDest::Disk,
    )
    .expect("every nym survives the power cut");
    assert_eq!(back.ids().len(), FLEET);
    println!(
        "power cut mid-save: fresh manager recovered all {} nyms from the torn image",
        back.ids().len()
    );

    // Multi-provider placement: no single provider is a point of
    // failure *or* surveillance. The fleet's chains stripe 2-of-3
    // across three independent providers (1.5x storage, any single
    // loss survivable) — and one of the three is already dark when the
    // save lands, so the batch commits on the two-child quorum and the
    // missed shards queue for repair.
    recovered.register_striped(
        2,
        &[
            ("dropbox", "stripe-acct", "stripe-tok"),
            ("gdrive", "stripe-acct", "stripe-tok"),
            ("s3", "stripe-acct", "stripe-tok"),
        ],
    );
    recovered.striped_provider_mut("gdrive").unwrap().outage();
    let striped_round = back
        .save_round(&mut recovered, "fleet-pw", |_| StorageDest::Striped)
        .expect("a degraded 2-of-3 save still meets quorum");
    let queued = recovered.striped_store().unwrap().pending_repairs();
    assert!(queued > 0, "the dark provider's shards queue for repair");
    println!(
        "fleet save #4 (2-of-3 striped, one provider dark): {} sealed bytes, {queued} shards queued for repair",
        striped_round.iter().map(|(_, b, _)| b).sum::<usize>(),
    );

    // Amnesia again, then restore with the provider *still* down:
    // every chain object decodes from the two surviving shards.
    back.destroy_all(&mut recovered).expect("fleet teardown");
    let (survivors, _) = NymFleet::restore_all(
        &mut recovered,
        &names,
        AnonymizerKind::Tor,
        UsageModel::Persistent,
        "fleet-pw",
        |_| StorageDest::Striped,
    )
    .expect("2-of-3 survives any single provider outage");
    assert_eq!(survivors.ids().len(), FLEET);

    // The provider returns; one repair pass reads only the degraded
    // objects and re-materializes the shards it missed.
    recovered.striped_provider_mut("gdrive").unwrap().heal();
    let report = recovered.repair_striped().expect("placement registered");
    assert_eq!(report.shards_still_missing, 0);
    assert_eq!(recovered.striped_store().unwrap().pending_repairs(), 0);
    println!(
        "provider outage absorbed: {FLEET} nyms restored degraded, {} shards re-materialized on repair",
        report.shards_rebuilt
    );

    // End-of-run observability: the Chrome trace of every pipeline
    // stage plus the merged metrics snapshot. Both artifacts carry
    // only registered static labels and plain numbers — safe to ship.
    if tracing {
        let snap = nymix_obs::snapshot();
        println!(
            "obs: disk.garbage_bytes={} placement.repair_queue={} (snapshot follows)",
            snap.gauge("disk.garbage_bytes"),
            snap.gauge("placement.repair_queue"),
        );
        println!("{}", snap.to_json());
        let out =
            std::env::var("NYMIX_TRACE_OUT").unwrap_or_else(|_| "nym_fleet_trace.json".to_string());
        let trace = nymix_obs::trace_json();
        std::fs::write(&out, &trace).expect("writing trace file");
        println!("wrote Chrome trace to {out} ({} bytes)", trace.len());
    }
}
