//! The §5.1 validation, as a runnable audit: launch several nyms, fire
//! the full probe matrix, and print the simulated-Wireshark verdict.
//!
//! Run with: `cargo run --example isolation_audit`

use nymix::validate_isolation;

fn main() {
    for n in [1usize, 4, 8] {
        match validate_isolation(n) {
            Ok(report) => {
                println!(
                    "== {n} concurrent nym(s): {} probes ==",
                    report.probes.len()
                );
                for p in &report.probes {
                    println!(
                        "  [{}] {:<40} delivered={} expected={}",
                        if p.ok() { "ok" } else { "FAIL" },
                        p.label,
                        p.delivered,
                        p.expected_delivered
                    );
                }
                println!(
                    "  anon IP leaked to WAN: {} | cleartext DNS to LAN: {}",
                    report.anon_ip_leaked, report.cleartext_dns_leaked
                );
                println!(
                    "  verdict: {}\n",
                    if report.passed() { "PASS" } else { "FAIL" }
                );
                if !report.passed() {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("validation error at n={n}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("isolation matrix matches §5.1: AnonVMs reach only their CommVM;");
    println!("CommVMs reach only the Internet; nothing reaches the intranet.");
}
