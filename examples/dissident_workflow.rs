//! Bob's workflow (§2, Tyrannistan): boot the installed OS read-only,
//! pull a protest photo through the SaniVM scrubber, post it from a
//! Tor nym, and keep the nym's state in the cloud — nothing
//! incriminating on the machine.
//!
//! Run with: `cargo run --example dissident_workflow`

use nymix::{InstalledOs, NymManager, OsKind, SaniVm, StorageDest, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_fs::Path;
use nymix_sanitizer::{JpegImage, MediaFile, ParanoiaLevel};
use nymix_workload::Site;

fn main() {
    let mut nymix = NymManager::new(7, 64);
    nymix.register_cloud("dropbox", "throwaway-8841", "app-token");

    // 1. Boot the installed Windows as a (non-anonymous) nym to find
    //    the photo. The physical disk stays read-only; the repair pass
    //    writes only into a copy-on-write layer (§3.7).
    let mut windows = InstalledOs::new(OsKind::Windows7);
    let outcome = windows.repair_and_boot();
    println!(
        "installed Windows 7 booted as a nym: repair {:.1}s, boot {:.1}s, cow {:.1} MB",
        outcome.repair_time.as_secs_f64(),
        outcome.boot_time.as_secs_f64(),
        outcome.cow_mb()
    );
    // The camera dropped the protest photo on the Windows disk.
    windows
        .disk_mut()
        .write(
            &Path::new("/users/owner/pictures/protest.jpg"),
            MediaFile::Jpeg(JpegImage::protest_photo()).to_bytes(),
        )
        .expect("cow layer writable");

    // 2. Start the pseudonymous Twitter nym over Tor.
    let (nym, _) = nymix
        .create_nym("tyr-press", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    nymix.visit_site(nym, Site::Twitter).expect("live nym");

    // 3. The SaniVM is the only path for the photo into the nymbox.
    //    Paranoid level: strip EXIF (GPS + camera serial!), blur the
    //    two visible faces, add noise against watermarks.
    let mut sani = SaniVm::new();
    sani.mount_host_fs("windows", windows.disk().clone());
    let nb = nymix.nymbox(nym).expect("nym exists").clone();
    // Split-borrow the AnonVM out of the manager for the transfer.
    let report = {
        let anon_vm_id = nb.anon_vm;
        let hv = nymix.hypervisor_mut();
        let vm = hv.vm_mut(anon_vm_id).expect("anonvm exists");
        let (report, landed) = sani
            .transfer_to_nym(
                "windows",
                &Path::new("/users/owner/pictures/protest.jpg"),
                "tyr-press",
                vm,
                ParanoiaLevel::Paranoid,
                false,
            )
            .expect("paranoid scrub leaves nothing risky");
        println!("photo scrubbed and delivered to {landed}");
        report
    };
    println!("risks found: {}", report.risks_before.len());
    for r in &report.risks_before {
        println!("  - {:?}: {}", r.kind, r.detail);
    }
    println!("risks after scrubbing: {}", report.risks_after.len());

    // 4. Save the nym to the cloud, anonymously. The provider sees a
    //    Tor exit and ciphertext; the machine keeps nothing.
    let dest = StorageDest::Cloud {
        provider: "dropbox".into(),
        account: "throwaway-8841".into(),
        credential: "app-token".into(),
    };
    let (size, duration) = nymix
        .save_nym(nym, "len(gth)-of-rope", &dest)
        .expect("save");
    println!(
        "nym sealed to cloud: {size} bytes in {:.1}s",
        duration.as_secs_f64()
    );
    nymix.destroy_nym(nym).expect("nym exists");
    windows.discard_session();

    // 5. What an inspection finds: no local nym blobs, pristine
    //    Windows, provider log shows only the exit address.
    println!(
        "local evidence after shutdown: {} blobs (deniable: {})",
        nymix.local_store().confiscate().len(),
        nymix.local_store().is_deniable()
    );
    let provider = nymix.cloud_provider("dropbox").expect("registered");
    let user_ip = nymix.public_ip();
    let saw_user = provider
        .access_log()
        .iter()
        .any(|e| e.observed_ip == user_ip);
    println!("cloud provider ever saw Bob's IP: {saw_user}");

    // 6. Bob comes back for another browser session. Incremental saves
    //    upload only what changed — and with content-addressed chunking
    //    a write inside the big AnonVM disk record ships a manifest
    //    plus the few chunks it touched, not the whole record. Same
    //    session replayed with chunking off shows the dedup savings.
    let (full_chunked, delta_chunked) = follow_up_session(true);
    let (full_plain, delta_plain) = follow_up_session(false);
    println!("follow-up session, bytes uploaded through Tor:");
    println!("  first save (full):         {full_plain:>8} B record-granular, {full_chunked:>8} B chunked");
    println!("  next save (one session):   {delta_plain:>8} B record-granular, {delta_chunked:>8} B chunked");
    println!(
        "  chunked dedup saves {:.1}x on the incremental save",
        delta_plain as f64 / delta_chunked as f64
    );
}

/// One follow-up workflow — resume the nym, browse, save incrementally
/// twice — returning (full-save bytes, incremental-save bytes) actually
/// uploaded. Deterministic: the same seed drives both runs, so the only
/// difference is whether large records ship as chunk-manifest deltas.
fn follow_up_session(chunked: bool) -> (usize, usize) {
    let mut nymix = NymManager::new(11, 8);
    nymix.set_chunking(chunked);
    nymix.register_cloud("dropbox", "throwaway-8841", "app-token");
    let dest = StorageDest::Cloud {
        provider: "dropbox".into(),
        account: "throwaway-8841".into(),
        credential: "app-token".into(),
    };
    let (nym, _) = nymix
        .create_nym("tyr-press", AnonymizerKind::Tor, UsageModel::Persistent)
        .expect("capacity");
    nymix.visit_site(nym, Site::Twitter).expect("live nym");
    let (_, full_bytes, _) = nymix
        .save_nym_incremental(nym, "len(gth)-of-rope", &dest)
        .expect("save");
    // The next session dirties the browser cache inside the AnonVM.
    nymix.visit_site(nym, Site::TorBlog).expect("live nym");
    let (_, delta_bytes, _) = nymix
        .save_nym_incremental(nym, "len(gth)-of-rope", &dest)
        .expect("save");
    (full_bytes, delta_bytes)
}
