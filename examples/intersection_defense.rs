//! Long-term intersection attacks and the Buddies defence (§7).
//!
//! Simulates months of pseudonymous posting from a population of Tor
//! users that an adversary (the Tyrannistani ISP) can observe coming
//! online and offline. Without protection, every linkable post shrinks
//! the candidate set; with the Buddies floor, risky posts are delayed.
//!
//! Run with: `cargo run --example intersection_defense`

use std::collections::BTreeSet;

use nymix::intersection::{BuddiesPolicy, IntersectionAdversary, UserId};
use nymix_sim::Rng;

/// The adversary watches who is online each day; Bob (user 0) posts to
/// his pseudonymous feed on some days.
fn simulate(
    days: usize,
    population: u32,
    p_online: f64,
    floor: Option<usize>,
    seed: u64,
) -> (usize, u32, u32) {
    let mut rng = Rng::seed_from(seed);
    let mut adversary = IntersectionAdversary::new();
    let mut policy = floor.map(BuddiesPolicy::new);
    let mut posted = 0u32;
    let mut suppressed = 0u32;
    for _ in 0..days {
        // Who is online today? Bob always is (he wants to post).
        let mut online: BTreeSet<UserId> =
            (1..population).filter(|_| rng.chance(p_online)).collect();
        online.insert(0);
        // Bob posts roughly twice a week.
        if !rng.chance(2.0 / 7.0) {
            continue;
        }
        let allowed = match &mut policy {
            Some(p) => p.try_post(&online),
            None => true,
        };
        if allowed {
            posted += 1;
            adversary.observe_message(&online);
        } else {
            suppressed += 1;
        }
    }
    (adversary.candidate_count(), posted, suppressed)
}

fn main() {
    const DAYS: usize = 365;
    const POP: u32 = 200;
    const P_ONLINE: f64 = 0.5;

    println!("population {POP}, {DAYS} days, 50% daily online rate\n");

    let (candidates, posted, _) = simulate(DAYS, POP, P_ONLINE, None, 7);
    println!("without Buddies: {posted} posts, adversary candidate set = {candidates}");
    if candidates == 1 {
        println!("  -> Bob is fully de-anonymized by intersection alone");
    }

    for floor in [10usize, 30, 60] {
        let (candidates, posted, suppressed) = simulate(DAYS, POP, P_ONLINE, Some(floor), 7);
        println!(
            "with Buddies floor {floor:>2}: {posted} posts, {suppressed} suppressed, candidate set = {candidates}"
        );
        assert!(candidates >= floor, "policy must hold the floor");
    }

    println!("\nthe floor trades posting liveness for a guaranteed anonymity set —");
    println!("exactly the §7 plan for integrating Buddies into Nymix.");
}
