//! A day in the life, on the discrete-event engine: scheduled nym
//! sessions (morning news, lunchtime mail, evening pseudonymous
//! posting) driven by `nymix_sim::Engine`, with memory accounting
//! sampled on a timer.
//!
//! Run with: `cargo run --example daily_routine`

use nymix::{NymManager, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_sim::{Engine, SimDuration};
use nymix_workload::Site;

struct World {
    nymix: NymManager,
    peak_memory_mib: f64,
    sessions_done: u32,
}

fn session(
    engine: &mut Engine<World>,
    world: &mut World,
    name: &'static str,
    kind: AnonymizerKind,
    sites: &'static [Site],
) {
    let (id, startup) = world
        .nymix
        .create_nym(name, kind, UsageModel::Ephemeral)
        .expect("capacity");
    let mut total = startup.total();
    for site in sites {
        total = total + world.nymix.visit_site(id, *site).expect("live");
    }
    println!(
        "[{:>8}] {name:<10} {} site(s) in {:.1}s via {kind:?}",
        engine.now(),
        sites.len(),
        total.as_secs_f64()
    );
    world.peak_memory_mib = world
        .peak_memory_mib
        .max(world.nymix.hypervisor().used_memory_mib());
    // The session lasts half an hour, then the nym evaporates.
    engine.schedule_in(
        SimDuration::from_secs(30 * 60),
        move |eng, w: &mut World| {
            w.nymix.destroy_nym(id).expect("live");
            w.sessions_done += 1;
            println!("[{:>8}] {name:<10} destroyed (amnesia)", eng.now());
        },
    );
}

fn main() {
    let mut engine: Engine<World> = Engine::new();
    let mut world = World {
        nymix: NymManager::new(2026, 64),
        peak_memory_mib: 0.0,
        sessions_done: 0,
    };

    // 07:30 — coffee and headlines (throwaway nym, Tor).
    engine.schedule_in(
        SimDuration::from_secs(7 * 3600 + 30 * 60),
        |eng, w: &mut World| {
            session(
                eng,
                w,
                "news",
                AnonymizerKind::Tor,
                &[Site::Bbc, Site::Slashdot],
            );
        },
    );
    // 12:15 — lunch: mail + video (incognito is fine for this role).
    engine.schedule_in(
        SimDuration::from_secs(12 * 3600 + 15 * 60),
        |eng, w: &mut World| {
            session(
                eng,
                w,
                "lunch",
                AnonymizerKind::Incognito,
                &[Site::Gmail, Site::Youtube],
            );
        },
    );
    // 22:00 — the pseudonymous feed, over Dissent, while most users are
    // online (intersection hygiene).
    engine.schedule_in(SimDuration::from_secs(22 * 3600), |eng, w: &mut World| {
        session(
            eng,
            w,
            "nightpost",
            AnonymizerKind::Dissent,
            &[Site::Twitter],
        );
    });

    let end = engine.run(&mut world);
    println!("\nday finished at {end}");
    println!("sessions completed: {}", world.sessions_done);
    println!("peak host memory:   {:.0} MiB", world.peak_memory_mib);
    println!(
        "memory after teardown: {:.0} MiB (baseline)",
        world.nymix.hypervisor().used_memory_mib()
    );
    assert_eq!(world.sessions_done, 3);
}
