//! Quickstart: boot Nymix, start a fresh nym, browse, shut down.
//!
//! Run with: `cargo run --example quickstart`

use nymix::{NymManager, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_workload::Site;

fn main() {
    // A Nymix machine: 16 GiB quad-core host, 10 Mbit/s access link.
    // Seed 42 makes every run identical; browser byte volumes are
    // scaled 1:64 for speed.
    let mut nymix = NymManager::new(42, 64);

    // The §3.5 workflow: "On first use, the user selects start a fresh
    // nym." Each nym gets two VMs: a browsing AnonVM and a CommVM
    // running its own Tor instance.
    let (nym, startup) = nymix
        .create_nym("reader", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .expect("host has room for a nymbox");
    println!(
        "nymbox up: boot {:.1}s + tor {:.1}s",
        startup.boot_vm.as_secs_f64(),
        startup.start_anonymizer.as_secs_f64()
    );

    // Browse. All traffic rides the nym's private Tor client; the page
    // load time includes the anonymizer's byte and latency overhead.
    let load = nymix.visit_site(nym, Site::Twitter).expect("nym is live");
    println!("twitter.com loaded in {:.1}s", load.as_secs_f64());
    println!(
        "total: {:.1}s (paper: nymboxes load within 15-25s)",
        startup.total().as_secs_f64() + load.as_secs_f64()
    );

    // Memory cost (the Figure 3 accounting).
    println!(
        "host memory in use: {:.0} MiB (KSM saved {:.0} MiB)",
        nymix.hypervisor().used_memory_mib(),
        nymix.hypervisor().ksm_stats().saved_bytes() as f64 / (1024.0 * 1024.0),
    );

    // Ephemeral nym: closing it wipes every trace (§3.4 amnesia).
    nymix.destroy_nym(nym).expect("nym exists");
    println!("nym destroyed; memory wiped; no history anywhere.");
}
