//! The host hypervisor: admission, lifecycle, memory accounting.
//!
//! Models the evaluation host (§5.2): an i7 quad-core with 16 GiB of
//! RAM. "The host allocates disk and RAM from its own stash of RAM,
//! thus limiting the maximum number of nyms."
//!
//! ## Memory accounting model
//!
//! A VM's host cost has three parts:
//!
//! 1. **Touched guest RAM** — pages the guest has written since boot
//!    ("KVM obtains most of the requested memory for a VM at VM
//!    initialization", §5.2: booting touches ~88% of guest RAM).
//! 2. **RAM-backed disk** — the writable disk allocation (tmpfs),
//!    charged in full.
//! 3. **Per-VM VMM overhead** — QEMU process heap, device state.
//!
//! KSM savings are computed over touched (non-zero) pages only: frames
//! never faulted in cost nothing and are not scanned. The calibrated
//! post-boot shared fraction reproduces Figure 3's ">5% saving at
//! 8 nyms".

use std::collections::BTreeMap;

use nymix_fs::{Layer, LayerKind, Path, VerifiedImage};

use crate::cpu::CpuHost;
use crate::ksm::{self, KsmStats};
use crate::memory::PAGE_SIZE;
use crate::vm::{Vm, VmConfig, VmId, VmRole, VmState};

/// Calibration constants for the host model.
pub mod calib {
    /// Host RAM (16 GiB, §5.2).
    pub const HOST_RAM_MIB: u32 = 16_384;

    /// Hypervisor + desktop resident set before any nym starts.
    pub const HOST_BASE_MIB: u32 = 600;

    /// Per-VM VMM (QEMU process) overhead.
    pub const QEMU_OVERHEAD_MIB: u32 = 25;

    /// Fraction of guest RAM holding shared base-image content after
    /// boot (identical bytes in every VM; what KSM reclaims).
    pub const BOOT_SHARED_FRACTION: f64 = 0.092;

    /// Fraction of guest RAM holding VM-private content after boot.
    pub const BOOT_PRIVATE_FRACTION: f64 = 0.795;
}

/// Errors from hypervisor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypervisorError {
    /// Admission would exceed host RAM.
    InsufficientMemory {
        /// MiB requested by the new VM.
        requested_mib: u32,
        /// MiB free before the request.
        free_mib: u32,
    },
    /// No VM with that id.
    NoSuchVm(VmId),
    /// The read-only host OS partition failed Merkle verification; per
    /// §3.4 the only safe response is to refuse to start VMs.
    BaseImageTampered {
        /// Block that failed verification.
        block: usize,
    },
}

impl core::fmt::Display for HypervisorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HypervisorError::InsufficientMemory {
                requested_mib,
                free_mib,
            } => write!(
                f,
                "insufficient host memory: requested {requested_mib} MiB, free {free_mib} MiB"
            ),
            HypervisorError::NoSuchVm(id) => write!(f, "no such VM: {:?}", id),
            HypervisorError::BaseImageTampered { block } => write!(
                f,
                "host OS partition block {block} failed Merkle verification; refusing to start VMs"
            ),
        }
    }
}

impl std::error::Error for HypervisorError {}

/// The host hypervisor.
///
/// # Examples
///
/// ```
/// use nymix_vmm::{Hypervisor, VmConfig};
///
/// let mut hv = Hypervisor::paper_testbed_minimal();
/// let anon = hv.create_vm(VmConfig::anonvm()).unwrap();
/// let comm = hv.create_vm(VmConfig::commvm()).unwrap();
/// hv.boot(anon).unwrap();
/// hv.boot(comm).unwrap();
/// assert!(hv.used_memory_mib() > 600.0);
/// ```
#[derive(Debug, Clone)]
pub struct Hypervisor {
    host_ram_mib: u32,
    host_base_mib: u32,
    qemu_overhead_mib: u32,
    ksm_enabled: bool,
    cpu: CpuHost,
    base_layer: Layer,
    verified_base: Option<VerifiedImage>,
    vms: BTreeMap<VmId, Vm>,
    next_id: u64,
}

impl Hypervisor {
    /// A host with explicit parameters and base layer.
    pub fn new(host_ram_mib: u32, base_layer: Layer, cpu: CpuHost) -> Self {
        Self {
            host_ram_mib,
            host_base_mib: calib::HOST_BASE_MIB,
            qemu_overhead_mib: calib::QEMU_OVERHEAD_MIB,
            ksm_enabled: true,
            cpu,
            base_layer,
            verified_base: None,
            vms: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Pins the host OS partition to a Merkle-sealed block image; every
    /// subsequent VM creation verifies all base blocks against the
    /// pinned root (§3.4's integrity-check mechanism). The sealed image
    /// should be built from the same content as the base layer.
    pub fn enable_base_verification(&mut self, image: VerifiedImage) {
        self.verified_base = Some(image);
    }

    /// Raw access to the pinned image (tamper-injection in tests).
    pub fn verified_base_mut(&mut self) -> Option<&mut VerifiedImage> {
        self.verified_base.as_mut()
    }

    /// Verifies every block of the pinned host partition ("all disk
    /// blocks loaded from the host OS partition" are checked; VM
    /// creation reads the whole base image).
    pub fn verify_base_integrity(&mut self) -> Result<(), HypervisorError> {
        if let Some(v) = self.verified_base.as_mut() {
            for i in 0..v.block_count() {
                v.read_block(i)
                    .map_err(|e| HypervisorError::BaseImageTampered { block: e.block })?;
            }
        }
        Ok(())
    }

    /// The paper's testbed with the full Ubuntu-like base image.
    pub fn paper_testbed() -> Self {
        Self::new(
            calib::HOST_RAM_MIB,
            nymix_fs::BaseImage::ubuntu_like().to_layer(),
            CpuHost::paper_testbed(),
        )
    }

    /// The paper's testbed with a minimal base image (fast tests).
    pub fn paper_testbed_minimal() -> Self {
        Self::new(
            calib::HOST_RAM_MIB,
            nymix_fs::BaseImage::minimal().to_layer(),
            CpuHost::paper_testbed(),
        )
    }

    /// Enables or disables KSM (the ablation knob).
    pub fn set_ksm(&mut self, enabled: bool) {
        self.ksm_enabled = enabled;
    }

    /// Whether KSM is on.
    pub fn ksm_enabled(&self) -> bool {
        self.ksm_enabled
    }

    /// The host CPU.
    pub fn cpu(&self) -> &CpuHost {
        &self.cpu
    }

    /// Mutable host CPU.
    pub fn cpu_mut(&mut self) -> &mut CpuHost {
        &mut self.cpu
    }

    /// Builds the role-specific configuration layer (§3.4: network
    /// configuration files, `/etc/rc.local`, window manager startup).
    pub fn role_config_layer(role: VmRole) -> Layer {
        let mut layer = Layer::new(LayerKind::Config);
        let (rc, net) = match role {
            VmRole::Anon => (
                "start-xorg\nstart-chromium --proxy=socks5://10.0.2.2:9050\n",
                "iface eth0 inet static\naddress 10.0.2.15\ngateway 10.0.2.2\n",
            ),
            VmRole::Comm => (
                "start-anonymizer\niptables-restore /etc/nymix/redirect.rules\n",
                "iface eth0 inet static\naddress 10.0.2.2\niface eth1 inet dhcp\n",
            ),
            VmRole::Sani => (
                "start-xorg\nstart-scrubber --no-network\n",
                "# no network interfaces: SaniVM is air-gapped\n",
            ),
            VmRole::InstalledOs => (
                "# installed OS boots its own init\n",
                "iface eth0 inet dhcp\n",
            ),
        };
        layer.put_file(Path::new("/etc/rc.local"), rc.as_bytes().to_vec());
        layer.put_file(
            Path::new("/etc/network/interfaces"),
            net.as_bytes().to_vec(),
        );
        layer.put_file(
            Path::new("/etc/nymix/role"),
            format!("{role:?}").into_bytes(),
        );
        layer
    }

    /// Creates (but does not boot) a VM, enforcing memory admission and
    /// (when enabled) base-image integrity.
    pub fn create_vm(&mut self, config: VmConfig) -> Result<VmId, HypervisorError> {
        self.verify_base_integrity()?;
        let requested = config.host_ram_cost_mib() + self.qemu_overhead_mib;
        let free = self.free_memory_mib();
        if f64::from(requested) > free {
            return Err(HypervisorError::InsufficientMemory {
                requested_mib: requested,
                free_mib: free.max(0.0) as u32,
            });
        }
        let id = VmId(self.next_id);
        self.next_id += 1;
        let role_layer = Self::role_config_layer(config.role);
        let vm = Vm::new(id, config, self.base_layer.clone(), role_layer);
        self.vms.insert(id, vm);
        Ok(id)
    }

    /// Boots a created VM with the calibrated post-boot memory mix.
    pub fn boot(&mut self, id: VmId) -> Result<(), HypervisorError> {
        let vm = self.vms.get_mut(&id).ok_or(HypervisorError::NoSuchVm(id))?;
        vm.boot(calib::BOOT_SHARED_FRACTION, calib::BOOT_PRIVATE_FRACTION);
        Ok(())
    }

    /// Access to a VM.
    pub fn vm(&self, id: VmId) -> Result<&Vm, HypervisorError> {
        self.vms.get(&id).ok_or(HypervisorError::NoSuchVm(id))
    }

    /// Mutable access to a VM.
    pub fn vm_mut(&mut self, id: VmId) -> Result<&mut Vm, HypervisorError> {
        self.vms.get_mut(&id).ok_or(HypervisorError::NoSuchVm(id))
    }

    /// Destroys a VM: shutdown (secure wipe) and removal. "Nymix wipes
    /// any traces that the pseudonym ever existed" (§3.4).
    pub fn destroy_vm(&mut self, id: VmId) -> Result<(), HypervisorError> {
        let mut vm = self.vms.remove(&id).ok_or(HypervisorError::NoSuchVm(id))?;
        vm.shutdown();
        debug_assert!(vm.memory().is_wiped());
        Ok(())
    }

    /// Ids of all resident VMs.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.keys().copied().collect()
    }

    /// Number of resident VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// KSM statistics over all live VMs' touched pages.
    pub fn ksm_stats(&self) -> KsmStats {
        // Only non-zero pages are madvised/scanned; see module docs.
        let filtered: Vec<Vec<u64>> = self
            .vms
            .values()
            .filter(|vm| vm.state() != VmState::ShutDown)
            .map(|vm| {
                vm.memory()
                    .page_ids()
                    .iter()
                    .copied()
                    .filter(|&id| id != 0)
                    .collect()
            })
            .collect();
        ksm::scan(filtered.iter().map(|v| v.as_slice()))
    }

    /// Gross committed memory in MiB (before KSM), host base included.
    pub fn committed_memory_mib(&self) -> f64 {
        let mut total = f64::from(self.host_base_mib);
        for vm in self.vms.values() {
            if vm.state() == VmState::ShutDown {
                continue;
            }
            let (zero, shared, unique) = vm.memory().census();
            let _ = zero; // Untouched pages are never faulted in.
            let touched_bytes = (shared + unique) * PAGE_SIZE;
            total += touched_bytes as f64 / (1024.0 * 1024.0);
            total += f64::from(vm.config().disk_mib);
            total += f64::from(self.qemu_overhead_mib);
        }
        total
    }

    /// Used host memory in MiB after KSM merging (if enabled).
    pub fn used_memory_mib(&self) -> f64 {
        let committed = self.committed_memory_mib();
        if self.ksm_enabled {
            committed - self.ksm_stats().saved_bytes() as f64 / (1024.0 * 1024.0)
        } else {
            committed
        }
    }

    /// Free host memory in MiB under the admission model (gross
    /// allocations, not KSM-adjusted — KSM savings are best-effort and
    /// must not be promised to new VMs).
    pub fn free_memory_mib(&self) -> f64 {
        let mut reserved = f64::from(self.host_base_mib);
        for vm in self.vms.values() {
            if vm.state() == VmState::ShutDown {
                continue;
            }
            reserved += f64::from(vm.config().host_ram_cost_mib() + self.qemu_overhead_mib);
        }
        f64::from(self.host_ram_mib) - reserved
    }

    /// The Figure 3 dashed line: estimated gross RAM for `n` nymboxes
    /// (656 MiB per nymbox: 384+128 MiB guest RAM plus 128+16 MiB of
    /// RAM-backed disk).
    pub fn expected_memory_mib(n: usize) -> f64 {
        let per_nym =
            VmConfig::anonvm().host_ram_cost_mib() + VmConfig::commvm().host_ram_cost_mib();
        f64::from(calib::HOST_BASE_MIB) + n as f64 * f64::from(per_nym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv() -> Hypervisor {
        Hypervisor::paper_testbed_minimal()
    }

    fn launch_nymbox(hv: &mut Hypervisor) -> (VmId, VmId) {
        let anon = hv.create_vm(VmConfig::anonvm()).unwrap();
        let comm = hv.create_vm(VmConfig::commvm()).unwrap();
        hv.boot(anon).unwrap();
        hv.boot(comm).unwrap();
        (anon, comm)
    }

    #[test]
    fn creation_and_boot() {
        let mut hv = hv();
        let (anon, comm) = launch_nymbox(&mut hv);
        assert_eq!(hv.vm_count(), 2);
        assert_eq!(hv.vm(anon).unwrap().state(), VmState::Running);
        assert_eq!(hv.vm(comm).unwrap().state(), VmState::Running);
    }

    #[test]
    fn admission_control_limits_nyms() {
        let mut hv = hv();
        let mut count = 0;
        loop {
            match hv.create_vm(VmConfig::anonvm()) {
                Ok(id) => {
                    hv.boot(id).unwrap();
                    count += 1;
                }
                Err(HypervisorError::InsufficientMemory { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(count < 100, "admission control never triggered");
        }
        // 16384 - 600 base = 15784; each AnonVM costs 512+25=537.
        assert_eq!(count, 29);
    }

    #[test]
    fn destroy_frees_memory() {
        let mut hv = hv();
        let before = hv.free_memory_mib();
        let (anon, comm) = launch_nymbox(&mut hv);
        assert!(hv.free_memory_mib() < before);
        hv.destroy_vm(anon).unwrap();
        hv.destroy_vm(comm).unwrap();
        assert_eq!(hv.free_memory_mib(), before);
        assert!(matches!(
            hv.destroy_vm(anon),
            Err(HypervisorError::NoSuchVm(_))
        ));
    }

    #[test]
    fn ksm_savings_grow_with_nymboxes() {
        let mut hv = hv();
        let mut saved = Vec::new();
        for _ in 0..4 {
            launch_nymbox(&mut hv);
            saved.push(hv.ksm_stats().saved_bytes());
        }
        // Even one nymbox merges something: its AnonVM and CommVM share
        // base-image pages with each other.
        assert!(saved[0] > 0);
        for w in saved.windows(2) {
            assert!(w[1] > w[0], "savings should grow: {saved:?}");
        }
    }

    #[test]
    fn ksm_toggle_changes_used_memory() {
        let mut hv = hv();
        for _ in 0..3 {
            launch_nymbox(&mut hv);
        }
        let with = hv.used_memory_mib();
        hv.set_ksm(false);
        let without = hv.used_memory_mib();
        assert!(without > with);
        assert_eq!(without, hv.committed_memory_mib());
    }

    #[test]
    fn used_memory_tracks_paper_scale() {
        // Eight nymboxes: used memory lands in the Figure 3 band
        // (~5.2 GiB gross, >5% KSM saving).
        let mut hv = hv();
        for _ in 0..8 {
            launch_nymbox(&mut hv);
        }
        let committed = hv.committed_memory_mib();
        let used = hv.used_memory_mib();
        let expected = Hypervisor::expected_memory_mib(8);
        assert!((5000.0..6000.0).contains(&expected), "expected {expected}");
        assert!(committed < expected * 1.02, "committed {committed}");
        assert!(committed > expected * 0.85, "committed {committed}");
        let saving = (committed - used) / committed;
        assert!(saving > 0.05, "KSM saving {saving}");
        assert!(saving < 0.12, "KSM saving {saving}");
    }

    #[test]
    fn shutdown_vms_cost_nothing() {
        let mut hv = hv();
        let (anon, comm) = launch_nymbox(&mut hv);
        let used_live = hv.used_memory_mib();
        hv.vm_mut(anon).unwrap().shutdown();
        hv.vm_mut(comm).unwrap().shutdown();
        assert!(hv.used_memory_mib() < used_live);
        assert_eq!(hv.used_memory_mib(), f64::from(calib::HOST_BASE_MIB));
    }

    #[test]
    fn base_verification_blocks_tampered_image() {
        let mut hv = hv();
        let base = nymix_fs::BaseImage::minimal();
        hv.enable_base_verification(base.to_verified_image());
        // Pristine image: VMs start fine.
        let id = hv.create_vm(VmConfig::commvm()).unwrap();
        hv.boot(id).unwrap();
        // A single flipped byte on the "USB stick": refuse to start.
        hv.verified_base_mut()
            .unwrap()
            .raw_image_mut()
            .corrupt(0, 100, 0x40)
            .unwrap();
        match hv.create_vm(VmConfig::anonvm()) {
            Err(HypervisorError::BaseImageTampered { block: 0 }) => {}
            other => panic!("expected tamper refusal, got {other:?}"),
        }
    }

    #[test]
    fn role_config_layers_differ() {
        let anon = Hypervisor::role_config_layer(VmRole::Anon);
        let comm = Hypervisor::role_config_layer(VmRole::Comm);
        let a = anon.get(&Path::new("/etc/rc.local")).unwrap();
        let c = comm.get(&Path::new("/etc/rc.local")).unwrap();
        assert_ne!(a, c);
        let sani = Hypervisor::role_config_layer(VmRole::Sani);
        if let nymix_fs::Node::File(data) = sani.get(&Path::new("/etc/network/interfaces")).unwrap()
        {
            assert!(String::from_utf8_lossy(data).contains("air-gapped"));
        } else {
            panic!("missing interfaces file");
        }
    }
}
