//! The host CPU model.
//!
//! The evaluation host is "an Intel I7 quad core desktop with hardware
//! virtualization extensions" (§5.2). Figure 4 shows virtualization
//! costing about 20% versus native, and parallel nymboxes outperforming
//! a naive perfectly-parallel extrapolation (hyper-threading plus
//! workload idle phases overlap under time-sharing).
//!
//! [`CpuHost`] wraps a fluid resource: each vCPU is a weight-1 job
//! capped at one core; virtualized work is inflated by the overhead
//! factor before submission.

use nymix_sim::{FluidResource, JobId, SimTime};

/// Calibration constants for the paper's testbed CPU.
pub mod calib {
    /// Physical cores of the i7 testbed.
    pub const HOST_CORES: f64 = 4.0;

    /// Extra throughput available from hyper-threading when the cores
    /// are oversubscribed (a conservative 22% uplift).
    pub const HT_UPLIFT: f64 = 0.22;

    /// Fraction of cycles lost to virtualization ("about a 20%
    /// overhead", §5.2).
    pub const VIRT_OVERHEAD: f64 = 0.20;
}

/// A host CPU shared by VMs' vCPUs.
///
/// Work is measured in *core-seconds of native computation*. A
/// virtualized job consumes `work / (1 - overhead)` core-seconds.
///
/// # Examples
///
/// ```
/// use nymix_vmm::CpuHost;
/// use nymix_sim::SimTime;
///
/// let mut cpu = CpuHost::paper_testbed();
/// let job = cpu.submit_virtualized(SimTime::ZERO, 8.0);
/// // One vCPU on an idle quad-core runs at 1 core: 8 native units at
/// // 20% overhead take 10 seconds.
/// let done = cpu.next_completion(SimTime::ZERO).unwrap();
/// assert_eq!(done, SimTime(10_000_000));
/// let finished = cpu.advance(done);
/// assert_eq!(finished, vec![job]);
/// ```
#[derive(Debug, Clone)]
pub struct CpuHost {
    fluid: FluidResource,
    cores: f64,
    ht_uplift: f64,
    virt_overhead: f64,
}

impl CpuHost {
    /// A host with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `virt_overhead` is not in `[0, 1)`.
    pub fn new(cores: f64, ht_uplift: f64, virt_overhead: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&virt_overhead),
            "overhead must be a fraction"
        );
        // The fluid capacity includes the HT uplift; per-job caps keep a
        // single vCPU from exceeding one physical core, so the uplift
        // only materializes under oversubscription — matching how SMT
        // behaves.
        Self {
            fluid: FluidResource::new(cores * (1.0 + ht_uplift)),
            cores,
            ht_uplift,
            virt_overhead,
        }
    }

    /// The paper's i7 testbed.
    pub fn paper_testbed() -> Self {
        Self::new(calib::HOST_CORES, calib::HT_UPLIFT, calib::VIRT_OVERHEAD)
    }

    /// Physical core count.
    pub fn cores(&self) -> f64 {
        self.cores
    }

    /// Configured virtualization overhead fraction.
    pub fn virt_overhead(&self) -> f64 {
        self.virt_overhead
    }

    /// Configured hyper-threading uplift fraction.
    pub fn ht_uplift(&self) -> f64 {
        self.ht_uplift
    }

    /// Submits native (non-virtualized) work pinned to one core.
    pub fn submit_native(&mut self, now: SimTime, core_seconds: f64) -> JobId {
        self.fluid.add_job(now, core_seconds, 1.0, 1.0)
    }

    /// Submits work from a single-vCPU VM: inflated by the
    /// virtualization overhead and capped at one core.
    pub fn submit_virtualized(&mut self, now: SimTime, core_seconds: f64) -> JobId {
        let inflated = core_seconds / (1.0 - self.virt_overhead);
        self.fluid.add_job(now, inflated, 1.0, 1.0)
    }

    /// Advances to `now`; returns completed jobs.
    pub fn advance(&mut self, now: SimTime) -> Vec<JobId> {
        self.fluid.advance(now)
    }

    /// Next completion time, if any job is running.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        self.fluid.next_completion(now)
    }

    /// Number of active jobs.
    pub fn active_jobs(&self) -> usize {
        self.fluid.active_jobs()
    }

    /// Current rate (core-share) of a job.
    pub fn rate(&self, job: JobId) -> Option<f64> {
        self.fluid.rate(job)
    }

    /// Runs `n` identical virtualized jobs of `core_seconds` each,
    /// started together, to completion; returns each job's duration in
    /// seconds (same order as submission).
    pub fn run_batch_virtualized(&mut self, core_seconds: f64, n: usize) -> Vec<f64> {
        let start = SimTime::ZERO;
        let jobs: Vec<JobId> = (0..n)
            .map(|_| self.submit_virtualized(start, core_seconds))
            .collect();
        let mut done: Vec<(JobId, SimTime)> = Vec::new();
        let mut now = start;
        while let Some(next) = self.fluid.next_completion(now) {
            let finished = self.fluid.advance(next);
            for id in finished {
                done.push((id, next));
            }
            now = next;
        }
        jobs.iter()
            .map(|j| {
                done.iter()
                    .find(|(id, _)| id == j)
                    .map(|(_, t)| t.as_secs_f64())
                    .expect("job completed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_faster_than_virtualized() {
        let mut cpu = CpuHost::paper_testbed();
        let native = cpu.run_batch_virtualized(0.0, 0); // warm-up no-op
        assert!(native.is_empty());
        let mut a = CpuHost::paper_testbed();
        a.submit_native(SimTime::ZERO, 10.0);
        let t_native = a.next_completion(SimTime::ZERO).unwrap().as_secs_f64();
        let mut b = CpuHost::paper_testbed();
        b.submit_virtualized(SimTime::ZERO, 10.0);
        let t_virt = b.next_completion(SimTime::ZERO).unwrap().as_secs_f64();
        assert_eq!(t_native, 10.0);
        assert_eq!(t_virt, 12.5); // 20% overhead
        assert!((t_virt / t_native - 1.25).abs() < 1e-9);
    }

    #[test]
    fn up_to_four_vcpus_run_unimpeded() {
        let mut cpu = CpuHost::paper_testbed();
        let durations = cpu.run_batch_virtualized(8.0, 4);
        for d in durations {
            assert!((d - 10.0).abs() < 1e-6, "duration {d}");
        }
    }

    #[test]
    fn eight_vcpus_oversubscribe_with_ht_uplift() {
        let mut cpu = CpuHost::paper_testbed();
        let durations = cpu.run_batch_virtualized(8.0, 8);
        // 8 jobs share 4*(1+0.22)=4.88 cores: each gets 0.61 cores.
        let expect = 10.0 / 0.61;
        for d in durations {
            assert!((d - expect).abs() < 0.01, "duration {d} expect {expect}");
        }
        // Better than the naive "perfectly parallel on 4 cores"
        // extrapolation of 2x the 4-job duration (20 s).
        let naive = 20.0;
        assert!(expect < naive);
    }

    #[test]
    fn five_jobs_share_fairly() {
        let mut cpu = CpuHost::new(4.0, 0.0, 0.2);
        let durations = cpu.run_batch_virtualized(8.0, 5);
        // 5 jobs, 4 cores, no HT: each gets 0.8 cores → 12.5 s.
        for d in durations {
            assert!((d - 12.5).abs() < 0.01, "duration {d}");
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_overhead_rejected() {
        let _ = CpuHost::new(4.0, 0.0, 1.0);
    }
}
