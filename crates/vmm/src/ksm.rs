//! Kernel samepage merging.
//!
//! §4.2: "Nymix enables KSM ... a memory-saving de-duplication feature
//! that scans pages and merges when applicable. Because all Nymix VMs
//! and the hypervisor use the same disk image and hence applications,
//! Nymix can save a bit of RAM through the use of KSM" — over 5% at
//! eight nyms (§5.2, Figure 3).
//!
//! The scanner takes every resident page id on the host and computes the
//! merge outcome exactly: pages with equal content collapse to one
//! physical frame.

use std::collections::HashMap;

use crate::memory::PAGE_SIZE;

/// Result of a KSM scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KsmStats {
    /// Logical pages scanned (every mapped page of every VM).
    pub pages_scanned: usize,
    /// Distinct physical frames after merging.
    pub pages_physical: usize,
    /// Frames that back two or more logical pages (Linux's
    /// `pages_shared`).
    pub pages_shared: usize,
    /// Logical pages that are backed by a shared frame but are not the
    /// "primary" copy (Linux's `pages_sharing`) — each one is a page of
    /// RAM saved.
    pub pages_sharing: usize,
}

impl KsmStats {
    /// Bytes of host RAM reclaimed by merging.
    pub fn saved_bytes(&self) -> usize {
        self.pages_sharing * PAGE_SIZE
    }

    /// Bytes of host RAM actually backing the scanned pages.
    pub fn resident_bytes(&self) -> usize {
        self.pages_physical * PAGE_SIZE
    }
}

/// Scans all page-id slices and computes the merge outcome.
///
/// # Examples
///
/// ```
/// use nymix_vmm::ksm::scan;
///
/// // Three logical pages, two with identical content.
/// let stats = scan([&[7u64, 7, 9][..]].into_iter());
/// assert_eq!(stats.pages_scanned, 3);
/// assert_eq!(stats.pages_physical, 2);
/// assert_eq!(stats.pages_sharing, 1);
/// ```
pub fn scan<'a, I>(page_sets: I) -> KsmStats
where
    I: Iterator<Item = &'a [u64]>,
{
    let mut counts: HashMap<u64, usize> = HashMap::new();
    let mut scanned = 0usize;
    for set in page_sets {
        scanned += set.len();
        for &id in set {
            *counts.entry(id).or_insert(0) += 1;
        }
    }
    let physical = counts.len();
    let shared = counts.values().filter(|&&c| c >= 2).count();
    let sharing = counts.values().filter(|&&c| c >= 2).map(|&c| c - 1).sum();
    KsmStats {
        pages_scanned: scanned,
        pages_physical: physical,
        pages_shared: shared,
        pages_sharing: sharing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{PageClass, VmMemory};

    #[test]
    fn empty_scan() {
        let stats = scan(core::iter::empty());
        assert_eq!(stats, KsmStats::default());
        assert_eq!(stats.saved_bytes(), 0);
    }

    #[test]
    fn identical_vms_merge_almost_entirely() {
        let mut a = VmMemory::allocate(1, PAGE_SIZE * 100);
        let mut b = VmMemory::allocate(2, PAGE_SIZE * 100);
        a.fill(0, 100, PageClass::Shared(0));
        b.fill(0, 100, PageClass::Shared(0));
        let stats = scan([a.page_ids(), b.page_ids()].into_iter());
        assert_eq!(stats.pages_scanned, 200);
        assert_eq!(stats.pages_physical, 100);
        assert_eq!(stats.pages_sharing, 100);
        assert_eq!(stats.saved_bytes(), 100 * PAGE_SIZE);
    }

    #[test]
    fn unique_vms_do_not_merge() {
        let mut a = VmMemory::allocate(1, PAGE_SIZE * 50);
        let mut b = VmMemory::allocate(2, PAGE_SIZE * 50);
        a.fill(0, 50, PageClass::Unique(0));
        b.fill(0, 50, PageClass::Unique(0));
        let stats = scan([a.page_ids(), b.page_ids()].into_iter());
        assert_eq!(stats.pages_physical, 100);
        assert_eq!(stats.pages_sharing, 0);
    }

    #[test]
    fn zero_pages_collapse_to_one_frame() {
        let a = VmMemory::allocate(1, PAGE_SIZE * 10);
        let b = VmMemory::allocate(2, PAGE_SIZE * 10);
        let stats = scan([a.page_ids(), b.page_ids()].into_iter());
        assert_eq!(stats.pages_physical, 1);
        assert_eq!(stats.pages_shared, 1);
        assert_eq!(stats.pages_sharing, 19);
    }

    #[test]
    fn savings_grow_with_vm_count() {
        // The Figure 3 mechanism: each added VM shares its base pages
        // with all predecessors.
        let mut saved = Vec::new();
        let mut vms: Vec<VmMemory> = Vec::new();
        for n in 1..=8u64 {
            let mut m = VmMemory::allocate(n, PAGE_SIZE * 64);
            m.fill(0, 16, PageClass::Shared(0)); // common base
            m.fill(16, 48, PageClass::Unique(0)); // private
            vms.push(m);
            let stats = scan(vms.iter().map(|v| v.page_ids()));
            saved.push(stats.saved_bytes());
        }
        // Strictly increasing after the first VM.
        for w in saved.windows(2) {
            assert!(w[1] > w[0], "saved bytes should grow: {saved:?}");
        }
    }
}
