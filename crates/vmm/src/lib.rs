//! The Nymix virtual machine monitor (simulated QEMU/KVM).
//!
//! The prototype runs two QEMU/KVM VMs per nymbox plus a SaniVM, all
//! booted from one shared base image, with kernel samepage merging (KSM)
//! reclaiming duplicate pages (§4.2). No hypervisor is available to a
//! Rust library, so this crate is a faithful *resource-model* VMM: it
//! implements the management operations Nymix needs (create, pause,
//! resume, snapshot, destroy, secure-wipe) over an explicit 4 KiB page
//! memory model, a KSM scanner, a fluid CPU host, and the homogenized
//! device/fingerprint surface of §4.2 ("Each independent set of AnonVMs
//! and CommVMs have the same Ethernet and IP addresses... resolution
//! consistently set to 1024x768... a single CPU listed ... as a QEMU
//! Virtual CPU").
//!
//! Modules:
//!
//! * [`memory`] — page-granular VM memory with content classes.
//! * [`ksm`] — the samepage-merging scanner and its statistics.
//! * [`vm`] — a virtual machine: config, state machine, disks, memory.
//! * [`cpu`] — the host CPU model (cores, virtualization overhead).
//! * [`fingerprint`] — the guest-visible hardware surface.
//! * [`hypervisor`] — the host: admission, accounting, lifecycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod fingerprint;
pub mod hypervisor;
pub mod ksm;
pub mod memory;
pub mod vm;

pub use cpu::CpuHost;
pub use fingerprint::Fingerprint;
pub use hypervisor::{Hypervisor, HypervisorError};
pub use ksm::KsmStats;
pub use memory::{PageClass, VmMemory, PAGE_SIZE};
pub use vm::{Vm, VmConfig, VmId, VmRole, VmState};
