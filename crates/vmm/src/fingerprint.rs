//! The guest-visible hardware surface.
//!
//! §4.2: "Nymix configures the VM to reduce the ability for an adversary
//! to fingerprint a VM. Each independent set of AnonVMs and CommVMs have
//! the same Ethernet and IP addresses. The resolution within an AnonVM
//! is consistently set to 1024x768 ... Each VM has only a single CPU
//! listed in /proc/cpuinfo as a QEMU Virtual CPU."
//!
//! A [`Fingerprint`] is everything a compromised guest (or a
//! fingerprinting web page) can observe about its "hardware". Nymix's
//! structural homogeneity claim is that this struct is *identical* for
//! every AnonVM on every Nymix machine — tests assert exactly that.

use nymix_net::{Ip, Mac};

/// The observable hardware identity of a VM.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// CPU model string in `/proc/cpuinfo`.
    pub cpu_model: String,
    /// Number of CPUs the guest sees.
    pub cpu_count: u32,
    /// Display resolution.
    pub resolution: (u32, u32),
    /// Guest NIC MAC address.
    pub mac: Mac,
    /// Guest IP address.
    pub ip: Ip,
    /// Guest RAM in MiB (rounded as the guest OS reports it).
    pub ram_mib: u32,
    /// Guest disk size in MiB.
    pub disk_mib: u32,
}

impl Fingerprint {
    /// The canonical homogenized AnonVM surface.
    pub fn anonvm(ram_mib: u32, disk_mib: u32) -> Self {
        Self {
            cpu_model: "QEMU Virtual CPU version 2.0.0".to_string(),
            cpu_count: 1,
            resolution: (1024, 768),
            mac: Mac::ANONVM_FIXED,
            ip: Ip::ANONVM_FIXED,
            ram_mib,
            disk_mib,
        }
    }

    /// The canonical homogenized CommVM surface.
    pub fn commvm(ram_mib: u32, disk_mib: u32) -> Self {
        Self {
            cpu_model: "QEMU Virtual CPU version 2.0.0".to_string(),
            cpu_count: 1,
            resolution: (1024, 768),
            mac: Mac::COMMVM_FIXED,
            ip: Ip::COMMVM_WIRE,
            ram_mib,
            disk_mib,
        }
    }

    /// A distinguishing "bare metal" surface, for contrast in tests and
    /// the installed-OS nym (which intentionally keeps its own look).
    pub fn bare_metal(serial: u32) -> Self {
        Self {
            cpu_model: "Intel(R) Core(TM) i7-4770 CPU @ 3.40GHz".to_string(),
            cpu_count: 8,
            resolution: (1920, 1080),
            mac: Mac::host_nic(serial),
            ip: Ip::parse("192.168.1.100"),
            ram_mib: 16_384,
            disk_mib: 512_000,
        }
    }

    /// Serializes the surface the way a fingerprinting script would
    /// (stable text form; equal strings = equal fingerprints).
    pub fn canonical_string(&self) -> String {
        format!(
            "cpu={};n={};res={}x{};mac={};ip={};ram={};disk={}",
            self.cpu_model,
            self.cpu_count,
            self.resolution.0,
            self.resolution.1,
            self.mac,
            self.ip,
            self.ram_mib,
            self.disk_mib
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonvms_are_indistinguishable() {
        // Two different users' AnonVMs with the standard config.
        let user1 = Fingerprint::anonvm(384, 128);
        let user2 = Fingerprint::anonvm(384, 128);
        assert_eq!(user1, user2);
        assert_eq!(user1.canonical_string(), user2.canonical_string());
    }

    #[test]
    fn anonvm_differs_from_bare_metal() {
        let vm = Fingerprint::anonvm(384, 128);
        let host = Fingerprint::bare_metal(7);
        assert_ne!(vm, host);
        assert_eq!(vm.cpu_count, 1);
        assert_eq!(vm.resolution, (1024, 768));
    }

    #[test]
    fn bare_metal_machines_are_distinguishable() {
        assert_ne!(Fingerprint::bare_metal(1), Fingerprint::bare_metal(2));
    }

    #[test]
    fn commvm_shares_cpu_surface_but_not_addresses() {
        let a = Fingerprint::anonvm(384, 128);
        let c = Fingerprint::commvm(128, 16);
        assert_eq!(a.cpu_model, c.cpu_model);
        assert_ne!(a.mac, c.mac);
        assert_ne!(a.ip, c.ip);
    }
}
