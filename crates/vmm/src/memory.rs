//! Page-granular VM memory with content classes.
//!
//! Real KSM hashes page *contents*; the model keys pages by a 64-bit
//! content identifier instead. Identifiers are constructed so that
//! mergeable pages collide exactly when real pages would:
//!
//! * [`PageClass::Zero`] pages — untouched guest RAM — all share one id.
//! * [`PageClass::Shared`] pages carry an index into the common base
//!   image; the same index in another VM is the same content (every VM
//!   boots the identical image, §3.4).
//! * [`PageClass::Unique`] pages mix the VM's id into the identifier, so
//!   they never merge (browser heaps, page caches of private data).
//!
//! KVM "obtains most of the requested memory for a VM at VM
//! initialization and not during run time" (§5.2), so a VM's page vector
//! is fully populated at construction; what changes during a session is
//! the class mix.

/// Bytes per page.
pub const PAGE_SIZE: usize = 4096;

/// Content class of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageClass {
    /// Untouched (zero-filled) guest memory.
    Zero,
    /// Content from the shared base image, by page index.
    Shared(u32),
    /// VM-private content, by sequence number.
    Unique(u32),
}

/// The memory of one VM, as a vector of page content ids.
#[derive(Debug, Clone)]
pub struct VmMemory {
    vm_tag: u64,
    pages: Vec<u64>,
    next_unique: u32,
}

const ZERO_ID: u64 = 0;
const SHARED_BASE: u64 = 1 << 40;
const UNIQUE_BASE: u64 = 1 << 41;

impl VmMemory {
    /// Allocates `bytes` of memory for VM `vm_tag`, all zero pages.
    pub fn allocate(vm_tag: u64, bytes: usize) -> Self {
        let count = bytes.div_ceil(PAGE_SIZE);
        Self {
            vm_tag,
            pages: vec![ZERO_ID; count],
            next_unique: 0,
        }
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes.
    pub fn byte_len(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Raw content ids (for the KSM scanner).
    pub fn page_ids(&self) -> &[u64] {
        &self.pages
    }

    /// Sets page `index` to the given class.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_page(&mut self, index: usize, class: PageClass) {
        self.pages[index] = self.encode(class);
    }

    /// Fills `count` pages starting at `start` with `class` content;
    /// [`PageClass::Unique`]'s sequence number is advanced per page so
    /// each page is distinct. Returns the number of pages written.
    pub fn fill(&mut self, start: usize, count: usize, class: PageClass) -> usize {
        let end = (start + count).min(self.pages.len());
        for i in start..end {
            let c = match class {
                PageClass::Shared(base) => PageClass::Shared(base + (i - start) as u32),
                PageClass::Unique(_) => {
                    let n = self.next_unique;
                    self.next_unique += 1;
                    PageClass::Unique(n)
                }
                PageClass::Zero => PageClass::Zero,
            };
            self.pages[i] = self.encode(c);
        }
        end.saturating_sub(start)
    }

    /// Converts `count` zero pages (scanning from the back) into fresh
    /// unique pages — the effect of a workload dirtying memory. Returns
    /// how many pages were actually converted.
    pub fn dirty_zero_pages(&mut self, count: usize) -> usize {
        let mut converted = 0;
        for i in (0..self.pages.len()).rev() {
            if converted == count {
                break;
            }
            if self.pages[i] == ZERO_ID {
                let n = self.next_unique;
                self.next_unique += 1;
                self.pages[i] = self.encode(PageClass::Unique(n));
                converted += 1;
            }
        }
        converted
    }

    /// Converts up to `count` shared pages into fresh unique pages —
    /// a running workload overwriting previously-pristine OS pages
    /// (reduces what KSM can merge). Returns pages converted.
    pub fn dirty_shared_pages(&mut self, count: usize) -> usize {
        let mut converted = 0;
        for i in 0..self.pages.len() {
            if converted == count {
                break;
            }
            let id = self.pages[i];
            if id & SHARED_BASE != 0 && id & UNIQUE_BASE == 0 {
                let n = self.next_unique;
                self.next_unique += 1;
                self.pages[i] = self.encode(PageClass::Unique(n));
                converted += 1;
            }
        }
        converted
    }

    /// Counts pages by class.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut zero = 0;
        let mut shared = 0;
        let mut unique = 0;
        for &id in &self.pages {
            if id == ZERO_ID {
                zero += 1;
            } else if id & SHARED_BASE != 0 && id & UNIQUE_BASE == 0 {
                shared += 1;
            } else {
                unique += 1;
            }
        }
        (zero, shared, unique)
    }

    /// Overwrites all pages with zeros — the secure erase Nymix performs
    /// when a nym shuts down (§3.4).
    pub fn secure_wipe(&mut self) {
        self.pages.fill(ZERO_ID);
    }

    /// Whether every page is zero (post-wipe check).
    pub fn is_wiped(&self) -> bool {
        self.pages.iter().all(|&p| p == ZERO_ID)
    }

    fn encode(&self, class: PageClass) -> u64 {
        match class {
            PageClass::Zero => ZERO_ID,
            PageClass::Shared(i) => SHARED_BASE | i as u64,
            PageClass::Unique(n) => UNIQUE_BASE | (self.vm_tag << 42) | n as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_rounds_up() {
        let m = VmMemory::allocate(1, PAGE_SIZE * 3 + 1);
        assert_eq!(m.page_count(), 4);
        assert_eq!(m.byte_len(), 4 * PAGE_SIZE);
    }

    #[test]
    fn shared_pages_collide_across_vms() {
        let mut a = VmMemory::allocate(1, PAGE_SIZE * 4);
        let mut b = VmMemory::allocate(2, PAGE_SIZE * 4);
        a.fill(0, 4, PageClass::Shared(100));
        b.fill(0, 4, PageClass::Shared(100));
        assert_eq!(a.page_ids(), b.page_ids());
    }

    #[test]
    fn unique_pages_never_collide() {
        let mut a = VmMemory::allocate(1, PAGE_SIZE * 4);
        let mut b = VmMemory::allocate(2, PAGE_SIZE * 4);
        a.fill(0, 4, PageClass::Unique(0));
        b.fill(0, 4, PageClass::Unique(0));
        for (x, y) in a.page_ids().iter().zip(b.page_ids()) {
            assert_ne!(x, y);
        }
        // And unique pages within one VM are distinct from each other.
        let ids: std::collections::HashSet<u64> = a.page_ids().iter().copied().collect();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn dirtying_converts_zero_pages() {
        let mut m = VmMemory::allocate(7, PAGE_SIZE * 10);
        m.fill(0, 3, PageClass::Shared(0));
        let converted = m.dirty_zero_pages(5);
        assert_eq!(converted, 5);
        let (zero, shared, unique) = m.census();
        assert_eq!((zero, shared, unique), (2, 3, 5));
        // Running out of zero pages saturates.
        assert_eq!(m.dirty_zero_pages(100), 2);
    }

    #[test]
    fn wipe_zeroes_all() {
        let mut m = VmMemory::allocate(3, PAGE_SIZE * 8);
        m.fill(0, 8, PageClass::Unique(0));
        assert!(!m.is_wiped());
        m.secure_wipe();
        assert!(m.is_wiped());
        assert_eq!(m.census(), (8, 0, 0));
    }

    #[test]
    fn fill_clamps_to_range() {
        let mut m = VmMemory::allocate(1, PAGE_SIZE * 4);
        assert_eq!(m.fill(2, 100, PageClass::Shared(0)), 2);
    }
}
