//! A virtual machine: configuration, state machine, disks, memory.

use nymix_fs::{Layer, LayerKind, UnionFs};

use crate::fingerprint::Fingerprint;
use crate::memory::{PageClass, VmMemory, PAGE_SIZE};

/// Identifies a VM within a hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u64);

/// The role a VM plays in the Nymix architecture (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmRole {
    /// Untrusted browsing environment of a nym.
    Anon,
    /// Anonymizer host of a nym.
    Comm,
    /// Non-networked sanitization VM.
    Sani,
    /// The machine's installed OS booted read-only as a nym (§3.7).
    InstalledOs,
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Configured but not started.
    Created,
    /// Executing.
    Running,
    /// Paused (e.g. during a nym save; §3.5 workflow).
    Paused,
    /// Shut down; memory securely wiped.
    ShutDown,
}

/// Static configuration of a VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmConfig {
    /// Role (selects the configuration filesystem layer).
    pub role: VmRole,
    /// Guest RAM in MiB.
    pub ram_mib: u32,
    /// Writable disk size in MiB (RAM-backed tmpfs; counts against
    /// host RAM, §5.2).
    pub disk_mib: u32,
}

impl VmConfig {
    /// The standard AnonVM of the evaluation: 384 MiB RAM, 128 MiB disk
    /// (§5.2; the CPU benchmark variant uses 1 GiB RAM).
    pub fn anonvm() -> Self {
        Self {
            role: VmRole::Anon,
            ram_mib: 384,
            disk_mib: 128,
        }
    }

    /// The AnonVM sized for the Peacekeeper benchmark (1 GiB RAM).
    pub fn anonvm_cpu_bench() -> Self {
        Self {
            role: VmRole::Anon,
            ram_mib: 1024,
            disk_mib: 128,
        }
    }

    /// The standard CommVM: 128 MiB RAM, 16 MiB disk (§5.2).
    pub fn commvm() -> Self {
        Self {
            role: VmRole::Comm,
            ram_mib: 128,
            disk_mib: 16,
        }
    }

    /// The SaniVM (sized like an AnonVM; it runs scrubbing tools).
    pub fn sanivm() -> Self {
        Self {
            role: VmRole::Sani,
            ram_mib: 384,
            disk_mib: 128,
        }
    }

    /// Gross host RAM cost of this VM: guest RAM plus RAM-backed disk
    /// ("The host allocates disk and RAM from its own stash of RAM",
    /// §5.2).
    pub fn host_ram_cost_mib(&self) -> u32 {
        self.ram_mib + self.disk_mib
    }
}

/// A virtual machine instance.
#[derive(Debug, Clone)]
pub struct Vm {
    id: VmId,
    config: VmConfig,
    state: VmState,
    memory: VmMemory,
    disk: UnionFs,
    fingerprint: Fingerprint,
    /// Fraction of guest RAM resident with OS/base content right after
    /// boot (shared across VMs); tunable per role.
    booted: bool,
}

impl Vm {
    /// Builds a VM over the given base and role-configuration layers.
    pub fn new(id: VmId, config: VmConfig, base: Layer, role_config: Layer) -> Self {
        let fingerprint = match config.role {
            VmRole::Anon | VmRole::Sani => Fingerprint::anonvm(config.ram_mib, config.disk_mib),
            VmRole::Comm => Fingerprint::commvm(config.ram_mib, config.disk_mib),
            VmRole::InstalledOs => Fingerprint::bare_metal(0),
        };
        let memory = VmMemory::allocate(id.0, config.ram_mib as usize * 1024 * 1024);
        let mut disk = UnionFs::new(vec![base, role_config, Layer::new(LayerKind::Writable)])
            .expect("base+config+writable is a valid stack");
        // The writable image is a fixed-size virtual disk (§5.2: "we
        // allocated 16 MB disk space ... to each CommVM and 128 MB disk
        // space to each AnonVM").
        disk.set_quota(Some(config.disk_mib as usize * 1024 * 1024));
        Self {
            id,
            config,
            state: VmState::Created,
            memory,
            disk,
            fingerprint,
            booted: false,
        }
    }

    /// The VM's id.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// Static configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Current lifecycle state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// The guest-visible hardware surface.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// The layered disk.
    pub fn disk(&self) -> &UnionFs {
        &self.disk
    }

    /// Mutable access to the layered disk.
    pub fn disk_mut(&mut self) -> &mut UnionFs {
        &mut self.disk
    }

    /// The page memory.
    pub fn memory(&self) -> &VmMemory {
        &self.memory
    }

    /// Mutable page memory (workload simulation dirties pages).
    pub fn memory_mut(&mut self) -> &mut VmMemory {
        &mut self.memory
    }

    /// Boots the VM: transitions to Running and populates memory with
    /// the post-boot resident mix — a slice of shared base-image pages
    /// (OS text/read-only data identical in every VM), a dirtied private
    /// working set, and the rest untouched.
    ///
    /// # Panics
    ///
    /// Panics unless the VM is freshly created.
    pub fn boot(&mut self, shared_fraction: f64, private_fraction: f64) {
        assert_eq!(self.state, VmState::Created, "boot from Created only");
        let pages = self.memory.page_count();
        let shared = (pages as f64 * shared_fraction) as usize;
        let private = (pages as f64 * private_fraction) as usize;
        self.memory.fill(0, shared, PageClass::Shared(0));
        self.memory.fill(shared, private, PageClass::Unique(0));
        self.state = VmState::Running;
        self.booted = true;
    }

    /// Whether `boot` has run.
    pub fn is_booted(&self) -> bool {
        self.booted
    }

    /// Pauses a running VM (nym save path).
    ///
    /// # Panics
    ///
    /// Panics unless running.
    pub fn pause(&mut self) {
        assert_eq!(self.state, VmState::Running, "pause requires Running");
        self.state = VmState::Paused;
    }

    /// Resumes a paused VM.
    ///
    /// # Panics
    ///
    /// Panics unless paused.
    pub fn resume(&mut self) {
        assert_eq!(self.state, VmState::Paused, "resume requires Paused");
        self.state = VmState::Running;
    }

    /// Shuts the VM down, securely wiping guest memory and the writable
    /// disk layer (§3.4 amnesia).
    pub fn shutdown(&mut self) {
        self.memory.secure_wipe();
        if let Some(mut upper) = self.disk.take_upper() {
            upper.secure_wipe();
        }
        self.state = VmState::ShutDown;
    }

    /// Dirties `mib` MiB of guest memory (browsing, benchmarks).
    pub fn dirty_memory_mib(&mut self, mib: usize) -> usize {
        self.memory.dirty_zero_pages(mib * 1024 * 1024 / PAGE_SIZE)
    }

    /// Detaches the writable disk layer (for archiving); the VM should
    /// be paused first.
    pub fn take_disk_upper(&mut self) -> Option<Layer> {
        self.disk.take_upper()
    }

    /// Attaches a restored writable disk layer.
    pub fn push_disk_upper(&mut self, layer: Layer) -> bool {
        self.disk.push_upper(layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymix_fs::Path;

    fn minimal_vm(id: u64, config: VmConfig) -> Vm {
        let base = nymix_fs::BaseImage::minimal().to_layer();
        let mut role = Layer::new(LayerKind::Config);
        role.put_file(Path::new("/etc/rc.local"), b"role".to_vec());
        Vm::new(VmId(id), config, base, role)
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut vm = minimal_vm(1, VmConfig::anonvm());
        assert_eq!(vm.state(), VmState::Created);
        vm.boot(0.05, 0.55);
        assert_eq!(vm.state(), VmState::Running);
        vm.pause();
        assert_eq!(vm.state(), VmState::Paused);
        vm.resume();
        vm.shutdown();
        assert_eq!(vm.state(), VmState::ShutDown);
        assert!(vm.memory().is_wiped());
    }

    #[test]
    #[should_panic(expected = "boot from Created")]
    fn double_boot_rejected() {
        let mut vm = minimal_vm(1, VmConfig::anonvm());
        vm.boot(0.1, 0.1);
        vm.boot(0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "pause requires Running")]
    fn pause_before_boot_rejected() {
        let mut vm = minimal_vm(1, VmConfig::anonvm());
        vm.pause();
    }

    #[test]
    fn boot_populates_memory_mix() {
        let mut vm = minimal_vm(1, VmConfig::commvm());
        vm.boot(0.10, 0.50);
        let (zero, shared, unique) = vm.memory().census();
        let total = vm.memory().page_count();
        assert!((shared as f64 / total as f64 - 0.10).abs() < 0.01);
        assert!((unique as f64 / total as f64 - 0.50).abs() < 0.01);
        assert!(zero > 0);
    }

    #[test]
    fn configs_match_paper() {
        assert_eq!(VmConfig::anonvm().host_ram_cost_mib(), 512);
        assert_eq!(VmConfig::commvm().host_ram_cost_mib(), 144);
        // One nymbox gross cost: 656 MiB — the Figure 3 dashed line.
        assert_eq!(
            VmConfig::anonvm().host_ram_cost_mib() + VmConfig::commvm().host_ram_cost_mib(),
            656
        );
        assert_eq!(VmConfig::anonvm_cpu_bench().ram_mib, 1024);
    }

    #[test]
    fn shutdown_wipes_disk_upper() {
        let mut vm = minimal_vm(2, VmConfig::anonvm());
        vm.boot(0.05, 0.5);
        vm.disk_mut()
            .write(&Path::new("/home/user/cookies"), vec![1; 100])
            .unwrap();
        assert_eq!(vm.disk().upper_bytes(), 100);
        vm.shutdown();
        // Upper layer detached and wiped; union now read-only.
        assert!(vm.disk().upper().is_none());
    }

    #[test]
    fn identical_anonvms_have_identical_fingerprints() {
        let a = minimal_vm(1, VmConfig::anonvm());
        let b = minimal_vm(2, VmConfig::anonvm());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn dirty_memory_converts_pages() {
        let mut vm = minimal_vm(3, VmConfig::anonvm());
        vm.boot(0.05, 0.30);
        let before = vm.memory().census().2;
        let converted = vm.dirty_memory_mib(10);
        assert_eq!(converted, 10 * 1024 * 1024 / PAGE_SIZE);
        assert_eq!(vm.memory().census().2, before + converted);
    }

    #[test]
    fn disk_quota_matches_config() {
        let vm = minimal_vm(5, VmConfig::commvm());
        assert_eq!(vm.disk().quota(), Some(16 * 1024 * 1024));
        let mut vm = minimal_vm(6, VmConfig::anonvm());
        vm.boot(0.05, 0.3);
        // A write beyond 128 MiB must fail with NoSpace.
        let err = vm
            .disk_mut()
            .write(&Path::new("/huge"), vec![0u8; 129 * 1024 * 1024])
            .unwrap_err();
        assert!(matches!(err, nymix_fs::FsError::NoSpace { .. }));
    }

    #[test]
    fn disk_upper_roundtrip() {
        let mut vm = minimal_vm(4, VmConfig::anonvm());
        vm.boot(0.05, 0.3);
        vm.disk_mut()
            .write(&Path::new("/home/user/bookmarks"), b"tor blog".to_vec())
            .unwrap();
        vm.pause();
        let upper = vm.take_disk_upper().unwrap();
        assert!(vm.push_disk_upper(upper));
        assert_eq!(
            vm.disk().read(&Path::new("/home/user/bookmarks")).unwrap(),
            b"tor blog"
        );
    }
}
