//! Property-based tests for VMM memory/KSM invariants.

use nymix_vmm::{ksm, PageClass, VmMemory, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    /// KSM identity: scanned == physical + sharing, and shared frames
    /// never exceed physical frames.
    #[test]
    fn ksm_accounting_identity(layouts in proptest::collection::vec(
        (1u64..100, 1usize..64, 0usize..32, 0usize..32), 1..6)) {
        let mut vms = Vec::new();
        for (tag, pages, shared, uniq) in layouts {
            let mut m = VmMemory::allocate(tag, pages * PAGE_SIZE);
            let shared = shared.min(pages);
            let uniq = uniq.min(pages - shared);
            m.fill(0, shared, PageClass::Shared(0));
            m.fill(shared, uniq, PageClass::Unique(0));
            vms.push(m);
        }
        let stats = ksm::scan(vms.iter().map(|v| v.page_ids()));
        prop_assert_eq!(stats.pages_scanned, stats.pages_physical + stats.pages_sharing);
        prop_assert!(stats.pages_shared <= stats.pages_physical);
        prop_assert!(stats.pages_sharing < stats.pages_scanned.max(1));
    }

    /// Merging more VMs never decreases total savings.
    #[test]
    fn ksm_savings_monotone_in_vm_count(n in 2usize..8, shared in 1usize..32, uniq in 0usize..32) {
        let pages = shared + uniq;
        let mut vms = Vec::new();
        let mut prev = 0usize;
        for tag in 0..n as u64 {
            let mut m = VmMemory::allocate(tag, pages * PAGE_SIZE);
            m.fill(0, shared, PageClass::Shared(0));
            m.fill(shared, uniq, PageClass::Unique(0));
            vms.push(m);
            let s = ksm::scan(vms.iter().map(|v| v.page_ids())).saved_bytes();
            prop_assert!(s >= prev);
            prev = s;
        }
    }

    /// Secure wipe always zeroes everything, regardless of prior state.
    #[test]
    fn wipe_is_total(pages in 1usize..128, ops in proptest::collection::vec(
        (0usize..128, 0u8..3), 0..20)) {
        let mut m = VmMemory::allocate(7, pages * PAGE_SIZE);
        for (idx, kind) in ops {
            let idx = idx % pages;
            let class = match kind {
                0 => PageClass::Zero,
                1 => PageClass::Shared(idx as u32),
                _ => PageClass::Unique(idx as u32),
            };
            m.set_page(idx, class);
        }
        m.secure_wipe();
        prop_assert!(m.is_wiped());
        let (zero, shared, unique) = m.census();
        prop_assert_eq!((zero, shared, unique), (pages, 0, 0));
    }
}
