//! A panic-free, token-level Rust lexer.
//!
//! The rule engine works on tokens, never on raw text, so string
//! literals and comments can never masquerade as code (a `"unsafe"`
//! inside a string is not an `unsafe` token) and suppression comments
//! are first-class tokens the engine can read back.
//!
//! The lexer is deliberately *loose* where looseness cannot change a
//! rule's verdict (number suffixes, unicode identifiers) and *strict*
//! where it can (string/char/comment boundaries, nested block
//! comments, raw strings with arbitrary `#` fences). It is total over
//! arbitrary bytes: every input either lexes to a token stream or
//! returns a structured [`LexError`] — it never panics, which
//! `tests/prop.rs` pins with arbitrary and mutated source bytes.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`unsafe`, `match`, `as` are all idents).
    Ident,
    /// Numeric literal, loosely lexed (suffixes and floats included).
    Number,
    /// String-ish literal: `"…"`, `b"…"`, `r#"…"#`, `br#"…"#`.
    Str,
    /// Character or byte-character literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Line or block comment, text included (suppressions live here).
    Comment,
    /// Punctuation; multi-byte operators the rules need (`==`, `!=`,
    /// `=>`, `::`, `->`, `<=`, `>=`, `&&`, `||`) are single tokens.
    Punct,
}

/// One lexed token: a byte span of the source plus its starting line.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: Kind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Token {
    /// The token's bytes within the source it was lexed from.
    pub fn text<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        src.get(self.start..self.end).unwrap_or(b"")
    }

    /// True when the token is this exact ASCII text.
    pub fn is(&self, src: &[u8], text: &str) -> bool {
        self.text(src) == text.as_bytes()
    }
}

/// A structurally unlexable input: an unterminated string, char
/// literal, or block comment. Everything else lexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset where the unterminated construct started.
    pub offset: usize,
    /// 1-based line of that offset.
    pub line: u32,
    /// Human description of what was left open.
    pub what: &'static str,
}

impl core::fmt::Display for LexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: unterminated {}", self.line, self.what)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens, or reports the first unterminated
/// construct. Never panics, for any byte sequence.
pub fn lex(src: &[u8]) -> Result<Vec<Token>, LexError> {
    Lexer {
        src,
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos.checked_add(ahead)?).copied()
    }

    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line = self.line.saturating_add(1);
        }
        self.pos = self.pos.saturating_add(1);
    }

    fn push(&mut self, kind: Kind, start: usize, line: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    self.push(Kind::Comment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment(start, line)?;
                }
                b'r' | b'b' if self.raw_or_byte_literal(start, line)? => {}
                _ if is_ident_start(b) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(Kind::Ident, start, line);
                }
                _ if b.is_ascii_digit() => {
                    self.number();
                    self.push(Kind::Number, start, line);
                }
                b'"' => {
                    self.string(start, line)?;
                    self.push(Kind::Str, start, line);
                }
                b'\'' => self.char_or_lifetime(start, line)?,
                _ => {
                    self.punct();
                    self.push(Kind::Punct, start, line);
                }
            }
        }
        Ok(self.out)
    }

    /// Handles the `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` literal
    /// prefixes. Returns false (consuming nothing) when the `r`/`b`
    /// starts a plain identifier; the caller then lexes it as one.
    fn raw_or_byte_literal(&mut self, start: usize, line: u32) -> Result<bool, LexError> {
        let (prefix_len, raw, kind) = match (self.peek(0), self.peek(1), self.peek(2)) {
            (Some(b'r'), Some(b'"' | b'#'), _) => (1, true, Kind::Str),
            (Some(b'b'), Some(b'"'), _) => (1, false, Kind::Str),
            (Some(b'b'), Some(b'\''), _) => (1, false, Kind::Char),
            (Some(b'b'), Some(b'r'), Some(b'"' | b'#')) => (2, true, Kind::Str),
            _ => return Ok(false),
        };
        // `r#ident` is a raw identifier, not a raw string.
        if raw {
            let mut probe = self.pos.saturating_add(prefix_len);
            let mut fence = 0usize;
            while self.src.get(probe) == Some(&b'#') {
                probe = probe.saturating_add(1);
                fence = fence.saturating_add(1);
            }
            if self.src.get(probe) != Some(&b'"') {
                return Ok(false);
            }
            for _ in 0..prefix_len {
                self.bump();
            }
            self.raw_string(fence, start, line)?;
            self.push(Kind::Str, start, line);
            return Ok(true);
        }
        self.bump(); // the `b`
        match kind {
            Kind::Str => {
                self.string(start, line)?;
                self.push(Kind::Str, start, line);
            }
            _ => {
                self.char_literal(start, line)?;
                self.push(Kind::Char, start, line);
            }
        }
        Ok(true)
    }

    fn block_comment(&mut self, start: usize, line: u32) -> Result<(), LexError> {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth = depth.saturating_add(1);
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => {
                    return Err(LexError {
                        offset: start,
                        line,
                        what: "block comment",
                    })
                }
            }
        }
        self.push(Kind::Comment, start, line);
        Ok(())
    }

    fn number(&mut self) {
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
            } else if c == b'.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                self.bump();
            } else {
                break;
            }
        }
    }

    /// A `"…"` string with escapes; the opening quote is at `self.pos`.
    fn string(&mut self, start: usize, line: u32) -> Result<(), LexError> {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some(b'"') => {
                    self.bump();
                    return Ok(());
                }
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some(_) => self.bump(),
                None => {
                    return Err(LexError {
                        offset: start,
                        line,
                        what: "string literal",
                    })
                }
            }
        }
    }

    /// A raw string whose `fence` many `#`s and opening quote are at
    /// `self.pos`; consumes through the matching `"###…` close.
    fn raw_string(&mut self, fence: usize, start: usize, line: u32) -> Result<(), LexError> {
        for _ in 0..=fence {
            self.bump(); // the `#`s and the opening quote
        }
        loop {
            match self.peek(0) {
                Some(b'"') => {
                    let mut matched = 0usize;
                    while matched < fence && self.peek(1 + matched) == Some(b'#') {
                        matched += 1;
                    }
                    if matched == fence {
                        for _ in 0..=fence {
                            self.bump();
                        }
                        return Ok(());
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
                None => {
                    return Err(LexError {
                        offset: start,
                        line,
                        what: "raw string literal",
                    })
                }
            }
        }
    }

    /// Distinguishes `'a'` / `'\n'` (char literals) from `'a` /
    /// `'static` (lifetimes); the opening quote is at `self.pos`.
    fn char_or_lifetime(&mut self, start: usize, line: u32) -> Result<(), LexError> {
        match (self.peek(1), self.peek(2)) {
            // `'x'` — a one-byte char literal.
            (Some(c), Some(b'\'')) if c != b'\\' && c != b'\'' => {
                self.bump();
                self.bump();
                self.bump();
                self.push(Kind::Char, start, line);
                Ok(())
            }
            // `'\…` — an escaped char literal.
            (Some(b'\\'), _) => {
                self.char_literal(start, line)?;
                self.push(Kind::Char, start, line);
                Ok(())
            }
            // `'ident` — a lifetime.
            (Some(c), _) if is_ident_start(c) => {
                self.bump();
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(Kind::Lifetime, start, line);
                Ok(())
            }
            // Multi-byte char like `'é'` or anything else quote-led:
            // scan for a close quote on this line; treat as char.
            _ => {
                self.char_literal(start, line)?;
                self.push(Kind::Char, start, line);
                Ok(())
            }
        }
    }

    /// Consumes a (possibly escaped, possibly multi-byte) char literal
    /// whose opening quote is at `self.pos`.
    fn char_literal(&mut self, start: usize, line: u32) -> Result<(), LexError> {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some(b'\'') => {
                    self.bump();
                    return Ok(());
                }
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some(b'\n') | None => {
                    return Err(LexError {
                        offset: start,
                        line,
                        what: "character literal",
                    })
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// One punctuation token, merging the two-byte operators the rules
    /// must see as units.
    fn punct(&mut self) {
        let two = (self.peek(0), self.peek(1));
        let merged = matches!(
            two,
            (Some(b'='), Some(b'=' | b'>'))
                | (Some(b'!'), Some(b'='))
                | (Some(b'<'), Some(b'='))
                | (Some(b'>'), Some(b'='))
                | (Some(b':'), Some(b':'))
                | (Some(b'-'), Some(b'>'))
                | (Some(b'&'), Some(b'&'))
                | (Some(b'|'), Some(b'|'))
        );
        self.bump();
        if merged {
            self.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src.as_bytes())
            .expect("lexes")
            .into_iter()
            .map(|t| {
                (
                    t.kind,
                    String::from_utf8_lossy(t.text(src.as_bytes())).into_owned(),
                )
            })
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x = a.unwrap() + 0x1f;");
        assert!(toks.contains(&(Kind::Ident, "unwrap".into())));
        assert!(toks.contains(&(Kind::Number, "0x1f".into())));
        assert!(toks.contains(&(Kind::Punct, ";".into())));
    }

    #[test]
    fn merged_operators() {
        let toks = kinds("a == b != c => d :: e -> f");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Punct)
            .map(|(_, s)| s.clone())
            .collect();
        assert_eq!(puncts, ["==", "!=", "=>", "::", "->"]);
    }

    #[test]
    fn strings_hide_tokens() {
        let toks = kinds(r#"let s = "unsafe unwrap()";"#);
        assert!(!toks.contains(&(Kind::Ident, "unsafe".into())));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == Kind::Str).count(),
            1,
            "{toks:?}"
        );
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let a = r#"has "quotes" and unsafe"#; let b = b"NYM1";"##);
        assert!(!toks.contains(&(Kind::Ident, "unsafe".into())));
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
    }

    #[test]
    fn raw_identifier_is_ident() {
        let toks = kinds("let r#match = 1;");
        assert!(
            toks.contains(&(Kind::Ident, "r".into())) || {
                // `r#match`: the `r` lexes as ident, `#` as punct, `match`
                // as ident — all fine for the rules.
                toks.contains(&(Kind::Ident, "match".into()))
            }
        );
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds(r"fn f<'a>(x: &'a u8) { let c = 'x'; let nl = '\n'; let b = b'q'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Comment).count(), 1);
        assert!(toks.contains(&(Kind::Ident, "b".into())));
    }

    #[test]
    fn line_numbers() {
        let toks = lex(b"a\nb\n\nc").expect("lexes");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(lex(b"\"open").is_err());
        assert!(lex(b"/* open").is_err());
        assert!(lex(br##"r#"open"##).is_err());
        assert!(lex(b"'\\").is_err());
    }

    #[test]
    fn arbitrary_bytes_lex_or_error() {
        // Hostile: control bytes, invalid UTF-8, lone quotes at EOF.
        for src in [
            &[0u8, 1, 2, 0xff, 0xfe][..],
            b"\x80\x80\x80",
            b"'",
            b"b",
            b"r",
            b"br#",
            b"0..=5",
            b"x.0.1",
        ] {
            let _ = lex(src);
        }
    }
}
