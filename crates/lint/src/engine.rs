//! The drive loop: walk the workspace, lex + classify each `.rs` file,
//! run the rules, apply suppressions, and append the
//! registration-freshness checks.

use std::fs;
use std::path::{Path, PathBuf};

use crate::classify;
use crate::diag::{self, Finding};
use crate::lexer;
use crate::registry::Registry;
use crate::rules::{self, ids, Ctx};

/// Directory names never descended into. `fixtures` holds the lint
/// crate's own deliberately-violating test corpus; `target` is build
/// output.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Lints every `.rs` file under `root` against `reg`. Paths in
/// findings are relative to `root`.
pub fn run_workspace(root: &Path, reg: &Registry) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    files.sort();
    let mut findings = Vec::new();
    let mut seen_trust: Vec<bool> = vec![false; reg.trust_modules.len()];
    let mut seen_secret: Vec<bool> = vec![false; reg.secret_types.len()];
    let mut seen_kernel: Vec<bool> = vec![false; reg.unsafe_kernels.len()];
    for path in &files {
        let rel = rel_path(root, path);
        for (i, m) in reg.trust_modules.iter().enumerate() {
            if rel.ends_with(&m.path) {
                seen_trust[i] = true;
            }
        }
        for (i, s) in reg.secret_types.iter().enumerate() {
            if rel.ends_with(&s.defined_in) {
                seen_secret[i] = true;
            }
        }
        for (i, k) in reg.unsafe_kernels.iter().enumerate() {
            if rel.ends_with(&k.path_or_name) {
                seen_kernel[i] = true;
            }
        }
        let Ok(src) = fs::read(path) else {
            findings.push(Finding::new(
                &rel,
                0,
                ids::LEX_ERROR,
                "file vanished or unreadable during the scan".to_string(),
            ));
            continue;
        };
        lint_file(&rel, &src, reg, &mut findings);
    }
    // `registry-stale`: a registered path that matches no file means a
    // rename/delete silently dropped a trust boundary from coverage.
    for (i, m) in reg.trust_modules.iter().enumerate() {
        if !seen_trust[i] {
            findings.push(Finding::new(
                &m.path,
                0,
                ids::REGISTRY_STALE,
                "registered trust-boundary module matches no file in the workspace: \
                 update the registry to follow the rename (coverage silently lapsed)"
                    .to_string(),
            ));
        }
    }
    for (i, s) in reg.secret_types.iter().enumerate() {
        if !seen_secret[i] {
            findings.push(Finding::new(
                &s.defined_in,
                0,
                ids::REGISTRY_STALE,
                format!(
                    "secret type `{}` is registered in a file that no longer exists: \
                     update the registry to follow the rename",
                    s.name
                ),
            ));
        }
    }
    // A registered unsafe-kernel path matching no file is just as
    // stale: it would silently pre-authorize `unsafe` in whatever file
    // is later created (or renamed) onto that path.
    for (i, k) in reg.unsafe_kernels.iter().enumerate() {
        if !seen_kernel[i] {
            findings.push(Finding::new(
                &k.path_or_name,
                0,
                ids::REGISTRY_STALE,
                "registered unsafe-kernel exemption matches no file in the workspace: \
                 remove it or update it to follow the rename"
                    .to_string(),
            ));
        }
    }
    diag::sort(&mut findings);
    findings
}

/// Lints one file's bytes; appends surviving findings (after
/// suppression filtering) to `out`.
pub fn lint_file(rel: &str, src: &[u8], reg: &Registry, out: &mut Vec<Finding>) {
    let tokens = match lexer::lex(src) {
        Ok(t) => t,
        Err(e) => {
            out.push(Finding::new(
                rel,
                e.line,
                ids::LEX_ERROR,
                format!("cannot lex file: {} at byte {}", e.what, e.offset),
            ));
            return;
        }
    };
    let test_mask = classify::test_mask(&tokens, src);
    let mut sups = classify::suppressions(&tokens, src);
    let ctx = Ctx {
        rel,
        src,
        tokens: &tokens,
        test_mask: &test_mask,
        reg,
        is_crate_root: is_crate_root(rel),
    };
    let mut raw = Vec::new();
    rules::run_all(&ctx, &mut raw);

    // Apply suppressions: a finding on a suppression's target line,
    // with a listed rule id, is silenced (and marks the suppression
    // used). Suppressions themselves must be well-formed.
    for s in &sups {
        for r in &s.rules {
            if !ids::ALL.contains(&r.as_str()) {
                out.push(Finding::new(
                    rel,
                    s.line,
                    ids::SUPPRESSION_SYNTAX,
                    format!("`lint:allow` names unknown rule `{r}`"),
                ));
            }
        }
        if !s.has_reason {
            out.push(Finding::new(
                rel,
                s.line,
                ids::SUPPRESSION_SYNTAX,
                "`lint:allow` without a written reason: suppressions document why the \
                 rule is safe to break here, or they are noise"
                    .to_string(),
            ));
        }
    }
    for f in raw {
        let mut silenced = false;
        for s in &mut sups {
            if s.target_line == f.line && s.has_reason && s.rules.iter().any(|r| r == f.rule) {
                s.used = true;
                silenced = true;
            }
        }
        if !silenced {
            out.push(f);
        }
    }
    for s in &sups {
        if s.has_reason && !s.used && s.rules.iter().all(|r| ids::ALL.contains(&r.as_str())) {
            out.push(Finding::new(
                rel,
                s.line,
                ids::UNUSED_SUPPRESSION,
                format!(
                    "suppression of `{}` silences nothing: the violation was fixed, so \
                     delete the allow before it hides a future regression",
                    s.rules.join(", ")
                ),
            ));
        }
    }
}

/// `src/lib.rs`, `src/main.rs` and `src/bin/*.rs` are crate roots that
/// must carry `#![forbid(unsafe_code)]`.
fn is_crate_root(rel: &str) -> bool {
    if rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs") {
        return true;
    }
    if let Some(pos) = rel.rfind("src/bin/") {
        let tail = &rel[pos + "src/bin/".len()..];
        return tail.ends_with(".rs") && !tail.contains('/');
    }
    false
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The `--report` payload: the trust-boundary map as JSON, so external
/// tooling (and the LINTS.md reader) can see exactly what is policed.
pub fn report(reg: &Registry) -> String {
    let mut out = String::from("{\n  \"trust_modules\": [");
    for (i, m) in reg.trust_modules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"rationale\": \"{}\"}}",
            diag::json_escape(&m.path),
            diag::json_escape(&m.rationale)
        ));
    }
    out.push_str("\n  ],\n  \"secret_types\": [");
    for (i, s) in reg.secret_types.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"defined_in\": \"{}\", \"rationale\": \"{}\"}}",
            diag::json_escape(&s.name),
            diag::json_escape(&s.defined_in),
            diag::json_escape(&s.rationale)
        ));
    }
    out.push_str("\n  ],\n  \"taxonomies\": [");
    for (i, t) in reg.taxonomies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let paths: Vec<String> = t
            .paths
            .iter()
            .map(|p| format!("\"{}\"", diag::json_escape(p)))
            .collect();
        out.push_str(&format!(
            "\n    {{\"enum\": \"{}\", \"paths\": [{}], \"rationale\": \"{}\"}}",
            diag::json_escape(&t.enum_name),
            paths.join(", "),
            diag::json_escape(&t.rationale)
        ));
    }
    out.push_str("\n  ],\n  \"seal_fns\": [");
    for (i, f) in reg.seal_fns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", diag::json_escape(f)));
    }
    out.push_str(&format!(
        "],\n  \"ct_module\": \"{}\",\n  \"exemptions\": [",
        diag::json_escape(&reg.ct_module)
    ));
    let mut first = true;
    for (kind, e) in reg
        .exempt_parsers
        .iter()
        .map(|e| ("parser", e))
        .chain(reg.exempt_secrets.iter().map(|e| ("secret", e)))
        .chain(reg.unsafe_kernels.iter().map(|e| ("unsafe-kernel", e)))
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"kind\": \"{}\", \"subject\": \"{}\", \"reason\": \"{}\"}}",
            kind,
            diag::json_escape(&e.path_or_name),
            diag::json_escape(&e.reason)
        ));
    }
    out.push_str("\n  ],\n  \"obs_labels\": [");
    for (i, l) in reg.obs_labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", diag::json_escape(l)));
    }
    out.push_str("]\n}");
    out
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_detection() {
        assert!(is_crate_root("crates/store/src/lib.rs"));
        assert!(is_crate_root("src/main.rs"));
        assert!(is_crate_root("crates/bench/src/bin/archive.rs"));
        assert!(!is_crate_root("crates/store/src/archive.rs"));
        assert!(!is_crate_root("crates/store/src/bin/deep/x.rs"));
    }

    #[test]
    fn suppression_silences_and_unused_is_flagged() {
        let reg = Registry::nymix();
        let src = b"fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint:allow(panic-free-parser): test shim\n}\n";
        let mut out = Vec::new();
        lint_file("crates/store/src/archive.rs", src, &reg, &mut out);
        assert!(
            !out.iter().any(|f| f.rule == ids::PANIC_FREE),
            "suppressed: {out:?}"
        );

        let src = b"// lint:allow(panic-free-parser): nothing here violates\nfn f() {}\n";
        let mut out = Vec::new();
        lint_file("crates/store/src/archive.rs", src, &reg, &mut out);
        assert!(out.iter().any(|f| f.rule == ids::UNUSED_SUPPRESSION));
    }

    #[test]
    fn suppression_without_reason_does_not_silence() {
        let reg = Registry::nymix();
        let src =
            b"fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint:allow(panic-free-parser)\n}\n";
        let mut out = Vec::new();
        lint_file("crates/store/src/archive.rs", src, &reg, &mut out);
        assert!(out.iter().any(|f| f.rule == ids::PANIC_FREE));
        assert!(out.iter().any(|f| f.rule == ids::SUPPRESSION_SYNTAX));
    }

    #[test]
    fn report_is_balanced_json() {
        let r = report(&Registry::nymix());
        let opens = r.matches('{').count() + r.matches('[').count();
        let closes = r.matches('}').count() + r.matches(']').count();
        assert_eq!(opens, closes);
        assert!(r.contains("trust_modules"));
        assert!(r.contains("sanitizer/src/formats.rs"));
    }
}
