//! Region classification over the token stream.
//!
//! Two passes the rules depend on:
//!
//! * **Test regions** — spans introduced by a `#[cfg(test)]` /
//!   `#[test]`-style attribute. The panic-free and format-hygiene
//!   rules only police production code; `unwrap` in a unit test is
//!   fine, `unwrap` in a wire-format parser is not.
//! * **Suppressions** — `// lint:allow(rule): reason` comments. A
//!   suppression silences findings of that rule on its own line (when
//!   it trails code) or on the next code line (when it stands alone).
//!   A suppression with no written reason, or one that silences
//!   nothing, is itself reported — see [`crate::engine`].

use crate::lexer::{Kind, Token};

/// Marks every token that belongs to a test-only item.
///
/// An attribute is test-ish when its tokens contain the identifier
/// `test` and do **not** contain `not` (so `#[cfg(not(test))]` keeps
/// its production classification). The attributed item extends through
/// the matching close brace of its first block, or its terminating
/// semicolon.
pub fn test_mask(tokens: &[Token], src: &[u8]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is(src, "#") || !next_is(tokens, src, i, "[") {
            i += 1;
            continue;
        }
        let open = i + 1;
        let Some(close) = matching(tokens, src, open) else {
            i += 1;
            continue;
        };
        if !attr_is_test(&tokens[open..=close], src) {
            i = close + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = close + 1;
        while j < tokens.len() && tokens[j].is(src, "#") && next_is(tokens, src, j, "[") {
            match matching(tokens, src, j + 1) {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // The item runs to its first top-level block or semicolon.
        let mut end = tokens.len().saturating_sub(1);
        let mut k = j;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.kind == Kind::Punct && (t.is(src, "{") || t.is(src, "(") || t.is(src, "[")) {
                match matching(tokens, src, k) {
                    Some(c) if t.is(src, "{") => {
                        end = c;
                        break;
                    }
                    Some(c) => {
                        k = c + 1;
                        continue;
                    }
                    None => {
                        end = tokens.len().saturating_sub(1);
                        break;
                    }
                }
            }
            if t.is(src, ";") {
                end = k;
                break;
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

fn attr_is_test(attr: &[Token], src: &[u8]) -> bool {
    let mut has_test = false;
    let mut has_not = false;
    for t in attr {
        if t.kind == Kind::Ident {
            has_test |= t.is(src, "test");
            has_not |= t.is(src, "not");
        }
    }
    has_test && !has_not
}

fn next_is(tokens: &[Token], src: &[u8], i: usize, text: &str) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is(src, text))
}

/// Index of the token closing the bracket opened at `open`, counting
/// all three bracket kinds.
pub fn matching(tokens: &[Token], src: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != Kind::Punct {
            continue;
        }
        match t.text(src) {
            b"{" | b"(" | b"[" => depth += 1,
            b"}" | b")" | b"]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
                if depth < 0 {
                    return None;
                }
            }
            _ => {}
        }
    }
    None
}

/// One parsed `lint:allow` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: u32,
    /// Line whose findings it silences (its own, or the next code line).
    pub target_line: u32,
    /// Rule ids listed inside the parentheses.
    pub rules: Vec<String>,
    /// Whether a non-empty reason followed the colon.
    pub has_reason: bool,
    /// Set when the suppression silenced at least one finding.
    pub used: bool,
}

/// Extracts every `lint:allow(rule, …): reason` comment.
pub fn suppressions(tokens: &[Token], src: &[u8]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Comment {
            continue;
        }
        let text = t.text(src);
        // Doc comments are documentation — they may *mention* the
        // directive syntax without issuing it. Directives live in
        // plain `//` / `/*` comments only.
        if text.starts_with(b"///")
            || text.starts_with(b"//!")
            || text.starts_with(b"/**")
            || text.starts_with(b"/*!")
        {
            continue;
        }
        let Some(parsed) = parse_allow(text) else {
            continue;
        };
        // Trailing comment (code earlier on the same line) targets its
        // own line; a standalone comment targets the next code line.
        let trails_code = tokens[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| p.kind != Kind::Comment);
        let target_line = if trails_code {
            t.line
        } else {
            tokens[i + 1..]
                .iter()
                .find(|n| n.kind != Kind::Comment)
                .map_or(t.line, |n| n.line)
        };
        out.push(Suppression {
            line: t.line,
            target_line,
            rules: parsed.0,
            has_reason: parsed.1,
            used: false,
        });
    }
    out
}

/// Parses `… lint:allow(a, b): reason …` out of a comment's bytes.
fn parse_allow(comment: &[u8]) -> Option<(Vec<String>, bool)> {
    const NEEDLE: &[u8] = b"lint:allow(";
    let at = comment
        .windows(NEEDLE.len())
        .position(|w| w == NEEDLE)
        .map(|p| p + NEEDLE.len())?;
    let rest = comment.get(at..)?;
    let close = rest.iter().position(|&b| b == b')')?;
    let rules: Vec<String> = rest[..close]
        .split(|&b| b == b',')
        .map(|r| String::from_utf8_lossy(r).trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let after = &rest[close + 1..];
    let has_reason = after
        .iter()
        .position(|&b| b == b':')
        .map(|c| {
            after[c + 1..]
                .iter()
                .filter(|b| !b.is_ascii_whitespace())
                .count()
                >= 3
        })
        .unwrap_or(false);
    Some((rules, has_reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn mask_of(src: &str) -> (Vec<Token>, Vec<bool>) {
        let toks = lex(src.as_bytes()).expect("lexes");
        let mask = test_mask(&toks, src.as_bytes());
        (toks, mask)
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn prod() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }";
        let (toks, mask) = mask_of(src);
        let unwraps: Vec<bool> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is(src.as_bytes(), "unwrap"))
            .map(|(_, m)| *m)
            .collect();
        assert_eq!(unwraps, [false, true]);
    }

    #[test]
    fn cfg_not_test_stays_production() {
        let src = "#[cfg(not(test))]\nfn prod() { a.unwrap(); }";
        let (toks, mask) = mask_of(src);
        let unwrap_masked = toks
            .iter()
            .zip(&mask)
            .any(|(t, m)| t.is(src.as_bytes(), "unwrap") && *m);
        assert!(!unwrap_masked);
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\n#[should_panic]\nfn boom() { panic!(); }\nfn fine() {}";
        let (toks, mask) = mask_of(src);
        let panic_masked = toks
            .iter()
            .zip(&mask)
            .any(|(t, m)| t.is(src.as_bytes(), "panic") && *m);
        assert!(panic_masked);
        let fine_masked = toks
            .iter()
            .zip(&mask)
            .any(|(t, m)| t.is(src.as_bytes(), "fine") && *m);
        assert!(!fine_masked);
    }

    #[test]
    fn suppression_trailing_and_standalone() {
        let src = "let a = x; // lint:allow(rule-a): reason here\n\
                   // lint:allow(rule-b): another reason\n\
                   let b = y;";
        let toks = lex(src.as_bytes()).expect("lexes");
        let sups = suppressions(&toks, src.as_bytes());
        assert_eq!(sups.len(), 2);
        assert_eq!(sups[0].target_line, 1);
        assert_eq!(sups[1].target_line, 3);
        assert!(sups.iter().all(|s| s.has_reason));
    }

    #[test]
    fn suppression_without_reason_flagged() {
        let src = "// lint:allow(rule-a)\nlet b = y;";
        let toks = lex(src.as_bytes()).expect("lexes");
        let sups = suppressions(&toks, src.as_bytes());
        assert_eq!(sups.len(), 1);
        assert!(!sups[0].has_reason);
    }
}
