//! `forbid-unsafe`: defence in depth against memory-unsafety creeping
//! into an anonymity system whose whole value is that the *provider*
//! is untrusted, not the client binary.
//!
//! Two layers, both required:
//!
//! 1. every crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`)
//!    must carry `#![forbid(unsafe_code)]` — the compiler-enforced
//!    gate that even `#[allow]` cannot reopen;
//! 2. no `unsafe` token may appear anywhere in the workspace, tests
//!    included — the forbid attribute stops unsafe *code*, but a
//!    string-pasted `unsafe` in a macro or a future attribute edit
//!    would not be caught until review, and this rule makes the
//!    invariant grep-simple.

use super::{ids, Ctx};
use crate::diag::Finding;
use crate::lexer::Kind;

pub fn run(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_crate_root && !has_forbid_unsafe(ctx) {
        out.push(Finding::new(
            ctx.rel,
            1,
            ids::FORBID_UNSAFE,
            "crate root lacks `#![forbid(unsafe_code)]`: every crate in this workspace \
             compiles with the gate on"
                .to_string(),
        ));
    }
    for i in 0..ctx.tokens.len() {
        if ctx.tokens[i].kind == Kind::Ident && ctx.is(i, "unsafe") {
            ctx.finding(
                out,
                i,
                ids::FORBID_UNSAFE,
                "`unsafe` token: this workspace is 100% safe Rust, tests included".to_string(),
            );
        }
    }
}

/// Looks for the token sequence `#` `!` `[` … `forbid` `(` … `unsafe_code` …
fn has_forbid_unsafe(ctx: &Ctx<'_>) -> bool {
    for i in 0..ctx.tokens.len() {
        if !ctx.is(i, "#") {
            continue;
        }
        let Some(bang) = ctx.next_sig(i) else {
            continue;
        };
        if !ctx.is(bang, "!") {
            continue;
        }
        let Some(open) = ctx.next_sig(bang) else {
            continue;
        };
        if !ctx.is(open, "[") {
            continue;
        }
        let Some(close) = ctx.matching(open) else {
            continue;
        };
        let mut saw_forbid = false;
        for j in open + 1..close {
            if ctx.is(j, "forbid") {
                saw_forbid = true;
            }
            if saw_forbid && ctx.is(j, "unsafe_code") {
                return true;
            }
        }
    }
    false
}
