//! `forbid-unsafe`: defence in depth against memory-unsafety creeping
//! into an anonymity system whose whole value is that the *provider*
//! is untrusted, not the client binary.
//!
//! Two layers, both required:
//!
//! 1. every crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`)
//!    must carry `#![forbid(unsafe_code)]` — the compiler-enforced
//!    gate that even `#[allow]` cannot reopen;
//! 2. no `unsafe` token may appear anywhere in the workspace, tests
//!    included — the forbid attribute stops unsafe *code*, but a
//!    string-pasted `unsafe` in a macro or a future attribute edit
//!    would not be caught until review, and this rule makes the
//!    invariant grep-simple.
//!
//! One registered escape hatch: cfg-isolated SIMD kernel files
//! ([`Registry::unsafe_kernels`](crate::registry::Registry)) may hold
//! `unsafe` — hardware intrinsics cannot be expressed without it — but
//! only with a written reason in the registry *and* the fences the
//! exemption promises actually present in the file: a
//! `deny(unsafe_op_in_unsafe_fn)` header and `#[target_feature]` on
//! the kernels. A registered file missing either fence keeps flagging,
//! and unregistered `unsafe` is always a hard finding.

use super::{ids, Ctx};
use crate::diag::Finding;
use crate::lexer::Kind;

pub fn run(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_crate_root && !has_forbid_unsafe(ctx) {
        out.push(Finding::new(
            ctx.rel,
            1,
            ids::FORBID_UNSAFE,
            "crate root lacks `#![forbid(unsafe_code)]`: every crate in this workspace \
             compiles with the gate on"
                .to_string(),
        ));
    }
    let registered = ctx.reg.unsafe_kernel(ctx.rel).is_some();
    if registered && is_fenced_kernel(ctx) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if ctx.tokens[i].kind == Kind::Ident && ctx.is(i, "unsafe") {
            let msg = if registered {
                "`unsafe` in a registered kernel file that lacks the promised fences: \
                 add `#![deny(unsafe_op_in_unsafe_fn)]` and `#[target_feature]` on \
                 every kernel, or drop the registry exemption"
                    .to_string()
            } else {
                "`unsafe` token: this workspace is safe Rust, tests included; SIMD \
                 kernels are the one exception and must be registered (with a reason) \
                 in the lint registry's `unsafe_kernels`"
                    .to_string()
            };
            ctx.finding(out, i, ids::FORBID_UNSAFE, msg);
        }
    }
}

/// A registered kernel file must actually be fenced the way the
/// exemption promises: a module-level `unsafe_op_in_unsafe_fn` deny
/// (so every unsafe operation sits in an explicit `unsafe {}` block)
/// and `#[target_feature]` (so the unsafe exists to reach gated
/// instructions, not for general pointer tricks).
fn is_fenced_kernel(ctx: &Ctx<'_>) -> bool {
    let mut saw_target_feature = false;
    let mut saw_op_deny = false;
    for i in 0..ctx.tokens.len() {
        if ctx.tokens[i].kind != Kind::Ident {
            continue;
        }
        saw_target_feature |= ctx.is(i, "target_feature");
        saw_op_deny |= ctx.is(i, "unsafe_op_in_unsafe_fn");
    }
    saw_target_feature && saw_op_deny
}

/// Looks for the token sequence `#` `!` `[` … `forbid` `(` … `unsafe_code` …
fn has_forbid_unsafe(ctx: &Ctx<'_>) -> bool {
    for i in 0..ctx.tokens.len() {
        if !ctx.is(i, "#") {
            continue;
        }
        let Some(bang) = ctx.next_sig(i) else {
            continue;
        };
        if !ctx.is(bang, "!") {
            continue;
        }
        let Some(open) = ctx.next_sig(bang) else {
            continue;
        };
        if !ctx.is(open, "[") {
            continue;
        }
        let Some(close) = ctx.matching(open) else {
            continue;
        };
        let mut saw_forbid = false;
        for j in open + 1..close {
            if ctx.is(j, "forbid") {
                saw_forbid = true;
            }
            if saw_forbid && ctx.is(j, "unsafe_code") {
                return true;
            }
        }
    }
    false
}
