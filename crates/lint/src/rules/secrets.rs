//! Secret-hygiene rules over registered key-material types.
//!
//! * `secret-debug` — a registered secret type must not derive `Debug`
//!   (one `{:?}` away from key bytes in a log) or `Clone` (implicit
//!   copies of key material the drop-zeroization can't reach).
//! * `secret-format` — a secret type must not appear inside a
//!   `format!`-family macro invocation anywhere in production code.
//! * `secret-zeroize` — the defining file must give the type a `Drop`
//!   impl that wipes (`wipe*`/`zeroize*`/`fill(0)`) its material, so
//!   freed nym keys don't linger in the host's reusable buffers.
//! * `unregistered-secret` — a `*Key`/`*Secret`-named type that is not
//!   registered (or exempted) in the trust-boundary map is flagged:
//!   future key types must opt into the hygiene rules, not drift past
//!   them.

use super::{ids, Ctx};
use crate::diag::Finding;
use crate::lexer::Kind;

const FORMAT_MACROS: &[&str] = &[
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "trace",
    "debug",
    "info",
    "warn",
    "error",
];

pub fn run(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    derives_and_definitions(ctx, out);
    format_macros(ctx, out);
}

/// Scans `#[derive(...)]` attributes and `struct`/`enum` definitions:
/// forbidden derives on secrets, missing `Drop` zeroization, and
/// unregistered secret-named types.
fn derives_and_definitions(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < ctx.tokens.len() {
        if ctx.tokens[i].kind == Kind::Comment || ctx.test_mask[i] {
            i += 1;
            continue;
        }
        // `#[derive(A, B)] … struct Name` — find the derive list and
        // the item it decorates.
        if ctx.is(i, "#") && ctx.next_sig(i).is_some_and(|j| ctx.is(j, "[")) {
            let open = ctx.next_sig(i).unwrap_or(i);
            let Some(close) = ctx.matching(open) else {
                i += 1;
                continue;
            };
            let is_derive = ctx
                .next_sig(open)
                .is_some_and(|j| j < close && ctx.is(j, "derive"));
            if is_derive {
                let mut derives = Vec::new();
                for j in open + 1..close {
                    if ctx.tokens[j].kind == Kind::Ident && !ctx.is(j, "derive") {
                        if let Ok(d) = core::str::from_utf8(ctx.text(j)) {
                            derives.push((j, d.to_string()));
                        }
                    }
                }
                if let Some(name) = item_name_after(ctx, close) {
                    if ctx.reg.secret_named(&name).is_some() {
                        for (j, d) in &derives {
                            if d == "Debug" || d == "Clone" {
                                ctx.finding(
                                    out,
                                    *j,
                                    ids::SECRET_DEBUG,
                                    format!(
                                        "secret type `{name}` derives `{d}`: key material must \
                                         not be printable or implicitly copyable"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            i = close + 1;
            continue;
        }
        // `struct Name` / `enum Name`: zeroize + registration checks.
        if (ctx.is(i, "struct") || ctx.is(i, "enum"))
            && ctx.prev_sig(i).is_none_or(|p| !ctx.is(p, "::"))
        {
            if let Some(j) = ctx.next_sig(i) {
                if ctx.tokens[j].kind == Kind::Ident {
                    if let Ok(name) = core::str::from_utf8(ctx.text(j)) {
                        check_definition(ctx, out, j, name);
                    }
                }
            }
        }
        i += 1;
    }
}

fn check_definition(ctx: &Ctx<'_>, out: &mut Vec<Finding>, name_idx: usize, name: &str) {
    if ctx.reg.secret_named(name).is_some() {
        // Only the registered defining file owes the Drop impl (other
        // files may merely mention the name).
        let defined_here = ctx
            .reg
            .secret_named(name)
            .is_some_and(|s| ctx.rel.ends_with(&s.defined_in));
        if defined_here && !has_wiping_drop(ctx, name) {
            ctx.finding(
                out,
                name_idx,
                ids::SECRET_ZEROIZE,
                format!(
                    "secret type `{name}` has no `impl Drop` that wipes its key material \
                     (expected a drop body calling a `wipe*`/`zeroize*` helper)"
                ),
            );
        }
    } else if ctx.in_src()
        && looks_secret(name)
        && !ctx.reg.secret_exempt(name)
        && !ctx.test_mask[name_idx]
    {
        ctx.finding(
            out,
            name_idx,
            ids::UNREGISTERED_SECRET,
            format!(
                "type `{name}` looks key-bearing but is not in the secret-type registry: \
                 register it in nymix-lint (inheriting zeroize/no-Debug rules) or add an \
                 exemption with a reason"
            ),
        );
    }
}

/// `FooKey`, `FooSecret`, `FooKeys` — the naming shapes that signal
/// key material.
fn looks_secret(name: &str) -> bool {
    name.ends_with("Key") || name.ends_with("Keys") || name.contains("Secret")
}

/// Does this file contain `impl Drop for <name>` whose body mentions a
/// wiping helper?
fn has_wiping_drop(ctx: &Ctx<'_>, name: &str) -> bool {
    for i in 0..ctx.tokens.len() {
        if !ctx.is(i, "impl") {
            continue;
        }
        let Some(d) = ctx.next_sig(i) else { continue };
        let Some(f) = ctx.next_sig(d) else { continue };
        let Some(n) = ctx.next_sig(f) else { continue };
        if !(ctx.is(d, "Drop") && ctx.is(f, "for") && ctx.is(n, name)) {
            continue;
        }
        // Find the impl body and look for a wiping call.
        let Some(open) = (n..ctx.tokens.len()).find(|&j| ctx.is(j, "{")) else {
            continue;
        };
        let Some(close) = ctx.matching(open) else {
            continue;
        };
        for j in open..close {
            if ctx.tokens[j].kind == Kind::Ident {
                if let Ok(t) = core::str::from_utf8(ctx.text(j)) {
                    let t = t.to_ascii_lowercase();
                    if t.starts_with("wipe") || t.starts_with("zeroize") || t == "fill" {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// The `struct`/`enum` name following an attribute at `close`,
/// skipping stacked attributes, visibility and doc comments.
fn item_name_after(ctx: &Ctx<'_>, close: usize) -> Option<String> {
    let mut i = ctx.next_sig(close)?;
    loop {
        if ctx.is(i, "#") {
            let open = ctx.next_sig(i)?;
            i = ctx.next_sig(ctx.matching(open)?)?;
            continue;
        }
        if ctx.is(i, "pub") {
            let j = ctx.next_sig(i)?;
            i = if ctx.is(j, "(") {
                ctx.next_sig(ctx.matching(j)?)?
            } else {
                j
            };
            continue;
        }
        if ctx.is(i, "struct") || ctx.is(i, "enum") || ctx.is(i, "union") {
            let j = ctx.next_sig(i)?;
            return core::str::from_utf8(ctx.text(j)).ok().map(str::to_string);
        }
        return None;
    }
}

/// Secret type names appearing inside `format!`-family macro calls.
fn format_macros(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        if ctx.test_mask[i] || ctx.tokens[i].kind != Kind::Ident {
            continue;
        }
        let Ok(name) = core::str::from_utf8(ctx.text(i)) else {
            continue;
        };
        if !FORMAT_MACROS.contains(&name) {
            continue;
        }
        let Some(bang) = ctx.next_sig(i) else {
            continue;
        };
        if !ctx.is(bang, "!") {
            continue;
        }
        let Some(open) = ctx.next_sig(bang) else {
            continue;
        };
        if !(ctx.is(open, "(") || ctx.is(open, "[") || ctx.is(open, "{")) {
            continue;
        }
        let Some(close) = ctx.matching(open) else {
            continue;
        };
        for j in open + 1..close {
            if ctx.tokens[j].kind != Kind::Ident {
                continue;
            }
            if let Ok(t) = core::str::from_utf8(ctx.text(j)) {
                if ctx.reg.secret_named(t).is_some() {
                    ctx.finding(
                        out,
                        j,
                        ids::SECRET_FORMAT,
                        format!("secret type `{t}` inside `{name}!`: key material must never reach a formatter"),
                    );
                }
            }
        }
    }
}
