//! `obs-label-hygiene` — privacy discipline at observability call
//! sites.
//!
//! The `nymix-obs` recorder only ever exports *registered* static
//! strings (stage names, label keys, metric names) plus plain `u64`
//! values, so a trace artifact can be shipped off-box without a
//! scrubbing pass. That argument holds only if call sites cannot smuggle
//! in ad-hoc strings: this rule re-checks, at the token level, that
//! every string literal inside a `span!`/`counter!`/`gauge!`/
//! `histogram!`/`meter!` invocation is in the registered obs vocabulary
//! (the macros' `const { … }` registry lookups enforce the same set at
//! compile time — the lint makes drift between the two registries a
//! finding rather than a silent fork), and that no registered secret
//! type is mentioned anywhere in an obs call expression, where it would
//! be one field projection away from exported telemetry.

use super::{ids, Ctx};
use crate::diag::Finding;
use crate::lexer::Kind;

/// The `nymix-obs` recording macros whose argument lists are policed.
const OBS_MACROS: &[&str] = &["span", "counter", "gauge", "histogram", "meter"];

pub fn run(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    // A registry without an obs vocabulary polices nothing (synthetic
    // test registries opt in by listing labels).
    if ctx.reg.obs_labels.is_empty() {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if ctx.test_mask[i] || ctx.tokens[i].kind != Kind::Ident {
            continue;
        }
        let Ok(name) = core::str::from_utf8(ctx.text(i)) else {
            continue;
        };
        if !OBS_MACROS.contains(&name) {
            continue;
        }
        // A macro *invocation*: `span ! (`-shaped. `macro_rules! span {`
        // has no `!` after the name, so definitions don't match.
        let Some(bang) = ctx.next_sig(i) else {
            continue;
        };
        if !ctx.is(bang, "!") {
            continue;
        }
        let Some(open) = ctx.next_sig(bang) else {
            continue;
        };
        if !(ctx.is(open, "(") || ctx.is(open, "[") || ctx.is(open, "{")) {
            continue;
        }
        let Some(close) = ctx.matching(open) else {
            continue;
        };
        for j in open + 1..close {
            match ctx.tokens[j].kind {
                Kind::Str => check_literal(ctx, out, j, name),
                Kind::Ident => check_secret(ctx, out, j, name),
                _ => {}
            }
        }
    }
}

/// Every string literal at an obs call site must be a registered
/// stage, label key, or metric name.
fn check_literal(ctx: &Ctx<'_>, out: &mut Vec<Finding>, j: usize, macro_name: &str) {
    let Ok(text) = core::str::from_utf8(ctx.text(j)) else {
        return;
    };
    // Registered labels are plain `"…"` literals; raw/byte strings are
    // never registered, so they fall through with quotes intact and
    // fail the lookup below.
    let inner = text
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or(text);
    if !ctx.reg.obs_label(inner) {
        ctx.finding(
            out,
            j,
            ids::OBS_LABEL_HYGIENE,
            format!(
                "`{inner}` in `{macro_name}!` is not in the registered obs vocabulary: \
                 exported telemetry may carry only registered static labels — extend the \
                 vocabulary in crates/obs/src/registry.rs and mirror it in nymix-lint \
                 (see OBSERVABILITY.md)"
            ),
        );
    }
}

/// A registered secret type mentioned inside an obs call expression is
/// one field projection away from exported telemetry.
fn check_secret(ctx: &Ctx<'_>, out: &mut Vec<Finding>, j: usize, macro_name: &str) {
    let Ok(t) = core::str::from_utf8(ctx.text(j)) else {
        return;
    };
    if ctx.reg.secret_named(t).is_some() {
        ctx.finding(
            out,
            j,
            ids::OBS_LABEL_HYGIENE,
            format!(
                "secret type `{t}` inside `{macro_name}!`: key material must never \
                 feed an observability value (labels and values are exported off-box)"
            ),
        );
    }
}
