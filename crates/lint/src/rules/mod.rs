//! The rule set. Each rule walks the classified token stream of one
//! file and pushes [`Finding`]s; rule ids are the names
//! `lint:allow(...)` suppressions use. `LINTS.md` at the repo root
//! documents every rule's threat-model rationale.

use crate::classify;
use crate::diag::Finding;
use crate::lexer::{Kind, Token};
use crate::registry::Registry;

mod nonce_ct;
mod obs;
mod panic_free;
mod secrets;
mod taxonomy;
mod unsafe_code;

/// Rule ids, in one place so engine/docs/tests agree on spelling.
pub mod ids {
    pub const PANIC_FREE: &str = "panic-free-parser";
    pub const SECRET_DEBUG: &str = "secret-debug";
    pub const SECRET_FORMAT: &str = "secret-format";
    pub const SECRET_ZEROIZE: &str = "secret-zeroize";
    pub const FORBID_UNSAFE: &str = "forbid-unsafe";
    pub const ERROR_TAXONOMY: &str = "error-taxonomy";
    pub const NONCE_LITERAL: &str = "nonce-literal";
    pub const CT_COMPARE: &str = "ct-compare";
    pub const UNREGISTERED_PARSER: &str = "unregistered-parser";
    pub const UNREGISTERED_SECRET: &str = "unregistered-secret";
    pub const UNUSED_SUPPRESSION: &str = "unused-suppression";
    pub const SUPPRESSION_SYNTAX: &str = "suppression-syntax";
    pub const LEX_ERROR: &str = "lex-error";
    pub const REGISTRY_STALE: &str = "registry-stale";
    pub const OBS_LABEL_HYGIENE: &str = "obs-label-hygiene";

    /// Every id, for suppression validation and docs.
    pub const ALL: &[&str] = &[
        PANIC_FREE,
        SECRET_DEBUG,
        SECRET_FORMAT,
        SECRET_ZEROIZE,
        FORBID_UNSAFE,
        ERROR_TAXONOMY,
        NONCE_LITERAL,
        CT_COMPARE,
        UNREGISTERED_PARSER,
        UNREGISTERED_SECRET,
        UNUSED_SUPPRESSION,
        SUPPRESSION_SYNTAX,
        LEX_ERROR,
        REGISTRY_STALE,
        OBS_LABEL_HYGIENE,
    ];
}

/// Everything a rule sees for one file.
pub struct Ctx<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    pub src: &'a [u8],
    pub tokens: &'a [Token],
    /// Parallel to `tokens`: true inside `#[cfg(test)]`/`#[test]` items.
    pub test_mask: &'a [bool],
    pub reg: &'a Registry,
    /// True for `src/lib.rs`, `src/main.rs` and `src/bin/*.rs`.
    pub is_crate_root: bool,
}

impl<'a> Ctx<'a> {
    /// Text of token `i`.
    pub fn text(&self, i: usize) -> &'a [u8] {
        self.tokens[i].text(self.src)
    }

    /// True when token `i` is exactly `text`.
    pub fn is(&self, i: usize, text: &str) -> bool {
        self.tokens.get(i).is_some_and(|t| t.is(self.src, text))
    }

    /// Index of the next non-comment token after `i`.
    pub fn next_sig(&self, i: usize) -> Option<usize> {
        (i + 1..self.tokens.len()).find(|&j| self.tokens[j].kind != Kind::Comment)
    }

    /// Index of the previous non-comment token before `i`.
    pub fn prev_sig(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| self.tokens[j].kind != Kind::Comment)
    }

    /// Matching close bracket for the open bracket at `i`.
    pub fn matching(&self, open: usize) -> Option<usize> {
        classify::matching(self.tokens, self.src, open)
    }

    /// True when the file lives under a `src/` directory (production
    /// code rather than tests/benches/examples).
    pub fn in_src(&self) -> bool {
        self.rel.contains("/src/") || self.rel.starts_with("src/")
    }

    pub fn finding(&self, out: &mut Vec<Finding>, i: usize, rule: &'static str, msg: String) {
        out.push(Finding::new(self.rel, self.tokens[i].line, rule, msg));
    }
}

/// Runs every per-file rule.
pub fn run_all(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    panic_free::run(ctx, out);
    secrets::run(ctx, out);
    obs::run(ctx, out);
    unsafe_code::run(ctx, out);
    taxonomy::run(ctx, out);
    nonce_ct::run(ctx, out);
}
