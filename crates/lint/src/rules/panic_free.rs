//! `panic-free-parser`: registered trust-boundary modules must not
//! panic or silently truncate in production code.
//!
//! Hostile bytes enter these parsers directly (provider-served blobs,
//! crash-torn disk images, documents inside SaniVM). A reachable panic
//! is a remote denial-of-service; a truncating `as` cast is worse — it
//! *mis-parses* instead of failing, which is how length-prefix
//! confusion bugs are born (the PR 3 `pos + n` wrap was exactly this
//! class). Production code in a registered module may not use:
//!
//! * `unwrap()` / `expect(…)` method calls,
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`,
//! * `assert!` / `assert_eq!` / `assert_ne!` (serializer-side contract
//!   asserts carry an explicit `lint:allow` with the reason),
//! * narrowing `as` casts (`as u8/u16/u32/i8/i16/i32`) — use
//!   `try_from` and fail closed.

use super::{ids, Ctx};
use crate::diag::Finding;
use crate::lexer::Kind;

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Integer targets an `as` cast can truncate into. `usize`/`u64` are
/// excluded: every workspace target is 64-bit and the wire formats cap
/// lengths at u32, so those casts only widen.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

pub fn run(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if !ctx.reg.is_trust_module(ctx.rel) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if ctx.test_mask[i] || ctx.tokens[i].kind == Kind::Comment {
            continue;
        }
        let tok = &ctx.tokens[i];
        let text = tok.text(ctx.src);

        if tok.kind == Kind::Ident {
            if let Ok(name) = core::str::from_utf8(text) {
                if PANIC_MACROS.contains(&name) && ctx.next_sig(i).is_some_and(|j| ctx.is(j, "!")) {
                    ctx.finding(
                        out,
                        i,
                        ids::PANIC_FREE,
                        format!("`{name}!` in a trust-boundary module: hostile input must fail closed, not panic"),
                    );
                } else if name == "as" {
                    if let Some(j) = ctx.next_sig(i) {
                        if let Ok(target) = core::str::from_utf8(ctx.text(j)) {
                            if NARROW_INTS.contains(&target) {
                                ctx.finding(
                                    out,
                                    i,
                                    ids::PANIC_FREE,
                                    format!(
                                        "narrowing `as {target}` cast in a trust-boundary module: \
                                         use a checked conversion (truncation mis-parses instead of failing)"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }

        // `.unwrap()` / `.expect(` method calls.
        if tok.kind == Kind::Punct && text == b"." {
            if let Some(j) = ctx.next_sig(i) {
                if let Ok(name) = core::str::from_utf8(ctx.text(j)) {
                    if PANIC_METHODS.contains(&name)
                        && ctx.next_sig(j).is_some_and(|k| ctx.is(k, "("))
                    {
                        ctx.finding(
                            out,
                            j,
                            ids::PANIC_FREE,
                            format!("`.{name}()` in a trust-boundary module: map the error and fail closed"),
                        );
                    }
                }
            }
        }
    }
}
