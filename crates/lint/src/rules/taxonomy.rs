//! `error-taxonomy`: matches over a registered error taxonomy must be
//! exhaustive — no `_ =>` or bare-binding catch-all arms.
//!
//! The manager's availability semantics (PR 6/7) hinge on classifying
//! every `BackendError` variant: `Unavailable` means "state presumed
//! intact, retry later", `Denied`/`Other` mean fail closed. A wildcard
//! arm compiles silently when a new variant lands and lumps it into
//! whatever the old catch-all did — the exact rot the configuration-
//! dependency study documents. Enumerate, or bind with an explicit
//! `e @ (A | B)` pattern that names every variant.
//!
//! `unregistered-parser` also lives here: a production file that looks
//! like a wire-format parser (a 4-byte magic literal plus a
//! `from_bytes`/`parse`/`decode`-shaped function) but is not in the
//! trust-boundary registry is flagged until it registers or documents
//! an exemption.

use super::{ids, Ctx};
use crate::diag::Finding;
use crate::lexer::Kind;

pub fn run(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    wildcard_arms(ctx, out);
    unregistered_parser(ctx, out);
}

fn wildcard_arms(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let enums: Vec<&str> = ctx
        .reg
        .taxonomies_for(ctx.rel)
        .map(|t| t.enum_name.as_str())
        .collect();
    if enums.is_empty() {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if ctx.test_mask[i] || !ctx.is(i, "match") {
            continue;
        }
        // Scrutinee runs to the first top-level `{` (struct literals
        // are not legal bare in a match scrutinee).
        let Some(open) = (i + 1..ctx.tokens.len()).find(|&j| {
            ctx.is(j, "{")
                && ctx.tokens[i + 1..j]
                    .iter()
                    .filter(|t| t.kind == Kind::Punct)
                    .fold(0i64, |d, t| match t.text(ctx.src) {
                        b"(" | b"[" => d + 1,
                        b")" | b"]" => d - 1,
                        _ => d,
                    })
                    == 0
        }) else {
            continue;
        };
        let Some(close) = ctx.matching(open) else {
            continue;
        };
        let arms = split_arms(ctx, open, close);
        let about_taxonomy = arms.iter().any(|(pat_start, pat_end, _)| {
            (*pat_start..*pat_end).any(|j| {
                ctx.tokens[j].kind == Kind::Ident
                    && core::str::from_utf8(ctx.text(j)).is_ok_and(|t| enums.contains(&t))
            })
        });
        if !about_taxonomy {
            continue;
        }
        for (pat_start, pat_end, arrow) in arms {
            let pat: Vec<usize> = (pat_start..pat_end)
                .filter(|&j| ctx.tokens[j].kind != Kind::Comment)
                .collect();
            let is_catch_all = match pat.as_slice() {
                [only] => {
                    ctx.is(*only, "_")
                        || (ctx.tokens[*only].kind == Kind::Ident
                            && !ctx.is(*only, "true")
                            && !ctx.is(*only, "false"))
                }
                _ => false,
            };
            if is_catch_all {
                ctx.finding(
                    out,
                    arrow,
                    ids::ERROR_TAXONOMY,
                    format!(
                        "catch-all arm in a match over {}: enumerate every variant so a \
                         new one forces a decision at this fail-closed site",
                        enums.join("/")
                    ),
                );
            }
        }
    }
}

/// Splits the arms of a match body: `(pattern_start, pattern_end_excl,
/// arrow_idx)` per arm, at body depth 1 only.
fn split_arms(ctx: &Ctx<'_>, open: usize, close: usize) -> Vec<(usize, usize, usize)> {
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < close {
        // Skip comments between arms.
        while i < close && ctx.tokens[i].kind == Kind::Comment {
            i += 1;
        }
        if i >= close {
            break;
        }
        let pat_start = i;
        // Pattern (plus optional guard) runs to `=>` at relative depth 0.
        let mut depth = 0i64;
        let mut arrow = None;
        while i < close {
            let t = &ctx.tokens[i];
            if t.kind == Kind::Punct {
                match t.text(ctx.src) {
                    b"(" | b"[" | b"{" => depth += 1,
                    b")" | b"]" | b"}" => depth -= 1,
                    b"=>" if depth == 0 => {
                        arrow = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        let Some(arrow) = arrow else { break };
        arms.push((pat_start, arrow, arrow));
        // Body: a block, or an expression to the next depth-0 comma.
        i = arrow + 1;
        while i < close && ctx.tokens[i].kind == Kind::Comment {
            i += 1;
        }
        if i < close && ctx.is(i, "{") {
            i = ctx.matching(i).map_or(close, |c| c + 1);
        } else {
            let mut depth = 0i64;
            while i < close {
                let t = &ctx.tokens[i];
                if t.kind == Kind::Punct {
                    match t.text(ctx.src) {
                        b"(" | b"[" | b"{" => depth += 1,
                        b")" | b"]" | b"}" => depth -= 1,
                        b"," if depth == 0 => break,
                        _ => {}
                    }
                }
                i += 1;
            }
        }
        // Skip the separating comma.
        if i < close && ctx.is(i, ",") {
            i += 1;
        }
    }
    arms
}

/// Parser-shaped production files must be registered trust modules.
fn unregistered_parser(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_src() || ctx.reg.is_trust_module(ctx.rel) || ctx.reg.parser_exempt(ctx.rel) {
        return;
    }
    let mut magic_at = None;
    let mut parser_fn_at = None;
    for i in 0..ctx.tokens.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &ctx.tokens[i];
        if t.kind == Kind::Str && magic_at.is_none() {
            let text = t.text(ctx.src);
            // b"ABCD": a four-byte all-caps/digit magic literal (7
            // source bytes: `b`, quote, 4 payload, quote).
            if text.len() == 7
                && text.starts_with(b"b\"")
                && text[2..6]
                    .iter()
                    .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit())
            {
                magic_at = Some(i);
            }
        }
        if t.kind == Kind::Ident && t.is(ctx.src, "fn") {
            if let Some(j) = ctx.next_sig(i) {
                if let Ok(name) = core::str::from_utf8(ctx.text(j)) {
                    if ["from_bytes", "parse", "decode", "recover", "unseal"]
                        .iter()
                        .any(|p| name.contains(p))
                    {
                        parser_fn_at = Some(j);
                    }
                }
            }
        }
    }
    if let (Some(m), Some(_)) = (magic_at, parser_fn_at) {
        ctx.finding(
            out,
            m,
            ids::UNREGISTERED_PARSER,
            "wire-format magic plus a parser-shaped function in an unregistered file: \
             register it as a trust-boundary module in nymix-lint (inheriting the \
             panic-free rules) or add an exemption with a reason"
                .to_string(),
        );
    }
}
