//! Crypto-discipline rules.
//!
//! * `nonce-literal` — an AEAD seal call (`seal_in_place_detached` and
//!   friends from the registry) must not receive a literal array nonce
//!   (`[0u8; 12]`, `&[1, 2, …]`). ChaCha20-Poly1305 is catastrophically
//!   malleable under nonce reuse: two messages under one (key, nonce)
//!   leak the XOR of plaintexts and allow tag forgery. A literal nonce
//!   at the call site is the canonical way that happens.
//! * `ct-compare` — MAC/tag bytes compared with `==`/`!=` outside the
//!   `crypto::ct` module. A short-circuiting byte compare leaks the
//!   first-mismatch index through timing, which lets an adversary forge
//!   a tag byte-by-byte against an unsealing oracle.

use super::{ids, Ctx};
use crate::diag::Finding;
use crate::lexer::Kind;

pub fn run(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    nonce_literal(ctx, out);
    ct_compare(ctx, out);
}

fn nonce_literal(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_src() {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if ctx.test_mask[i] || ctx.tokens[i].kind != Kind::Ident {
            continue;
        }
        let Ok(name) = core::str::from_utf8(ctx.text(i)) else {
            continue;
        };
        if !ctx.reg.seal_fns.iter().any(|f| f == name) {
            continue;
        }
        let Some(open) = ctx.next_sig(i) else {
            continue;
        };
        if !ctx.is(open, "(") {
            continue;
        }
        let Some(close) = ctx.matching(open) else {
            continue;
        };
        for (a_start, a_end) in split_args(ctx, open, close) {
            if let Some(lit_at) = literal_array_arg(ctx, a_start, a_end) {
                ctx.finding(
                    out,
                    lit_at,
                    ids::NONCE_LITERAL,
                    format!(
                        "literal array nonce passed to `{name}`: nonce reuse under one key \
                         breaks ChaCha20-Poly1305 — derive nonces from a counter or RNG"
                    ),
                );
            }
        }
    }
}

/// Depth-1 argument ranges `(start, end_excl)` of a call's parens.
fn split_args(ctx: &Ctx<'_>, open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut start = open + 1;
    let mut depth = 0i64;
    for i in open + 1..close {
        let t = &ctx.tokens[i];
        if t.kind == Kind::Punct {
            match t.text(ctx.src) {
                b"(" | b"[" | b"{" => depth += 1,
                b")" | b"]" | b"}" => depth -= 1,
                b"," if depth == 0 => {
                    if start < i {
                        args.push((start, i));
                    }
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    if start < close {
        args.push((start, close));
    }
    args
}

/// Is this argument a literal array expression — `[0u8; 12]`,
/// `&[1, 2, 3]`, `&mut [0; NONCE_LEN]`? Returns the `[` index.
fn literal_array_arg(ctx: &Ctx<'_>, start: usize, end: usize) -> Option<usize> {
    let mut i = start;
    while i < end && (ctx.is(i, "&") || ctx.is(i, "mut") || ctx.tokens[i].kind == Kind::Comment) {
        i += 1;
    }
    if i >= end || !ctx.is(i, "[") {
        return None;
    }
    let close = ctx.matching(i)?;
    if close + 1 != end {
        return None; // `[..]` followed by more tokens: indexing, not a literal.
    }
    // Every element token must be literal-ish: numbers, commas, `;`,
    // and idents (consts like NONCE_LEN are fine — the *values* are
    // what must be literal). Require at least one Number so `[b]`
    // (a variable) doesn't flag.
    let body = &ctx.tokens[i + 1..close];
    let has_number = body.iter().any(|t| t.kind == Kind::Number);
    let all_literalish = body.iter().all(|t| {
        matches!(t.kind, Kind::Number | Kind::Comment)
            || (t.kind == Kind::Punct && matches!(t.text(ctx.src), b"," | b";"))
            || t.kind == Kind::Ident
    });
    (has_number && all_literalish).then_some(i)
}

fn ct_compare(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if !ctx.in_src() || ctx.rel.ends_with(&ctx.reg.ct_module) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if ctx.test_mask[i] || ctx.tokens[i].kind != Kind::Punct {
            continue;
        }
        let op = ctx.text(i);
        if op != b"==" && op != b"!=" {
            continue;
        }
        let Some((left_idents, left_lit)) = operand_idents(ctx, i, false) else {
            continue;
        };
        let Some((right_idents, right_lit)) = operand_idents(ctx, i, true) else {
            continue;
        };
        // Comparisons against literals (`tag == 0`, `kind != b"NYMS"`)
        // are discriminant checks, not MAC verification.
        if left_lit || right_lit {
            continue;
        }
        let mut idents = left_idents;
        idents.extend(right_idents);
        // Length checks (`tag.len() != TAG_LEN`) are public data.
        if idents.iter().any(|w| w.contains("len")) {
            continue;
        }
        if idents.iter().any(|w| is_tag_word(w)) {
            ctx.finding(
                out,
                i,
                ids::CT_COMPARE,
                "MAC/tag bytes compared with a short-circuiting operator: use \
                 `crypto::ct::eq` so verification time is independent of the \
                 first differing byte"
                    .to_string(),
            );
        }
    }
}

/// Words that signal authenticator material.
fn is_tag_word(w: &str) -> bool {
    matches!(w, "tag" | "mac" | "hmac" | "digest" | "auth")
}

/// Collects the ident *words* of the operand on one side of a
/// comparison (split on `_` and case boundaries so `stored_mac`
/// matches but `machine` does not), walking at most a few tokens and
/// honouring brackets. Also reports whether the operand is a bare
/// literal.
fn operand_idents(ctx: &Ctx<'_>, op: usize, rightward: bool) -> Option<(Vec<String>, bool)> {
    let mut idents = Vec::new();
    let mut first_sig: Option<Kind> = None;
    let mut budget = 12usize;
    let mut i = op;
    loop {
        let j = if rightward {
            ctx.next_sig(i)?
        } else {
            ctx.prev_sig(i)?
        };
        let t = &ctx.tokens[j];
        if budget == 0 {
            break;
        }
        budget -= 1;
        match t.kind {
            Kind::Ident => {
                let w = core::str::from_utf8(t.text(ctx.src)).ok()?;
                // Operand boundary keywords.
                if matches!(
                    w,
                    "if" | "while" | "return" | "let" | "else" | "match" | "assert"
                ) {
                    break;
                }
                if first_sig.is_none() {
                    first_sig = Some(Kind::Ident);
                }
                for word in split_words(w) {
                    idents.push(word);
                }
                i = j;
            }
            Kind::Number | Kind::Str | Kind::Char => {
                if first_sig.is_none() {
                    first_sig = Some(t.kind);
                }
                i = j;
            }
            Kind::Punct => {
                let p = t.text(ctx.src);
                let cont = if rightward {
                    // After the operand starts, `(`/`[` open sub-exprs
                    // we skip over; `.`/`::` continue a path.
                    match p {
                        b"." | b"::" | b"&" | b"*" => true,
                        b"(" | b"[" => {
                            i = ctx.matching(j)?;
                            first_sig.get_or_insert(Kind::Punct);
                            continue;
                        }
                        _ => false,
                    }
                } else {
                    match p {
                        b"." | b"::" => true,
                        b")" | b"]" => {
                            i = matching_open(ctx, j)?;
                            first_sig.get_or_insert(Kind::Punct);
                            continue;
                        }
                        _ => false,
                    }
                };
                if !cont {
                    break;
                }
                i = j;
            }
            Kind::Comment | Kind::Lifetime => {
                i = j;
            }
        }
    }
    let is_literal =
        idents.is_empty() && matches!(first_sig, Some(Kind::Number | Kind::Str | Kind::Char));
    Some((idents, is_literal))
}

/// The open bracket matching a close bracket at `close`.
fn matching_open(ctx: &Ctx<'_>, close: usize) -> Option<usize> {
    let want_open: &[u8] = match ctx.text(close) {
        b")" => b"(",
        b"]" => b"[",
        b"}" => b"{",
        _ => return None,
    };
    let want_close = ctx.text(close);
    let mut depth = 0i64;
    for j in (0..close).rev() {
        let t = &ctx.tokens[j];
        if t.kind != Kind::Punct {
            continue;
        }
        let p = t.text(ctx.src);
        if p == want_close {
            depth += 1;
        } else if p == want_open {
            if depth == 0 {
                return Some(j);
            }
            depth -= 1;
        }
    }
    None
}

/// Splits an ident into lowercase words on `_` and case boundaries:
/// `storedMacTag` → `stored`, `mac`, `tag`; `machine` → `machine`.
fn split_words(ident: &str) -> Vec<String> {
    let mut words = Vec::new();
    for chunk in ident.split('_') {
        let mut cur = String::new();
        let mut prev_lower = false;
        for c in chunk.chars() {
            if c.is_uppercase() && prev_lower && !cur.is_empty() {
                words.push(core::mem::take(&mut cur));
            }
            prev_lower = c.is_lowercase() || c.is_ascii_digit();
            cur.extend(c.to_lowercase());
        }
        if !cur.is_empty() {
            words.push(cur);
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::split_words;

    #[test]
    fn word_splitting() {
        assert_eq!(split_words("stored_mac"), vec!["stored", "mac"]);
        assert_eq!(split_words("HmacTag"), vec!["hmac", "tag"]);
        assert_eq!(split_words("machine"), vec!["machine"]);
        assert_eq!(split_words("macro_rules"), vec!["macro", "rules"]);
    }
}
