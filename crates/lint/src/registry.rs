//! The trust-boundary map: which modules parse hostile bytes, which
//! types hold key material, which enums are fail-closed taxonomies.
//!
//! The registry is the linter's model of the paper's security
//! argument. Rules fire *relative to it*: a parser that is not
//! registered is itself a finding ([`crate::rules`] `unregistered-parser`),
//! so a future PR that adds a wire format cannot silently opt out —
//! it either registers the module (inheriting the panic-free rules) or
//! documents an exemption here with a reason. `nymix-lint --report`
//! dumps the whole map as JSON.

/// A module whose parsers are fed attacker-controlled bytes and must
/// fail closed instead of panicking or truncating.
#[derive(Debug, Clone)]
pub struct TrustModule {
    /// Path suffix matched against workspace-relative file paths.
    pub path: String,
    /// Which invariant this boundary guards (threat-model rationale).
    pub rationale: String,
}

/// A type holding key material: must not derive `Debug`/`Clone`, must
/// zeroize on drop, must never reach a `format!`-family macro.
#[derive(Debug, Clone)]
pub struct SecretType {
    pub name: String,
    /// Path suffix of the file defining the type.
    pub defined_in: String,
    pub rationale: String,
}

/// An error enum that must be matched exhaustively (no wildcard arms)
/// in the registered paths, so a new variant forces a decision at
/// every fail-closed site.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    /// Enum name, matched as a pattern identifier.
    pub enum_name: String,
    /// Path fragments; files containing one are policed.
    pub paths: Vec<String>,
    pub rationale: String,
}

/// An exemption from a registration-freshness rule, with the written
/// reason the report surfaces.
#[derive(Debug, Clone)]
pub struct Exemption {
    pub path_or_name: String,
    pub reason: String,
}

/// Everything the rules consult. [`Registry::nymix`] is the workspace's
/// live map; tests build synthetic registries over fixtures.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    pub trust_modules: Vec<TrustModule>,
    pub secret_types: Vec<SecretType>,
    pub taxonomies: Vec<Taxonomy>,
    /// AEAD seal entry points; literal nonce/key arrays at their call
    /// sites are findings.
    pub seal_fns: Vec<String>,
    /// Path suffix of the constant-time module; `==` on tags/MACs is
    /// only legal here.
    pub ct_module: String,
    /// Parser-shaped files exempt from `unregistered-parser`.
    pub exempt_parsers: Vec<Exemption>,
    /// Secret-named types exempt from `unregistered-secret`.
    pub exempt_secrets: Vec<Exemption>,
    /// Cfg-isolated SIMD kernel files exempt from the `forbid-unsafe`
    /// token ban. Registration is not a blank cheque: the rule
    /// cross-checks that the file really is a fenced kernel
    /// (`#[target_feature]` plus a `deny(unsafe_op_in_unsafe_fn)`
    /// header) and keeps flagging if the fences are missing, and
    /// `unsafe` anywhere else in the workspace stays a hard finding.
    pub unsafe_kernels: Vec<Exemption>,
    /// The `nymix-obs` static vocabulary — every stage name, label
    /// key, and metric name admissible at an obs macro call site.
    /// Mirrors the tables between the `lint-vocabulary-begin/end`
    /// markers in `crates/obs/src/registry.rs` (a cross-check test in
    /// the lint crate keeps the two in sync). Empty = obs hygiene not
    /// policed.
    pub obs_labels: Vec<String>,
}

impl Registry {
    fn module(path: &str, rationale: &str) -> TrustModule {
        TrustModule {
            path: path.to_string(),
            rationale: rationale.to_string(),
        }
    }

    fn secret(name: &str, defined_in: &str, rationale: &str) -> SecretType {
        SecretType {
            name: name.to_string(),
            defined_in: defined_in.to_string(),
            rationale: rationale.to_string(),
        }
    }

    /// The workspace's registered trust boundaries. This is the map
    /// `--report` emits; PRs that add a wire format or key type extend
    /// it here (or land an exemption with a reason).
    pub fn nymix() -> Self {
        Registry {
            trust_modules: vec![
                Self::module(
                    "store/src/archive.rs",
                    "NYM1 wire format: first parser to touch bytes fetched from an \
                     untrusted provider (PR 3 hardening)",
                ),
                Self::module(
                    "store/src/delta.rs",
                    "NYMD delta frames: hostile deltas must fail the Merkle commitment \
                     closed, never panic (PR 3)",
                ),
                Self::module(
                    "store/src/cas.rs",
                    "NYMC chunk manifests: structural invariants on provider-served \
                     bytes (PR 4)",
                ),
                Self::module(
                    "store/src/lzss.rs",
                    "decompressor runs on authenticated-but-possibly-corrupt bytes and \
                     pre-auth sizing paths; must parse-or-error (PR 2)",
                ),
                Self::module(
                    "store/src/sealed.rs",
                    "NYS1 sealed-blob header: parsed before authentication, directly \
                     attacker-controlled (PR 3)",
                ),
                Self::module(
                    "store/src/placement/shard.rs",
                    "NYMP shard headers from byzantine backends: every-bit-flip must \
                     reject, never panic (PR 7)",
                ),
                Self::module(
                    "store/src/disk/journal.rs",
                    "NYMJ/JBAT recovery parser: torn or bit-flipped journal images must \
                     fail closed (PR 6)",
                ),
                Self::module(
                    "store/src/disk/heap.rs",
                    "HOBJ/HDEL heap scan: recovery reads whatever survived the crash \
                     (PR 6)",
                ),
                Self::module(
                    "anon/src/tor.rs",
                    "TGS2 guard-state blobs: persisted guard sets are recovered from \
                     untrusted storage, and a panic here loses the §3.5 guard \
                     continuity defence",
                ),
                Self::module(
                    "sanitizer/src/formats.rs",
                    "document/image parsers inside SaniVM: the malware-scrub path runs \
                     on fully hostile files (paper §3.4)",
                ),
                Self::module(
                    "sanitizer/src/containers.rs",
                    "container (image/zip-shaped) parsers inside SaniVM (paper §3.4)",
                ),
            ],
            secret_types: vec![
                Self::secret(
                    "SealKey",
                    "store/src/sealed.rs",
                    "PBKDF2 output sealing every nym archive; a Debug/format leak or \
                     stray clone defeats the password (paper §3.5)",
                ),
                Self::secret(
                    "HmacKey",
                    "crypto/src/hmac.rs",
                    "ipad/opad midstates are key-equivalent material (PBKDF2 inner loop)",
                ),
                Self::secret(
                    "ChaCha20",
                    "crypto/src/chacha20.rs",
                    "cipher state embeds the key words and buffered keystream",
                ),
                Self::secret(
                    "Poly1305",
                    "crypto/src/poly1305.rs",
                    "r/s one-time authenticator key limbs; leak forges tags",
                ),
            ],
            taxonomies: vec![Taxonomy {
                enum_name: "BackendError".to_string(),
                paths: vec!["core/src/manager/".to_string()],
                rationale: "degraded providers must fail closed: a wildcard arm lets a \
                            future variant (PR 7 added Unavailable) silently fall into \
                            the wrong availability class"
                    .to_string(),
            }],
            seal_fns: vec!["seal_in_place_detached".to_string()],
            ct_module: "crypto/src/ct.rs".to_string(),
            exempt_parsers: vec![
                Exemption {
                    path_or_name: "store/src/disk/dev.rs".to_string(),
                    reason: "SimDisk images are parsed only by the journal/heap readers \
                             (both registered); dev.rs itself only stores bytes"
                        .to_string(),
                },
                Exemption {
                    path_or_name: "store/src/versioned.rs".to_string(),
                    reason: "operates on names it generated itself; blob bytes flow \
                             through the registered sealed/archive parsers"
                        .to_string(),
                },
            ],
            exempt_secrets: vec![Exemption {
                path_or_name: "SecretType".to_string(),
                reason: "nymix-lint's own registry metadata struct; it names secret \
                         types, it does not hold key material"
                    .to_string(),
            }],
            unsafe_kernels: vec![
                Exemption {
                    path_or_name: "crypto/src/sha256/shani.rs".to_string(),
                    reason: "SHA-NI compression kernel: hardware intrinsics are \
                             inherently unsafe. Compiled only under the opt-in \
                             `simd-kernels` feature on x86_64, every kernel fn is \
                             `#[target_feature]`-fenced, and the safe wrapper \
                             re-verifies CPU features at runtime with a portable \
                             fallback (PR 10)"
                        .to_string(),
                },
                Exemption {
                    path_or_name: "crypto/src/sha256/avx2.rs".to_string(),
                    reason: "AVX2 four-lane kernel: a `#[target_feature]` \
                             recompilation of the portable compressor under the same \
                             feature gate, runtime detection and fallback (PR 10)"
                        .to_string(),
                },
            ],
            obs_labels: Self::obs_vocabulary(),
        }
    }

    /// The `nymix-obs` vocabulary, mirroring the tables between the
    /// `lint-vocabulary-begin/end` markers in
    /// `crates/obs/src/registry.rs` — stages, label keys, counters,
    /// gauges, histograms. `obs_vocabulary_matches_nymix_obs` in the
    /// lint crate's tests fails if the two registries drift.
    pub fn obs_vocabulary() -> Vec<String> {
        [
            // Stages.
            "capture",
            "chunk",
            "seal",
            "upload",
            "fetch",
            "replay",
            "resolve",
            "journal_commit",
            "recovery",
            "shard_write",
            "quorum_wait",
            "repair",
            "browse",
            "restore",
            // Label keys.
            "session",
            "child",
            "exit",
            "bytes",
            "objects",
            "epoch",
            "chunks",
            // Counters.
            "crypto.aead.seals",
            "crypto.aead.opens",
            "crypto.sha256.blocks",
            "crypto.kdf.calls",
            "cloud.auth",
            "cloud.puts",
            "cloud.gets",
            "cloud.ops",
            "cloud.dropped",
            "cloud.backoff_us",
            "disk.commits",
            "disk.recoveries",
            "disk.writes",
            "disk.bytes_written",
            "disk.reads",
            "disk.bytes_read",
            "disk.fsyncs",
            "disk.tier_hits",
            "disk.tier_misses",
            "placement.shard_writes",
            "placement.shard_failures",
            "placement.repair_passes",
            "placement.shards_rebuilt",
            "placement.deletes_flushed",
            "merkle.cache_hit",
            "merkle.leaf_rehash",
            // Gauges.
            "disk.garbage_bytes",
            "placement.repair_queue",
            "placement.pending_deletes",
            "crypto.sha256.backend",
            // Histograms.
            "disk.commit_bytes",
            "cloud.put_bytes",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    /// True when `rel_path` is a registered trust-boundary module.
    pub fn is_trust_module(&self, rel_path: &str) -> bool {
        self.trust_modules
            .iter()
            .any(|m| rel_path.ends_with(&m.path))
    }

    /// Taxonomies applying to `rel_path`.
    pub fn taxonomies_for<'a>(&'a self, rel_path: &'a str) -> impl Iterator<Item = &'a Taxonomy> {
        self.taxonomies
            .iter()
            .filter(move |t| t.paths.iter().any(|p| rel_path.contains(p.as_str())))
    }

    /// The registered secret type named `name`, if any.
    pub fn secret_named(&self, name: &str) -> Option<&SecretType> {
        self.secret_types.iter().find(|s| s.name == name)
    }

    pub fn parser_exempt(&self, rel_path: &str) -> bool {
        self.exempt_parsers
            .iter()
            .any(|e| rel_path.ends_with(&e.path_or_name))
    }

    pub fn secret_exempt(&self, name: &str) -> bool {
        self.exempt_secrets.iter().any(|e| e.path_or_name == name)
    }

    /// The registered unsafe-kernel exemption covering `rel_path`, if
    /// any.
    pub fn unsafe_kernel(&self, rel_path: &str) -> Option<&Exemption> {
        self.unsafe_kernels
            .iter()
            .find(|e| rel_path.ends_with(&e.path_or_name))
    }

    /// True when `name` is in the registered obs vocabulary.
    pub fn obs_label(&self, name: &str) -> bool {
        self.obs_labels.iter().any(|l| l == name)
    }
}
