//! nymix-lint: workspace-wide static analysis for the Nymix trust
//! boundaries.
//!
//! The suite's security argument (paper §3) leans on a handful of
//! mechanically checkable invariants: wire-format parsers fail closed
//! on hostile bytes, key material is unprintable and zeroized, no
//! crate admits `unsafe`, error taxonomies are matched exhaustively,
//! and AEAD call sites respect nonce/constant-time discipline. This
//! crate enforces all of them over the raw token stream — no rustc
//! plugin, no external dependencies, total on arbitrary bytes.
//!
//! Run it as `cargo run -p nymix-lint --release -- --deny-all` (the CI
//! `static-analysis` job does). Every rule, its threat-model
//! rationale, and the `// lint:allow(rule): reason` suppression syntax
//! is documented in `LINTS.md` at the repository root.
//!
//! Pipeline: [`lexer`] turns bytes into tokens (or a [`lexer::LexError`],
//! never a panic), [`classify`] marks `#[cfg(test)]` regions and
//! collects suppressions, [`registry`] holds the trust-boundary map,
//! [`rules`] walks the classified stream, and [`engine`] drives the
//! workspace scan and suppression accounting.

#![forbid(unsafe_code)]

pub mod classify;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod registry;
pub mod rules;
