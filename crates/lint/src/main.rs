//! CLI for nymix-lint. See `LINTS.md` for the rule catalogue.
//!
//! ```text
//! nymix-lint [--root DIR] [--json] [--deny-all]   lint the workspace
//! nymix-lint --report                             dump the trust-boundary map
//! ```
//!
//! Exit status is 1 iff `--deny-all` was given and findings survived
//! suppression filtering; otherwise 0 (so `--json` consumers can diff
//! output without wrestling exit codes).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use nymix_lint::diag;
use nymix_lint::engine;
use nymix_lint::registry::Registry;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut deny_all = false;
    let mut report = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--report" => report = true,
            "--help" | "-h" => {
                eprintln!(
                    "nymix-lint [--root DIR] [--json] [--deny-all] [--report]\n\
                     see LINTS.md for the rule catalogue and suppression syntax"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let reg = Registry::nymix();
    if report {
        println!("{}", engine::report(&reg));
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match engine::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return usage("no workspace root found; pass --root"),
            }
        }
    };

    let findings = engine::run_workspace(&root, &reg);
    if json {
        println!("{}", diag::to_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        eprintln!(
            "nymix-lint: {} finding{} across the workspace",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    if deny_all && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("nymix-lint: {msg} (try --help)");
    ExitCode::FAILURE
}
