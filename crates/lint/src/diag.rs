//! Findings and their human/JSON renderings.

/// One diagnostic: `file:line` plus a rule id and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for whole-file/workspace findings).
    pub line: u32,
    /// Stable rule id (the thing `lint:allow(...)` names).
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    pub fn new(file: &str, line: u32, rule: &'static str, message: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message,
        }
    }

    /// `path:line: [rule] message` — the clickable human form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts findings for stable output: by file, then line, then rule.
pub fn sort(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (stable field order).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            json_escape(f.rule),
            json_escape(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_sort() {
        let mut fs = vec![
            Finding::new("b.rs", 2, "r", "m".into()),
            Finding::new("a.rs", 9, "r", "m".into()),
            Finding::new("a.rs", 1, "r", "m".into()),
        ];
        sort(&mut fs);
        assert_eq!(fs[0].render(), "a.rs:1: [r] m");
        assert_eq!(fs[2].file, "b.rs");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let j = to_json(&[Finding::new("x.rs", 1, "r", "say \"hi\"".into())]);
        assert!(j.contains("say \\\"hi\\\""));
    }
}
