//! Failing nonce fixture: literal nonce at the seal site.

pub fn seal(key: &[u8; 32], data: &mut [u8]) -> [u8; 16] {
    seal_in_place_detached(key, &[0u8; 12], b"", data)
}

fn seal_in_place_detached(_k: &[u8; 32], _n: &[u8; 12], _aad: &[u8], _d: &mut [u8]) -> [u8; 16] {
    [0; 16]
}
