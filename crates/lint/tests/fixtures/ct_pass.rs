//! Passing ct fixture: constant-time comparison, and legal length checks.

pub fn verify(tag: &[u8], want: &[u8]) -> bool {
    if tag.len() != want.len() {
        return false;
    }
    ct_eq(tag, want)
}

fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}
