//! Failing suppression fixture: the allow silences nothing.

pub fn parse(bytes: &[u8]) -> usize {
    // lint:allow(panic-free-parser): nothing on the next line violates anything
    bytes.len()
}
