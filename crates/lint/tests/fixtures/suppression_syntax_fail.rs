//! Failing suppression fixture: no reason, and an unknown rule id.

pub fn parse(bytes: &[u8]) -> u16 {
    // lint:allow(panic-free-parser)
    let n = bytes.len() as u16;
    // lint:allow(no-such-rule): misspelled rule id
    n
}
