//! Fixture: `unsafe` without the kernel fences — no
//! `deny(unsafe_op_in_unsafe_fn)` header, no `#[target_feature]`.
//! Flags even when the path carries a registered exemption: the
//! registry entry promises fences the file does not have.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
