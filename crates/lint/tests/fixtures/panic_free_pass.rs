//! Passing trust-module fixture: every parse failure maps to an error.

pub fn parse(bytes: &[u8]) -> Result<u16, ()> {
    let pair: [u8; 2] = bytes.get(..2).ok_or(())?.try_into().map_err(|_| ())?;
    let n = u16::from_le_bytes(pair);
    let wide = u64::from(n);
    let _ = wide as usize; // widening: allowed
    Ok(n)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_may_panic() {
        super::parse(&[1, 2]).unwrap();
        assert!(true);
    }
}
