//! Fixture: obs call sites violating label hygiene on purpose.
//! Expected findings: one ad-hoc counter name, one unregistered label
//! key, one secret type inside an obs expression — three
//! `obs-label-hygiene` findings.

fn leaky(key: &FixtureKey, nym_name: &str) {
    // Registered stage + registered key: this line itself is clean.
    let _ok = nymix_obs::span!("capture", "session" => 7u64);
    // Ad-hoc metric name: not in the vocabulary.
    nymix_obs::counter!("totally.adhoc", 1u64);
    // Unregistered label key (a nym name is exactly what must not
    // reach a trace).
    let _bad = nymix_obs::span!("capture", "nym_name" => nym_name.len());
    // Registered secret type feeding an obs value.
    nymix_obs::gauge!("capture", FixtureKey::material_len(key));
}
