//! Failing secret fixture: printable, clonable key type.

#[derive(Debug, Clone)]
pub struct FixtureKey {
    key: [u8; 32],
}
