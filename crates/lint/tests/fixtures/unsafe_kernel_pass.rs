//! Fixture: a properly fenced SIMD kernel file. With a matching
//! `unsafe_kernels` registry entry this is clean — the file carries
//! both fences the exemption promises (`deny(unsafe_op_in_unsafe_fn)`
//! and `#[target_feature]` on the kernel). Without the registration it
//! must still flag every `unsafe` token.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

/// Safe wrapper: re-verifies the CPU features before entering the
/// kernel, falling back to a portable path otherwise.
pub fn compress(state: &mut [u32; 8], data: &[u8]) {
    if std::arch::is_x86_feature_detected!("sha") {
        // SAFETY: the detection above proves the features the kernel
        // was compiled for are present on this CPU.
        unsafe { compress_hw(state, data) }
    }
}

#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn compress_hw(state: &mut [u32; 8], data: &[u8]) {
    let _ = (state, data);
}
