//! Failing ct fixture: short-circuiting equality on a MAC.

pub fn verify(tag: &[u8], want_mac: &[u8]) -> bool {
    tag == want_mac
}
