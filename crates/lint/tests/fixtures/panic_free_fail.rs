//! Failing trust-module fixture: one of each forbidden construct.

pub fn parse(bytes: &[u8]) -> u16 {
    let first = *bytes.first().unwrap();
    let second = *bytes.get(1).expect("second byte");
    if first == 0 {
        panic!("zero");
    }
    assert!(second != 0);
    let n = bytes.len() as u16;
    match first {
        0..=9 => n,
        _ => unreachable!(),
    }
}
