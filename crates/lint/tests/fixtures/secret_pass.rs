//! Passing secret fixture: unprintable key type with a wiping Drop.

pub struct FixtureKey {
    key: [u8; 32],
}

impl Drop for FixtureKey {
    fn drop(&mut self) {
        wipe_bytes(&mut self.key);
    }
}

fn wipe_bytes(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
}
