//! Fixture: obs call sites that keep to the registered vocabulary —
//! must stay clean under `obs-label-hygiene`.

fn instrumented(commits: u64) {
    let _span = nymix_obs::span!("capture", "session" => 7u64);
    nymix_obs::counter!("disk.commits", commits);
}

// A macro *definition* with an obs-macro name is not a call site.
macro_rules! span {
    ($x:expr) => {
        $x
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_not_policed() {
        // Ad-hoc labels are fine in tests (never exported).
        nymix_obs::counter!("tests.adhoc.scratch", 1u64);
    }
}
