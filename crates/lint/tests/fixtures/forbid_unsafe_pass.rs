//! Passing crate-root fixture.

#![forbid(unsafe_code)]

pub fn safe() {}
