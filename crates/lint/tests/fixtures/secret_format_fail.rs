//! Failing secret fixture: key type inside a format macro.

pub fn log_key() {
    println!("{:?}", FixtureKey::load());
}
