//! Failing registration fixture: wire magic plus a parser, unregistered.

const MAGIC: &[u8; 4] = b"FIXT";

pub fn from_bytes(bytes: &[u8]) -> Result<(), ()> {
    if bytes.get(..4) != Some(MAGIC.as_slice()) {
        return Err(());
    }
    Ok(())
}
