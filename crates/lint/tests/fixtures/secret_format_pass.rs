//! Passing secret fixture: formatting that never touches a secret type.

pub fn log_key(label: &str) {
    println!("loaded key for {label}");
}
