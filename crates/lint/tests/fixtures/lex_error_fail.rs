//! Failing lexer fixture: unterminated string literal.

pub fn broken() {
    let _s = "never closed;
}
