//! Failing registration fixture: key-named type outside the registry.

pub struct StrayKey {
    material: [u8; 32],
}
