//! Passing nonce fixture: nonce derived from a counter.

pub fn seal(key: &[u8; 32], counter: u64, data: &mut [u8]) -> [u8; 16] {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&counter.to_le_bytes());
    seal_in_place_detached(key, &nonce, b"", data)
}

fn seal_in_place_detached(_k: &[u8; 32], _n: &[u8; 12], _aad: &[u8], _d: &mut [u8]) -> [u8; 16] {
    [0; 16]
}
