//! Passing suppression fixture: a reasoned allow that silences a finding.

pub fn parse(bytes: &[u8]) -> u16 {
    // lint:allow(panic-free-parser): fixture demonstrating a used, reasoned suppression
    bytes.len() as u16
}
