//! Failing taxonomy fixture: wildcard and bare-binding catch-alls.

pub enum FixtureError {
    Denied,
    Transient(String),
    Other(String),
}

pub fn classify(e: FixtureError) -> &'static str {
    match e {
        FixtureError::Denied => "denied",
        _ => "something else",
    }
}

pub fn classify2(e: FixtureError) -> &'static str {
    match e {
        FixtureError::Denied => "denied",
        other => {
            let _ = other;
            "other"
        }
    }
}
