//! Failing secret fixture: registered type with no wiping Drop.

pub struct FixtureKey {
    key: [u8; 32],
}

impl FixtureKey {
    pub fn bytes(&self) -> &[u8] {
        &self.key
    }
}
