//! Passing taxonomy fixture: every variant named, no catch-all.

pub enum FixtureError {
    Denied,
    Transient(String),
    Other(String),
}

pub fn classify(e: FixtureError) -> &'static str {
    match e {
        FixtureError::Denied => "denied",
        FixtureError::Transient(_) => "transient",
        e @ FixtureError::Other(_) => {
            let _ = e;
            "other"
        }
    }
}
