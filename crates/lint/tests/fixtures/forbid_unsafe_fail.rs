//! Failing crate-root fixture: no forbid attribute, and an unsafe block.

pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
