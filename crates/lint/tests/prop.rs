//! Property tests pinning the lexer's totality: `lex` returns
//! `Ok(tokens)` or `Err(LexError)` on *any* byte sequence — arbitrary
//! garbage, mutated real source, truncated files — and never panics.
//! The linter runs unattended in CI over whatever bytes land in the
//! tree, so parse-or-error is a hard requirement, same as the wire
//! parsers it polices.

use nymix_lint::classify;
use nymix_lint::lexer::lex;
use proptest::prelude::*;

/// Real source to mutate: the lexer's own implementation exercises
/// every token class (raw strings, chars, lifetimes, nested comments).
const REAL_SOURCE: &str = include_str!("../src/lexer.rs");

proptest! {
    #[test]
    fn lex_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Ok or Err both fine; a panic fails the test.
        let _ = lex(&bytes);
    }

    #[test]
    fn lex_is_total_on_mutated_real_source(
        offset in 0usize..8192,
        len in 1usize..64,
        fill in any::<u8>(),
    ) {
        let mut bytes = REAL_SOURCE.as_bytes().to_vec();
        let start = offset % bytes.len();
        let end = (start + len).min(bytes.len());
        for b in &mut bytes[start..end] {
            *b = fill;
        }
        let _ = lex(&bytes);
    }

    #[test]
    fn lex_is_total_on_truncated_real_source(cut in 0usize..16384) {
        let src = REAL_SOURCE.as_bytes();
        let cut = cut % (src.len() + 1);
        let _ = lex(&src[..cut]);
    }

    #[test]
    fn classification_is_total_over_lexed_tokens(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(tokens) = lex(&bytes) {
            let mask = classify::test_mask(&tokens, &bytes);
            prop_assert_eq!(mask.len(), tokens.len());
            let _ = classify::suppressions(&tokens, &bytes);
        }
    }

    #[test]
    fn tokens_tile_the_input(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(tokens) = lex(&bytes) {
            // Spans are in-bounds, ordered, non-overlapping.
            let mut prev_end = 0usize;
            for t in &tokens {
                prop_assert!(t.start >= prev_end);
                prop_assert!(t.end <= bytes.len());
                prop_assert!(t.start < t.end);
                prev_end = t.end;
            }
        }
    }
}
