//! Drives every rule over the fixture corpus: each rule has at least
//! one fixture that must trip it and one that must stay clean. The
//! fixtures live in `tests/fixtures/` (excluded from the workspace
//! scan — they violate the rules on purpose).

use nymix_lint::engine::lint_file;
use nymix_lint::registry::{Exemption, Registry, SecretType, Taxonomy, TrustModule};
use nymix_lint::rules::ids;

/// A synthetic registry aimed at the fixture paths, mirroring the shape
/// of [`Registry::nymix`] without depending on the real workspace map.
fn fixture_registry() -> Registry {
    Registry {
        trust_modules: vec![TrustModule {
            path: "fixtures/src/parser.rs".to_string(),
            rationale: "fixture trust boundary".to_string(),
        }],
        secret_types: vec![SecretType {
            name: "FixtureKey".to_string(),
            defined_in: "fixtures/src/secret.rs".to_string(),
            rationale: "fixture secret".to_string(),
        }],
        taxonomies: vec![Taxonomy {
            enum_name: "FixtureError".to_string(),
            paths: vec!["fixtures/".to_string()],
            rationale: "fixture taxonomy".to_string(),
        }],
        seal_fns: vec!["seal_in_place_detached".to_string()],
        ct_module: "fixtures/src/ct.rs".to_string(),
        exempt_parsers: vec![Exemption {
            path_or_name: "fixtures/src/exempted.rs".to_string(),
            reason: "fixture exemption".to_string(),
        }],
        exempt_secrets: vec![],
        unsafe_kernels: vec![Exemption {
            path_or_name: "fixtures/src/sha256/kernel.rs".to_string(),
            reason: "fixture SIMD kernel".to_string(),
        }],
        obs_labels: vec![
            "capture".to_string(),
            "session".to_string(),
            "disk.commits".to_string(),
        ],
    }
}

fn fixture(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Lints a fixture as though it sat at `rel` in the workspace.
fn lint(name: &str, rel: &str) -> Vec<&'static str> {
    let reg = fixture_registry();
    let mut out = Vec::new();
    lint_file(rel, &fixture(name), &reg, &mut out);
    out.iter().map(|f| f.rule).collect()
}

/// The trust-module rel path the synthetic registry polices.
const PARSER: &str = "fixtures/src/parser.rs";

#[test]
fn panic_free_fail_trips_every_construct() {
    let rules = lint("panic_free_fail.rs", PARSER);
    // unwrap, expect, panic!, assert!, `as u16`, unreachable!.
    assert!(
        rules.iter().filter(|r| **r == ids::PANIC_FREE).count() >= 6,
        "expected >=6 panic-free findings, got {rules:?}"
    );
}

#[test]
fn panic_free_pass_is_clean_and_ignores_tests() {
    let rules = lint("panic_free_pass.rs", PARSER);
    assert!(rules.is_empty(), "expected clean, got {rules:?}");
}

#[test]
fn panic_free_only_polices_registered_modules() {
    let rules = lint("panic_free_fail.rs", "fixtures/src/unregistered_helper.rs");
    assert!(!rules.contains(&ids::PANIC_FREE), "got {rules:?}");
}

#[test]
fn secret_debug_fail_flags_both_derives() {
    let rules = lint("secret_debug_fail.rs", "fixtures/src/secret.rs");
    assert_eq!(
        rules.iter().filter(|r| **r == ids::SECRET_DEBUG).count(),
        2,
        "Debug and Clone each flag: {rules:?}"
    );
}

#[test]
fn secret_zeroize_fail_flags_missing_drop() {
    let rules = lint("secret_zeroize_fail.rs", "fixtures/src/secret.rs");
    assert!(rules.contains(&ids::SECRET_ZEROIZE), "got {rules:?}");
}

#[test]
fn secret_pass_is_clean() {
    let rules = lint("secret_pass.rs", "fixtures/src/secret.rs");
    assert!(rules.is_empty(), "expected clean, got {rules:?}");
}

#[test]
fn secret_format_fail_flags_macro_use() {
    let rules = lint("secret_format_fail.rs", "fixtures/src/other.rs");
    assert!(rules.contains(&ids::SECRET_FORMAT), "got {rules:?}");
}

#[test]
fn secret_format_pass_is_clean() {
    let rules = lint("secret_format_pass.rs", "fixtures/src/other.rs");
    assert!(rules.is_empty(), "expected clean, got {rules:?}");
}

#[test]
fn forbid_unsafe_fail_flags_root_and_token() {
    let rules = lint("forbid_unsafe_fail.rs", "fixtures/src/lib.rs");
    // Missing attribute + two `unsafe` tokens (fn is one token-site,
    // the block another... here: one `unsafe {` block).
    assert!(
        rules.iter().filter(|r| **r == ids::FORBID_UNSAFE).count() >= 2,
        "got {rules:?}"
    );
}

#[test]
fn forbid_unsafe_pass_is_clean() {
    let rules = lint("forbid_unsafe_pass.rs", "fixtures/src/lib.rs");
    assert!(rules.is_empty(), "expected clean, got {rules:?}");
}

#[test]
fn forbid_unsafe_attr_not_required_off_root() {
    let rules = lint("secret_format_pass.rs", "fixtures/src/other.rs");
    assert!(!rules.contains(&ids::FORBID_UNSAFE), "got {rules:?}");
}

#[test]
fn unsafe_kernel_registered_and_fenced_is_clean() {
    let rules = lint("unsafe_kernel_pass.rs", "fixtures/src/sha256/kernel.rs");
    assert!(rules.is_empty(), "expected clean, got {rules:?}");
}

#[test]
fn unsafe_kernel_unregistered_still_flags() {
    // The same fenced kernel at a path with no registry entry: every
    // `unsafe` token flags — registration (with a reason) is required.
    let rules = lint("unsafe_kernel_pass.rs", "fixtures/src/sha256/rogue.rs");
    assert_eq!(
        rules.iter().filter(|r| **r == ids::FORBID_UNSAFE).count(),
        2,
        "unsafe block + unsafe fn each flag: {rules:?}"
    );
}

#[test]
fn unsafe_kernel_registered_but_unfenced_still_flags() {
    // Registered path, but the file lacks the promised
    // `deny(unsafe_op_in_unsafe_fn)` + `#[target_feature]` fences.
    let rules = lint("unsafe_kernel_fail.rs", "fixtures/src/sha256/kernel.rs");
    assert!(rules.contains(&ids::FORBID_UNSAFE), "got {rules:?}");
}

#[test]
fn taxonomy_fail_flags_wildcard_and_bare_binding() {
    let rules = lint("taxonomy_fail.rs", "fixtures/src/classify.rs");
    assert_eq!(
        rules.iter().filter(|r| **r == ids::ERROR_TAXONOMY).count(),
        2,
        "`_` and a bare binding each flag: {rules:?}"
    );
}

#[test]
fn taxonomy_pass_allows_explicit_bindings() {
    let rules = lint("taxonomy_pass.rs", "fixtures/src/classify.rs");
    assert!(rules.is_empty(), "expected clean, got {rules:?}");
}

#[test]
fn nonce_fail_flags_literal_array() {
    let rules = lint("nonce_fail.rs", "fixtures/src/sealer.rs");
    assert!(rules.contains(&ids::NONCE_LITERAL), "got {rules:?}");
}

#[test]
fn nonce_pass_allows_derived_nonces() {
    let rules = lint("nonce_pass.rs", "fixtures/src/sealer.rs");
    assert!(!rules.contains(&ids::NONCE_LITERAL), "got {rules:?}");
}

#[test]
fn ct_fail_flags_short_circuit_compare() {
    let rules = lint("ct_fail.rs", "fixtures/src/verify.rs");
    assert!(rules.contains(&ids::CT_COMPARE), "got {rules:?}");
}

#[test]
fn ct_pass_allows_ct_eq_and_len_checks() {
    let rules = lint("ct_pass.rs", "fixtures/src/verify.rs");
    assert!(rules.is_empty(), "expected clean, got {rules:?}");
}

#[test]
fn ct_module_itself_is_exempt() {
    let rules = lint("ct_fail.rs", "fixtures/src/ct.rs");
    assert!(!rules.contains(&ids::CT_COMPARE), "got {rules:?}");
}

#[test]
fn unregistered_parser_flagged_then_cleared_by_registration() {
    let rules = lint("unregistered_parser_fail.rs", "fixtures/src/newformat.rs");
    assert!(rules.contains(&ids::UNREGISTERED_PARSER), "got {rules:?}");
    // Registering the same file as a trust module clears the finding.
    let rules = lint("unregistered_parser_fail.rs", PARSER);
    assert!(!rules.contains(&ids::UNREGISTERED_PARSER), "got {rules:?}");
    // So does an exemption.
    let rules = lint("unregistered_parser_fail.rs", "fixtures/src/exempted.rs");
    assert!(!rules.contains(&ids::UNREGISTERED_PARSER), "got {rules:?}");
}

#[test]
fn unregistered_secret_flagged_outside_registry() {
    let rules = lint("unregistered_secret_fail.rs", "fixtures/src/stray.rs");
    assert!(rules.contains(&ids::UNREGISTERED_SECRET), "got {rules:?}");
}

#[test]
fn reasoned_suppression_silences_and_counts_as_used() {
    let rules = lint("suppression_pass.rs", PARSER);
    assert!(rules.is_empty(), "expected clean, got {rules:?}");
}

#[test]
fn unused_suppression_is_a_finding() {
    let rules = lint("suppression_unused_fail.rs", PARSER);
    assert_eq!(rules, vec![ids::UNUSED_SUPPRESSION], "got {rules:?}");
}

#[test]
fn reasonless_and_unknown_rule_suppressions_are_findings() {
    let rules = lint("suppression_syntax_fail.rs", PARSER);
    assert!(
        rules
            .iter()
            .filter(|r| **r == ids::SUPPRESSION_SYNTAX)
            .count()
            >= 2,
        "no-reason and unknown-rule each flag: {rules:?}"
    );
    // The reasonless allow does NOT silence the violation under it.
    assert!(rules.contains(&ids::PANIC_FREE), "got {rules:?}");
}

#[test]
fn obs_label_fail_flags_adhoc_labels_and_secret() {
    let rules = lint("obs_label_fail.rs", "fixtures/src/metrics.rs");
    assert_eq!(
        rules
            .iter()
            .filter(|r| **r == ids::OBS_LABEL_HYGIENE)
            .count(),
        3,
        "ad-hoc name, unregistered key, secret type each flag: {rules:?}"
    );
}

#[test]
fn obs_label_pass_is_clean_and_ignores_tests_and_definitions() {
    let rules = lint("obs_label_pass.rs", "fixtures/src/metrics.rs");
    assert!(rules.is_empty(), "expected clean, got {rules:?}");
}

#[test]
fn obs_rule_inert_without_a_vocabulary() {
    let mut reg = fixture_registry();
    reg.obs_labels.clear();
    let mut out = Vec::new();
    lint_file(
        "fixtures/src/metrics.rs",
        &fixture("obs_label_fail.rs"),
        &reg,
        &mut out,
    );
    assert!(
        !out.iter().any(|f| f.rule == ids::OBS_LABEL_HYGIENE),
        "empty vocabulary must not police: {out:?}"
    );
}

/// The lint registry's obs vocabulary must stay in lock-step with the
/// tables between the `lint-vocabulary-begin/end` markers in
/// `crates/obs/src/registry.rs` — drift in either direction fails.
#[test]
fn obs_vocabulary_matches_nymix_obs() {
    let path = format!("{}/../obs/src/registry.rs", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let begin = src
        .find("lint-vocabulary-begin")
        .expect("begin marker in obs registry");
    let end = src
        .find("lint-vocabulary-end")
        .expect("end marker in obs registry");
    let mut from_obs: Vec<String> = Vec::new();
    for line in src[begin..end].lines() {
        if line.trim_start().starts_with("//") {
            continue;
        }
        let mut rest = line;
        while let Some(a) = rest.find('"') {
            let tail = &rest[a + 1..];
            let Some(b) = tail.find('"') else { break };
            from_obs.push(tail[..b].to_string());
            rest = &tail[b + 1..];
        }
    }
    from_obs.sort();
    from_obs.dedup();
    let mut from_lint = Registry::obs_vocabulary();
    from_lint.sort();
    from_lint.dedup();
    assert_eq!(
        from_obs, from_lint,
        "nymix-obs registry and nymix-lint obs vocabulary drifted: update \
         Registry::obs_vocabulary() to mirror crates/obs/src/registry.rs"
    );
}

#[test]
fn lex_error_reported_not_panicked() {
    let rules = lint("lex_error_fail.rs", "fixtures/src/broken.rs");
    assert_eq!(rules, vec![ids::LEX_ERROR], "got {rules:?}");
}

#[test]
fn workspace_scan_reports_stale_registry_entries() {
    use nymix_lint::engine::run_workspace;
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let findings = run_workspace(&dir, &fixture_registry());
    // None of the fixture registry's paths exist under src/, so every
    // trust module, secret type and unsafe-kernel exemption reports
    // stale.
    let stale = findings
        .iter()
        .filter(|f| f.rule == ids::REGISTRY_STALE)
        .count();
    assert_eq!(
        stale, 3,
        "one trust module + one secret type + one kernel exemption: {findings:?}"
    );
}
