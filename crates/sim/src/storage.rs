//! Modeled local-storage endpoints.
//!
//! The fluid network model prices the access link; this module prices
//! the *disk* — the other physical resource a store-nym pipeline
//! touches. A [`DiskProfile`] maps the I/O a storage backend actually
//! performed (bytes written, fsync barriers, bytes read back) onto
//! simulated time, so a fleet save to a journaled on-disk store pays
//! for its write volume **and** for every durability barrier the
//! crash-consistency protocol issues, instead of a flat per-save
//! constant.
//!
//! Profiles are deliberately simple — sequential-throughput plus
//! per-barrier latency — because the disk-backed object store is
//! log-structured: journal and heap writes are appends, so seek-heavy
//! behaviour never enters the hot path.

use crate::time::SimDuration;

/// Throughput/latency model of one local storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Sustained sequential write throughput, bytes per second.
    pub write_bytes_per_sec: f64,
    /// Sustained sequential read throughput, bytes per second.
    pub read_bytes_per_sec: f64,
    /// Cost of one fsync barrier (flush + FUA round trip).
    pub fsync: SimDuration,
    /// Fixed per-operation submission overhead (syscall + queueing).
    pub op_overhead: SimDuration,
}

impl DiskProfile {
    /// A commodity SATA SSD: ~450/520 MB/s write/read, ~1 ms flush.
    pub const fn ssd() -> Self {
        Self {
            write_bytes_per_sec: 450.0e6,
            read_bytes_per_sec: 520.0e6,
            fsync: SimDuration(1_000),
            op_overhead: SimDuration(20),
        }
    }

    /// A 5400 rpm laptop HDD: ~110/120 MB/s streaming, ~12 ms flush
    /// (cache flush plus on-average half a rotation).
    pub const fn hdd() -> Self {
        Self {
            write_bytes_per_sec: 110.0e6,
            read_bytes_per_sec: 120.0e6,
            fsync: SimDuration(12_000),
            op_overhead: SimDuration(100),
        }
    }

    /// A USB 2.0 flash drive (the paper's §3.5 "USB drive" target):
    /// ~25/30 MB/s, slow ~40 ms flushes on FAT-class firmware.
    pub const fn usb_flash() -> Self {
        Self {
            write_bytes_per_sec: 25.0e6,
            read_bytes_per_sec: 30.0e6,
            fsync: SimDuration(40_000),
            op_overhead: SimDuration(250),
        }
    }

    /// Time to stream `bytes` of writes (no barrier).
    pub fn write_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.write_bytes_per_sec)
    }

    /// Time to stream `bytes` of reads.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.read_bytes_per_sec)
    }

    /// Total modeled time for a mixed I/O episode: `ops` submissions
    /// moving `written`/`read` bytes through `fsyncs` barriers. This is
    /// what the nym manager charges a disk-backed save against the
    /// simulation clock.
    pub fn io_time(&self, written: u64, read: u64, fsyncs: u64, ops: u64) -> SimDuration {
        self.write_time(written)
            + self.read_time(read)
            + SimDuration(self.fsync.0.saturating_mul(fsyncs))
            + SimDuration(self.op_overhead.0.saturating_mul(ops))
    }
}

impl Default for DiskProfile {
    fn default() -> Self {
        Self::ssd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_prices_fsync_barriers() {
        let p = DiskProfile::ssd();
        // 45 MB at 450 MB/s = 100 ms of streaming...
        assert_eq!(p.write_time(45_000_000), SimDuration(100_000));
        // ...and three barriers add 3 ms on top.
        let t = p.io_time(45_000_000, 0, 3, 0);
        assert_eq!(t, SimDuration(103_000));
    }

    #[test]
    fn profiles_are_ordered_sanely() {
        let (ssd, hdd, usb) = (
            DiskProfile::ssd(),
            DiskProfile::hdd(),
            DiskProfile::usb_flash(),
        );
        assert!(ssd.fsync < hdd.fsync && hdd.fsync < usb.fsync);
        assert!(ssd.write_time(1 << 20) < hdd.write_time(1 << 20));
        assert!(hdd.write_time(1 << 20) < usb.write_time(1 << 20));
    }

    #[test]
    fn io_time_saturates() {
        let p = DiskProfile {
            fsync: SimDuration(u64::MAX),
            ..DiskProfile::ssd()
        };
        assert_eq!(p.io_time(0, 0, 2, 0), SimDuration(u64::MAX));
    }
}
