//! The discrete-event loop.
//!
//! An [`Engine`] advances a simulated clock by executing timed callbacks
//! over a user-supplied world type `W`. Callbacks may schedule further
//! callbacks; the run ends when the queue drains (or a horizon is hit).
//!
//! Ties are broken by insertion order, so runs are fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

type Callback<W> = Box<dyn FnOnce(&mut Engine<W>, &mut W)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    callback: Callback<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for Entry<W> {}

impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulation engine over world type `W`.
///
/// # Examples
///
/// ```
/// use nymix_sim::{Engine, SimDuration};
///
/// let mut engine = Engine::new();
/// let mut hits: Vec<u64> = Vec::new();
/// engine.schedule_in(SimDuration::from_secs(2), |eng, world: &mut Vec<u64>| {
///     world.push(eng.now().as_micros());
/// });
/// engine.run(&mut hits);
/// assert_eq!(hits, vec![2_000_000]);
/// ```
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry<W>>,
    executed: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at zero and an empty queue.
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of callbacks executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of callbacks still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `callback` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at<F>(&mut self, at: SimTime, callback: F)
    where
        F: FnOnce(&mut Engine<W>, &mut W) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            callback: Box::new(callback),
        });
    }

    /// Schedules `callback` after `delay`.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, callback: F)
    where
        F: FnOnce(&mut Engine<W>, &mut W) + 'static,
    {
        self.schedule_at(self.now + delay, callback);
    }

    /// Runs until the queue is empty. Returns the final clock value.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while self.step(world) {}
        self.now
    }

    /// Runs until the queue is empty or the clock would pass `horizon`.
    ///
    /// Events scheduled after the horizon stay queued; the clock is left
    /// at the last executed event (or the horizon if nothing ran).
    pub fn run_until(&mut self, world: &mut W, horizon: SimTime) -> SimTime {
        loop {
            match self.queue.peek() {
                Some(entry) if entry.at <= horizon => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < horizon {
            self.now = horizon;
        }
        self.now
    }

    /// Executes the next event, if any. Returns whether one ran.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "event queue went backwards");
        self.now = entry.at;
        self.executed += 1;
        (entry.callback)(self, world);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule_in(SimDuration::from_secs(3), |_, w| w.push(3));
        engine.schedule_in(SimDuration::from_secs(1), |_, w| w.push(1));
        engine.schedule_in(SimDuration::from_secs(2), |_, w| w.push(2));
        let mut log = Vec::new();
        let end = engine.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(end, SimTime(3_000_000));
        assert_eq!(engine.executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        for i in 0..10 {
            engine.schedule_at(SimTime(500), move |_, w: &mut Vec<u32>| w.push(i));
        }
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cascading_events() {
        let mut engine: Engine<u32> = Engine::new();
        fn tick(engine: &mut Engine<u32>, world: &mut u32) {
            *world += 1;
            if *world < 5 {
                engine.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        engine.schedule_in(SimDuration::from_secs(1), tick);
        let mut count = 0;
        let end = engine.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(end, SimTime(5_000_000));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        engine.schedule_in(SimDuration::from_secs(1), |_, w| w.push(1));
        engine.schedule_in(SimDuration::from_secs(10), |_, w| w.push(10));
        let mut log = Vec::new();
        let t = engine.run_until(&mut log, SimTime(5_000_000));
        assert_eq!(log, vec![1]);
        assert_eq!(t, SimTime(5_000_000));
        assert_eq!(engine.pending(), 1);
        engine.run(&mut log);
        assert_eq!(log, vec![1, 10]);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(SimTime(10), |eng, _| {
            eng.schedule_at(SimTime(5), |_, _| {});
        });
        engine.run(&mut ());
    }

    #[test]
    fn zero_delay_event_runs_now() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        engine.schedule_at(SimTime(7), |eng, w: &mut Vec<u64>| {
            eng.schedule_in(SimDuration::ZERO, |eng2, w2: &mut Vec<u64>| {
                w2.push(eng2.now().as_micros());
            });
            w.push(eng.now().as_micros());
        });
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![7, 7]);
    }
}
