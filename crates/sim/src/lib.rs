//! Deterministic discrete-event simulation substrate for Nymix.
//!
//! The paper's evaluation (§5) ran on real hardware: an i7 quad-core with
//! 16 GB RAM talking to a DeterLab-hosted Tor deployment. This crate is
//! the replacement testbed: a deterministic discrete-event engine plus a
//! fluid-flow ("generalized processor sharing") resource model. CPU cores,
//! disk channels, and network links are all [`fluid::FluidResource`]s;
//! boot sequences, downloads, and archive uploads are events. Every
//! experiment is reproducible from a seed.
//!
//! Components:
//!
//! * [`time`] — microsecond-resolution simulated clock types.
//! * [`rng`] — from-scratch xoshiro256** deterministic RNG (stable across
//!   toolchains, unlike external RNG crates).
//! * [`engine`] — the event loop: timed callbacks over a user world type.
//! * [`fluid`] — max-min fair sharing of a capacity among weighted jobs.
//! * [`stats`] — small helpers for series and summary statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fluid;
pub mod rng;
pub mod stats;
pub mod storage;
pub mod time;

pub use engine::Engine;
pub use fluid::{FluidResource, JobId};
pub use rng::Rng;
pub use stats::{Series, Summary};
pub use storage::DiskProfile;
pub use time::{SimDuration, SimTime};
