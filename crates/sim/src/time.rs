//! Simulated clock types.
//!
//! Time is kept in integer microseconds: fine enough for network RTTs and
//! coarse enough that three simulated days (the Figure 6 experiment span)
//! fit comfortably in a `u64`.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in microseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` — time never runs
    /// backwards in the engine, so this indicates a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is in the future"),
        )
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, saturating at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.as_micros(), 2_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5,);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(-5.0).as_micros(), 0);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_backwards() {
        let _ = SimTime(1).since(SimTime(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime(1_500_000)), "1.500s");
        assert_eq!(format!("{}", SimDuration(250_000)), "0.250s");
    }

    #[test]
    fn saturating_behaviour() {
        let d = SimDuration(u64::MAX).saturating_add(SimDuration(5));
        assert_eq!(d.as_micros(), u64::MAX);
        assert_eq!(SimDuration(3) - SimDuration(5), SimDuration::ZERO);
    }
}
