//! Fluid-flow (generalized processor sharing) resource model.
//!
//! A [`FluidResource`] has a fixed capacity (e.g. 4.0 "cores", or
//! 10 Mbit/s of link bandwidth) divided among active jobs by weighted
//! max-min fairness with optional per-job rate caps — the standard
//! water-filling allocation. Between membership changes, rates are
//! constant, so job progress integrates exactly; the owning simulation
//! advances the resource to the current time before mutating it and asks
//! for the next completion time to schedule a wake-up event.
//!
//! This models the paper's quad-core CPU contention (Figure 4: eight
//! one-vCPU nymboxes on four cores) and its shaped 10 Mbit/s DeterLab
//! link (Figure 5: up to eight parallel kernel downloads).

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Identifies a job within a [`FluidResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

#[derive(Debug, Clone)]
struct Job {
    remaining: f64,
    weight: f64,
    rate_cap: f64,
    rate: f64,
    done_work: f64,
}

/// A shared capacity with weighted max-min fair allocation.
///
/// Work units are abstract: bytes for links, core-seconds for CPUs.
/// Capacity is work units per second.
///
/// # Examples
///
/// ```
/// use nymix_sim::{FluidResource, SimTime};
///
/// // A 10-unit/s link with two equal flows of 10 units each.
/// let mut link = FluidResource::new(10.0);
/// let a = link.add_job(SimTime::ZERO, 10.0, 1.0, f64::INFINITY);
/// let b = link.add_job(SimTime::ZERO, 10.0, 1.0, f64::INFINITY);
/// // Each gets 5 units/s, so both finish at t=2s.
/// let t = link.next_completion(SimTime::ZERO).unwrap();
/// assert_eq!(t, SimTime(2_000_000));
/// let done = link.advance(t);
/// assert!(done.contains(&a) && done.contains(&b));
/// ```
#[derive(Debug, Clone)]
pub struct FluidResource {
    capacity: f64,
    jobs: BTreeMap<JobId, Job>,
    next_id: u64,
    last_advanced: SimTime,
    generation: u64,
    utilization_area: f64,
}

impl FluidResource {
    /// Creates a resource with the given capacity (work units/second).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        Self {
            capacity,
            jobs: BTreeMap::new(),
            next_id: 0,
            last_advanced: SimTime::ZERO,
            generation: 0,
            utilization_area: 0.0,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of active jobs.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Monotone counter bumped on every membership change; lets event
    /// handlers discard stale wake-ups.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Integral of allocated rate over time — total work served so far.
    pub fn work_served(&self) -> f64 {
        self.utilization_area
    }

    /// Adds a job needing `work` units, with fairness `weight` and an
    /// optional rate cap (`f64::INFINITY` for none).
    ///
    /// The resource must already have been advanced to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `work` is negative/non-finite or `weight` is not
    /// strictly positive.
    pub fn add_job(&mut self, now: SimTime, work: f64, weight: f64, rate_cap: f64) -> JobId {
        assert!(work.is_finite() && work >= 0.0, "work must be non-negative");
        assert!(weight > 0.0, "weight must be positive");
        self.advance(now);
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                remaining: work,
                weight,
                rate_cap: rate_cap.max(0.0),
                rate: 0.0,
                done_work: 0.0,
            },
        );
        self.generation += 1;
        self.reallocate();
        id
    }

    /// Removes a job before completion (e.g. a nym is destroyed while
    /// downloading). Returns the work it had left, or `None` if unknown.
    pub fn cancel_job(&mut self, now: SimTime, id: JobId) -> Option<f64> {
        self.advance(now);
        let job = self.jobs.remove(&id)?;
        self.generation += 1;
        self.reallocate();
        Some(job.remaining)
    }

    /// Remaining work for `id`, if it is still active.
    pub fn remaining(&self, id: JobId) -> Option<f64> {
        self.jobs.get(&id).map(|j| j.remaining)
    }

    /// Current allocated rate for `id`, if active.
    pub fn rate(&self, id: JobId) -> Option<f64> {
        self.jobs.get(&id).map(|j| j.rate)
    }

    /// Advances the fluid state to `now`, returning jobs that completed
    /// (in completion order; simultaneous completions in id order).
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the last advance.
    pub fn advance(&mut self, now: SimTime) -> Vec<JobId> {
        assert!(
            now >= self.last_advanced,
            "fluid resource advanced backwards"
        );
        let mut completed = Vec::new();
        let mut t = self.last_advanced;
        // Between completions rates are constant; step from completion
        // to completion until we reach `now`.
        while t < now {
            let dt_total = now.since(t).as_secs_f64();
            // Earliest completion under current rates.
            let mut min_dt = dt_total;
            for job in self.jobs.values() {
                if job.rate > 0.0 {
                    let dt = job.remaining / job.rate;
                    if dt < min_dt {
                        min_dt = dt;
                    }
                }
            }
            let step = min_dt.min(dt_total);
            let mut finished_now = Vec::new();
            for (id, job) in self.jobs.iter_mut() {
                let served = job.rate * step;
                job.remaining = (job.remaining - served).max(0.0);
                job.done_work += served;
                self.utilization_area += served;
                // Use a small epsilon relative to work scale to absorb
                // floating-point residue.
                if job.remaining <= 1e-9 {
                    finished_now.push(*id);
                }
            }
            let advanced_us = (step * 1e6).round() as u64;
            t = SimTime(t.0 + advanced_us.max(if step > 0.0 { 1 } else { 0 }));
            if t > now {
                t = now;
            }
            if !finished_now.is_empty() {
                for id in &finished_now {
                    self.jobs.remove(id);
                }
                completed.extend(finished_now);
                self.generation += 1;
                self.reallocate();
            } else if step >= dt_total {
                break;
            }
        }
        self.last_advanced = now;
        completed
    }

    /// Absolute time of the next job completion given current rates, or
    /// `None` if no job is running (or all are rate-starved).
    ///
    /// Rounded *up* to the next whole microsecond so the returned time
    /// is strictly after `now` — callers advance-then-poll in a loop,
    /// and a same-instant event would spin forever on sub-microsecond
    /// residue.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let mut best: Option<f64> = None;
        for job in self.jobs.values() {
            if job.rate > 0.0 {
                let dt = job.remaining / job.rate;
                best = Some(best.map_or(dt, |b: f64| b.min(dt)));
            }
        }
        best.map(|dt| now + SimDuration(((dt * 1e6).ceil()).max(1.0) as u64))
    }

    /// Water-filling: weighted max-min allocation with rate caps.
    fn reallocate(&mut self) {
        let mut unallocated = self.capacity;
        let mut pending: Vec<JobId> = self.jobs.keys().copied().collect();
        for job in self.jobs.values_mut() {
            job.rate = 0.0;
        }
        // Iteratively satisfy capped jobs, then split the rest by weight.
        loop {
            if pending.is_empty() || unallocated <= 1e-12 {
                break;
            }
            let total_weight: f64 = pending.iter().map(|id| self.jobs[id].weight).sum();
            let mut any_capped = false;
            let mut next_pending = Vec::with_capacity(pending.len());
            for id in &pending {
                let job = &self.jobs[id];
                let fair = unallocated * job.weight / total_weight;
                if job.rate_cap <= fair {
                    any_capped = true;
                } else {
                    next_pending.push(*id);
                }
            }
            if !any_capped {
                for id in &pending {
                    let job = self.jobs.get_mut(id).expect("job exists");
                    job.rate = unallocated * job.weight / total_weight;
                }
                break;
            }
            // Fix capped jobs at their caps and redistribute.
            for id in &pending {
                let job = self.jobs.get_mut(id).expect("job exists");
                let fair = unallocated * job.weight / total_weight;
                if job.rate_cap <= fair {
                    job.rate = job.rate_cap;
                }
            }
            let capped_sum: f64 = pending
                .iter()
                .filter(|id| !next_pending.contains(id))
                .map(|id| self.jobs[id].rate)
                .sum();
            unallocated -= capped_sum;
            pending = next_pending;
        }
    }
}

/// Convenience: total time to serve `work` units alone on a resource of
/// `capacity`, with an optional rate cap.
pub fn solo_service_time(work: f64, capacity: f64, rate_cap: f64) -> SimDuration {
    let rate = capacity.min(rate_cap);
    SimDuration::from_secs_f64(work / rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime((secs * 1e6).round() as u64)
    }

    #[test]
    fn single_job_runs_at_capacity() {
        let mut r = FluidResource::new(4.0);
        let id = r.add_job(SimTime::ZERO, 8.0, 1.0, f64::INFINITY);
        assert_eq!(r.rate(id), Some(4.0));
        assert_eq!(r.next_completion(SimTime::ZERO), Some(t(2.0)));
        let done = r.advance(t(2.0));
        assert_eq!(done, vec![id]);
        assert_eq!(r.active_jobs(), 0);
    }

    #[test]
    fn equal_jobs_share_equally() {
        let mut r = FluidResource::new(10.0);
        let a = r.add_job(SimTime::ZERO, 10.0, 1.0, f64::INFINITY);
        let b = r.add_job(SimTime::ZERO, 20.0, 1.0, f64::INFINITY);
        assert_eq!(r.rate(a), Some(5.0));
        assert_eq!(r.rate(b), Some(5.0));
        // a finishes at 2s; b then gets full capacity: 10 left at t=2,
        // finishing at t=3.
        let done = r.advance(t(2.0));
        assert_eq!(done, vec![a]);
        assert!((r.rate(b).unwrap() - 10.0).abs() < 1e-9);
        let done = r.advance(t(3.0));
        assert_eq!(done, vec![b]);
    }

    #[test]
    fn weights_bias_allocation() {
        let mut r = FluidResource::new(9.0);
        let heavy = r.add_job(SimTime::ZERO, 100.0, 2.0, f64::INFINITY);
        let light = r.add_job(SimTime::ZERO, 100.0, 1.0, f64::INFINITY);
        assert!((r.rate(heavy).unwrap() - 6.0).abs() < 1e-9);
        assert!((r.rate(light).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rate_caps_respected_and_redistributed() {
        let mut r = FluidResource::new(10.0);
        let capped = r.add_job(SimTime::ZERO, 100.0, 1.0, 2.0);
        let free = r.add_job(SimTime::ZERO, 100.0, 1.0, f64::INFINITY);
        assert!((r.rate(capped).unwrap() - 2.0).abs() < 1e-9);
        assert!((r.rate(free).unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn single_vcpu_on_quad_core_is_capped_at_one_core() {
        // The Figure 4 setup: each nymbox has one vCPU (cap 1.0 core) on
        // a 4-core host.
        let mut r = FluidResource::new(4.0);
        let ids: Vec<JobId> = (0..2)
            .map(|_| r.add_job(SimTime::ZERO, 10.0, 1.0, 1.0))
            .collect();
        for id in &ids {
            assert!((r.rate(*id).unwrap() - 1.0).abs() < 1e-9);
        }
        // With 8 vCPUs the 4 cores are oversubscribed: 0.5 core each.
        let mut r = FluidResource::new(4.0);
        let ids: Vec<JobId> = (0..8)
            .map(|_| r.add_job(SimTime::ZERO, 10.0, 1.0, 1.0))
            .collect();
        for id in &ids {
            assert!((r.rate(*id).unwrap() - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn midstream_arrival_slows_existing_job() {
        let mut r = FluidResource::new(10.0);
        let a = r.add_job(SimTime::ZERO, 20.0, 1.0, f64::INFINITY);
        // After 1s, a has 10 left. b arrives; both get 5/s.
        let b = r.add_job(t(1.0), 10.0, 1.0, f64::INFINITY);
        assert!((r.remaining(a).unwrap() - 10.0).abs() < 1e-9);
        // Both complete at t=3.
        let done = r.advance(t(3.0));
        assert_eq!(done.len(), 2);
        assert!(done.contains(&a) && done.contains(&b));
    }

    #[test]
    fn cancel_returns_remaining_and_speeds_up_others() {
        let mut r = FluidResource::new(10.0);
        let a = r.add_job(SimTime::ZERO, 100.0, 1.0, f64::INFINITY);
        let b = r.add_job(SimTime::ZERO, 100.0, 1.0, f64::INFINITY);
        let left = r.cancel_job(t(1.0), a).unwrap();
        assert!((left - 95.0).abs() < 1e-9);
        assert!((r.rate(b).unwrap() - 10.0).abs() < 1e-9);
        assert!(r.cancel_job(t(1.0), a).is_none());
    }

    #[test]
    fn work_conservation() {
        // Total served work equals capacity * time while backlogged.
        let mut r = FluidResource::new(7.0);
        for i in 0..5 {
            r.add_job(
                SimTime::ZERO,
                100.0 + i as f64,
                1.0 + i as f64 * 0.3,
                f64::INFINITY,
            );
        }
        r.advance(t(10.0));
        assert!((r.work_served() - 70.0).abs() < 1e-6);
    }

    #[test]
    fn zero_work_job_completes_immediately_on_advance() {
        let mut r = FluidResource::new(1.0);
        let id = r.add_job(SimTime::ZERO, 0.0, 1.0, f64::INFINITY);
        let done = r.advance(t(0.001));
        assert_eq!(done, vec![id]);
    }

    #[test]
    fn generation_bumps_on_membership_changes() {
        let mut r = FluidResource::new(1.0);
        let g0 = r.generation();
        let id = r.add_job(SimTime::ZERO, 5.0, 1.0, f64::INFINITY);
        assert!(r.generation() > g0);
        let g1 = r.generation();
        r.cancel_job(t(0.5), id);
        assert!(r.generation() > g1);
    }

    #[test]
    fn next_completion_none_when_idle() {
        let r = FluidResource::new(1.0);
        assert_eq!(r.next_completion(SimTime::ZERO), None);
    }

    #[test]
    fn solo_service_time_helper() {
        assert_eq!(
            solo_service_time(10.0, 4.0, f64::INFINITY),
            SimDuration::from_secs_f64(2.5)
        );
        assert_eq!(
            solo_service_time(10.0, 4.0, 1.0),
            SimDuration::from_secs(10)
        );
    }

    #[test]
    fn many_completions_in_one_advance() {
        let mut r = FluidResource::new(1.0);
        let mut ids = Vec::new();
        for i in 1..=5 {
            ids.push(r.add_job(SimTime::ZERO, i as f64, 1.0, f64::INFINITY));
        }
        // Staggered completions, all before t=100.
        let done = r.advance(t(100.0));
        assert_eq!(done.len(), 5);
        assert_eq!(r.active_jobs(), 0);
        // First to finish is the smallest job.
        assert_eq!(done[0], ids[0]);
    }
}
