//! Small statistics helpers for experiment reporting.

/// An ordered series of `(x, y)` observations, e.g. "(number of nyms,
/// used memory MB)" for Figure 3.
#[derive(Debug, Clone, Default)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Series label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// All observations in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// Renders the series as `name: (x, y) (x, y) ...` table rows.
    pub fn render(&self) -> String {
        let mut out = format!("{}:", self.name);
        for (x, y) in &self.points {
            out.push_str(&format!(" ({x:.3}, {y:.3})"));
        }
        out
    }
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `samples`.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = nymix_sim::Summary::of(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean, 2.0);
    /// assert_eq!(s.min, 1.0);
    /// ```
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            count,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basics() {
        let mut s = Series::new("used-memory");
        s.push(1.0, 600.0);
        s.push(2.0, 1200.0);
        assert_eq!(s.name(), "used-memory");
        assert_eq!(s.points().len(), 2);
        assert_eq!(s.y_at(2.0), Some(1200.0));
        assert_eq!(s.y_at(3.0), None);
        assert!(s.render().contains("(1.000, 600.000)"));
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }
}
