//! Deterministic random number generation.
//!
//! A from-scratch xoshiro256** generator seeded via SplitMix64. The
//! implementation is self-contained so simulation results are bit-stable
//! regardless of external crate versions — important because
//! `EXPERIMENTS.md` records exact measured numbers.

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256** pseudo-random generator.
///
/// # Examples
///
/// ```
/// use nymix_sim::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator labelled by `label`.
    ///
    /// Experiments fork one RNG per nym so that adding a nym does not
    /// perturb the random streams of existing nyms.
    pub fn fork(&mut self, label: u64) -> Rng {
        let a = self.next_u64();
        Rng::seed_from(a ^ label.wrapping_mul(0x9e3779b97f4a7c15))
    }

    /// Snapshot of the generator's internal state (for suspending
    /// components that must resume with an identical stream).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`Rng::state`] snapshot.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Debiased multiply-shift (Lemire).
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Approximately normal deviate (Irwin–Hall sum of 12 uniforms),
    /// mean `mu`, standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.next_f64()).sum();
        mu + (sum - 6.0) * sigma
    }

    /// Exponential deviate with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Chooses a uniformly random element of `items`.
    ///
    /// Returns `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.next_below(items.len() as u64) as usize;
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_independent_of_later_draws() {
        // Forking nym k's RNG must not change nym (k-1)'s stream.
        let mut root1 = Rng::seed_from(99);
        let mut child_a1 = root1.fork(0);
        let seq1: Vec<u64> = (0..10).map(|_| child_a1.next_u64()).collect();

        let mut root2 = Rng::seed_from(99);
        let mut child_a2 = root2.fork(0);
        let _child_b = root2.fork(1);
        let seq2: Vec<u64> = (0..10).map(|_| child_a2.next_u64()).collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Rng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
        assert_eq!(r.range_u64(5, 5), 5);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = Rng::seed_from(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::seed_from(6);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Rng::seed_from(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(10);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
