//! Property-based tests for the fluid-resource and engine invariants.

use nymix_sim::{Engine, FluidResource, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Work conservation: while jobs remain, the resource serves at
    /// exactly its capacity (all jobs uncapped, so the backlog absorbs
    /// everything).
    #[test]
    fn fluid_work_conservation(jobs in proptest::collection::vec(1.0f64..100.0, 1..10),
                               capacity in 1.0f64..50.0,
                               horizon in 0.1f64..5.0) {
        let mut r = FluidResource::new(capacity);
        let total: f64 = jobs.iter().sum();
        for w in &jobs {
            r.add_job(SimTime::ZERO, *w, 1.0, f64::INFINITY);
        }
        let t = SimTime((horizon * 1e6) as u64);
        r.advance(t);
        let served_bound = capacity * horizon;
        let served = r.work_served();
        // Integration advances in whole microseconds, so each
        // completion segment can over/under-serve by ~capacity*1us;
        // tolerate a few segments' worth.
        let eps = capacity * 1e-5 + 1e-9;
        prop_assert!(served <= served_bound + eps, "served {served} bound {served_bound}");
        prop_assert!(served <= total + eps);
        // If the backlog outlasted the horizon, service equals capacity*t.
        if total > served_bound + eps {
            prop_assert!((served - served_bound).abs() < eps + 1e-3,
                "served {served} expected {served_bound}");
        }
    }

    /// Every job eventually completes, in weakly increasing finish
    /// order of (work/weight).
    #[test]
    fn fluid_all_jobs_complete(jobs in proptest::collection::vec(0.1f64..50.0, 1..8),
                               capacity in 0.5f64..20.0) {
        let mut r = FluidResource::new(capacity);
        let ids: Vec<_> = jobs.iter()
            .map(|w| r.add_job(SimTime::ZERO, *w, 1.0, f64::INFINITY))
            .collect();
        let mut done = Vec::new();
        let mut now = SimTime::ZERO;
        let mut guard = 0;
        while let Some(next) = r.next_completion(now) {
            done.extend(r.advance(next));
            now = next;
            guard += 1;
            prop_assert!(guard < 100, "livelock");
        }
        prop_assert_eq!(done.len(), ids.len());
        prop_assert_eq!(r.active_jobs(), 0);
        // Equal weights: completion order == ascending work order.
        let mut works: Vec<(f64, usize)> = jobs.iter().copied().zip(0..).collect();
        works.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        for (k, (_, j)) in works.iter().enumerate() {
            prop_assert_eq!(done[k], ids[*j]);
        }
    }

    /// Rates never exceed caps, and allocation is work-conserving up
    /// to the cap structure.
    #[test]
    fn fluid_caps_respected(weights in proptest::collection::vec(0.1f64..5.0, 1..8),
                            caps in proptest::collection::vec(0.1f64..3.0, 1..8),
                            capacity in 1.0f64..10.0) {
        let n = weights.len().min(caps.len());
        let mut r = FluidResource::new(capacity);
        let ids: Vec<_> = (0..n)
            .map(|i| r.add_job(SimTime::ZERO, 1e9, weights[i], caps[i]))
            .collect();
        let mut sum = 0.0;
        for (i, id) in ids.iter().enumerate() {
            let rate = r.rate(*id).expect("active");
            prop_assert!(rate <= caps[i] + 1e-9, "cap violated");
            sum += rate;
        }
        prop_assert!(sum <= capacity + 1e-9);
        // Work conserving: either capacity fully used or everyone capped.
        let all_capped = ids.iter().enumerate()
            .all(|(i, id)| (r.rate(*id).expect("active") - caps[i]).abs() < 1e-9);
        prop_assert!(all_capped || (capacity - sum).abs() < 1e-9,
            "idle capacity with uncapped demand: sum {sum} capacity {capacity}");
    }

    /// Engine executes every event exactly once, in time order.
    #[test]
    fn engine_runs_everything_in_order(delays in proptest::collection::vec(0u64..10_000, 1..50)) {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        for d in &delays {
            let at = *d;
            engine.schedule_in(SimDuration::from_micros(at), move |eng, log: &mut Vec<u64>| {
                log.push(eng.now().as_micros());
            });
        }
        let mut log = Vec::new();
        engine.run(&mut log);
        prop_assert_eq!(log.len(), delays.len());
        let mut sorted = delays.clone();
        sorted.sort_unstable();
        prop_assert_eq!(log, sorted);
    }
}
