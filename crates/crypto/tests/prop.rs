//! Property-based tests for the crypto primitives.

use nymix_crypto::{
    open, open_in_place_detached, poly1305_tag, seal, seal_in_place_detached, ChaCha20, HmacKey,
    MerkleTree, Poly1305, Sha256,
};
use proptest::prelude::*;

/// Literal RFC 2104: pad the key, run two full hashes from scratch. The
/// midstate-cached `HmacKey` must agree bit-for-bit on everything.
fn hmac_reference(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&nymix_crypto::sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let mut outer = Sha256::new();
    inner.update(&key_block.map(|b| b ^ 0x36));
    inner.update(msg);
    outer.update(&key_block.map(|b| b ^ 0x5c));
    outer.update(&inner.finalize());
    outer.finalize()
}

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                         split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), nymix_crypto::sha256(&data));
    }

    #[test]
    fn chacha_roundtrip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                        mut data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let orig = data.clone();
        ChaCha20::new(&key, &nonce, 1).apply(&mut data);
        ChaCha20::new(&key, &nonce, 1).apply(&mut data);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn chacha_chunking_irrelevant(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                  data in proptest::collection::vec(any::<u8>(), 1..512),
                                  cuts in proptest::collection::vec(1usize..64, 0..8)) {
        let mut whole = data.clone();
        ChaCha20::new(&key, &nonce, 0).apply(&mut whole);
        let mut chunked = data.clone();
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let mut off = 0usize;
        for cut in cuts {
            if off >= chunked.len() { break; }
            let end = (off + cut).min(chunked.len());
            c.apply(&mut chunked[off..end]);
            off = end;
        }
        c.apply(&mut chunked[off..]);
        prop_assert_eq!(whole, chunked);
    }

    #[test]
    fn aead_roundtrip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                      aad in proptest::collection::vec(any::<u8>(), 0..64),
                      msg in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let boxed = seal(&key, &nonce, &aad, &msg);
        prop_assert_eq!(boxed.len(), msg.len() + 16);
        prop_assert_eq!(open(&key, &nonce, &aad, &boxed).unwrap(), msg);
    }

    #[test]
    fn aead_any_bitflip_detected(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                 msg in proptest::collection::vec(any::<u8>(), 1..256),
                                 flip_byte in any::<usize>(), flip_bit in 0u8..8) {
        let mut boxed = seal(&key, &nonce, b"aad", &msg);
        let idx = flip_byte % boxed.len();
        boxed[idx] ^= 1 << flip_bit;
        prop_assert!(open(&key, &nonce, b"aad", &boxed).is_err());
    }

    #[test]
    fn merkle_proofs_verify(blocks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 1..40)) {
        let tree = MerkleTree::build(blocks.iter().map(|b| b.as_slice()));
        let n = blocks.len();
        for (i, b) in blocks.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(MerkleTree::verify(&tree.root(), i, b, &proof, n));
        }
    }

    #[test]
    fn merkle_cross_block_proofs_fail(blocks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..32), 2..20), i in any::<usize>(), j in any::<usize>()) {
        let n = blocks.len();
        let (i, j) = (i % n, j % n);
        prop_assume!(i != j && blocks[i] != blocks[j]);
        let tree = MerkleTree::build(blocks.iter().map(|b| b.as_slice()));
        let proof = tree.prove(i).unwrap();
        prop_assert!(!MerkleTree::verify(&tree.root(), i, &blocks[j], &proof, n));
    }

    #[test]
    fn poly1305_streaming_equals_oneshot(key in any::<[u8; 32]>(),
                                         data in proptest::collection::vec(any::<u8>(), 0..1024),
                                         cuts in proptest::collection::vec(1usize..48, 0..12)) {
        // Feeding the message through `update` in arbitrary chunk splits
        // must equal the one-shot tag, regardless of where the 16-byte
        // block boundaries fall relative to the cuts.
        let mut mac = Poly1305::new(&key);
        let mut off = 0usize;
        for cut in cuts {
            if off >= data.len() { break; }
            let end = (off + cut).min(data.len());
            mac.update(&data[off..end]);
            off = end;
        }
        mac.update(&data[off..]);
        prop_assert_eq!(mac.finalize(), poly1305_tag(&key, &data));
    }

    #[test]
    fn aead_in_place_matches_boxed(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                   aad in proptest::collection::vec(any::<u8>(), 0..64),
                                   msg in proptest::collection::vec(any::<u8>(), 0..1024)) {
        // seal_in_place_detached must produce exactly the bytes of seal,
        // and open_in_place_detached must round-trip and agree with open.
        let boxed = seal(&key, &nonce, &aad, &msg);
        let mut buf = msg.clone();
        let tag = seal_in_place_detached(&key, &nonce, &aad, &mut buf);
        prop_assert_eq!(&boxed[..msg.len()], &buf[..]);
        prop_assert_eq!(&boxed[msg.len()..], &tag[..]);
        open_in_place_detached(&key, &nonce, &aad, &mut buf, &tag).unwrap();
        prop_assert_eq!(&buf, &msg);
        prop_assert_eq!(open(&key, &nonce, &aad, &boxed).unwrap(), msg);
    }

    #[test]
    fn chacha_xor_into_accumulates_pads(seeds in proptest::collection::vec(any::<[u8; 32]>(), 1..5),
                                        nonce in any::<[u8; 12]>(), len in 1usize..600) {
        // XOR-accumulating streams via xor_into (the DC-net pad path) must
        // equal materializing each stream and XORing byte-wise.
        let mut acc = vec![0u8; len];
        for seed in &seeds {
            ChaCha20::new(seed, &nonce, 0).xor_into(&mut acc);
        }
        let mut want = vec![0u8; len];
        for seed in &seeds {
            let mut stream = vec![0u8; len];
            ChaCha20::new(seed, &nonce, 0).apply(&mut stream);
            for (w, s) in want.iter_mut().zip(&stream) {
                *w ^= s;
            }
        }
        prop_assert_eq!(acc, want);
    }

    #[test]
    fn hmac_midstate_equals_naive(key in proptest::collection::vec(any::<u8>(), 0..150),
                                  msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let want = hmac_reference(&key, &msg);
        prop_assert_eq!(nymix_crypto::hmac_sha256(&key, &msg), want);
        let hk = HmacKey::new(&key);
        prop_assert_eq!(hk.mac(&msg), want);
        // Streaming over arbitrary splits agrees too.
        let mut h = hk.hasher();
        let split = msg.len() / 2;
        h.update(&msg[..split]);
        h.update(&msg[split..]);
        prop_assert_eq!(hk.finish(h), want);
    }

    #[test]
    fn hmac_mac32_equals_naive(key in proptest::collection::vec(any::<u8>(), 0..150),
                               msg in any::<[u8; 32]>()) {
        // The PBKDF2 iteration shape: the two-compression fast path must
        // match the from-scratch construction.
        prop_assert_eq!(HmacKey::new(&key).mac32(&msg), hmac_reference(&key, &msg));
    }

    #[test]
    fn sha256_x4_equals_scalar(prefix in proptest::collection::vec(any::<u8>(), 0..80),
                               len in 0usize..300,
                               seed in any::<u64>()) {
        let msgs: Vec<Vec<u8>> = (0..4).map(|l| {
            (0..len).map(|i| (seed as usize + l * 31 + i * 7) as u8).collect()
        }).collect();
        let got = nymix_crypto::sha256_x4(&prefix, [&msgs[0], &msgs[1], &msgs[2], &msgs[3]]);
        for l in 0..4 {
            let mut h = Sha256::new();
            h.update(&prefix);
            h.update(&msgs[l]);
            prop_assert_eq!(got[l], h.finalize());
        }
    }

    #[test]
    fn merkle_incremental_equals_scratch(
        initial in proptest::collection::vec(any::<u8>(), 0..40),
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..40)
    ) {
        // Model-based: drive a MerkleAccumulator through random dirty
        // sets *and* leaf-count changes (push/truncate), checking after
        // every op that its root is bit-identical to a from-scratch
        // fold over the model leaf vector.
        use nymix_crypto::{leaf_hash_parts, merkle_root_from_leaves, MerkleAccumulator};
        let mut acc = MerkleAccumulator::new();
        let mut model: Vec<[u8; 32]> = Vec::new();
        for b in &initial {
            let leaf = leaf_hash_parts(&[&[*b]]);
            acc.push_leaf(leaf);
            model.push(leaf);
        }
        prop_assert_eq!(acc.root(), merkle_root_from_leaves(&mut model.clone()));
        for (step, (op, arg)) in ops.iter().enumerate() {
            match op % 4 {
                0 => {
                    let leaf = leaf_hash_parts(&[&arg.to_le_bytes(), &[step as u8]]);
                    acc.push_leaf(leaf);
                    model.push(leaf);
                }
                1 | 2 if !model.is_empty() => {
                    // Dirty an arbitrary leaf; alternate between warm
                    // interiors (root queried first, so the O(log n)
                    // path-update runs) and cold ones.
                    if op % 2 == 1 {
                        acc.root();
                    }
                    let idx = *arg as usize % model.len();
                    let leaf = leaf_hash_parts(&[&arg.to_be_bytes(), &(step as u32).to_le_bytes()]);
                    acc.update_leaf(idx, leaf);
                    model[idx] = leaf;
                }
                3 => {
                    let len = *arg as usize % (model.len() + 1);
                    acc.truncate(len);
                    model.truncate(len);
                }
                _ => {}
            }
            prop_assert_eq!(
                acc.root(),
                merkle_root_from_leaves(&mut model.clone()),
                "step {}",
                step
            );
            prop_assert_eq!(acc.leaf_count(), model.len());
        }
    }

    #[test]
    fn sha256_backends_bit_identical(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                     split in 0usize..2048) {
        // Every dispatched kernel must agree with the strictly-serial
        // scalar floor over arbitrary lengths and split points, both
        // single-stream and through the four-lane batch entry point.
        use nymix_crypto::{set_sha_backend, sha256_backend, sha256_x4, ShaBackend};
        let prev = sha256_backend();
        let split = split.min(data.len());
        set_sha_backend(ShaBackend::Scalar);
        let want = nymix_crypto::sha256(&data);
        let want_x4 = sha256_x4(b"p:", [&data, &data, &data, &data]);
        for requested in [ShaBackend::X4, ShaBackend::Avx2, ShaBackend::ShaNi] {
            let installed = set_sha_backend(requested);
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), want, "backend {}", installed.name());
            prop_assert_eq!(nymix_crypto::sha256(&data), want, "backend {}", installed.name());
            prop_assert_eq!(
                sha256_x4(b"p:", [&data, &data, &data, &data]),
                want_x4,
                "backend {}",
                installed.name()
            );
        }
        set_sha_backend(prev);
    }

    #[test]
    fn hkdf_deterministic(salt in proptest::collection::vec(any::<u8>(), 0..32),
                          ikm in proptest::collection::vec(any::<u8>(), 1..64),
                          info in proptest::collection::vec(any::<u8>(), 0..32),
                          len in 1usize..200) {
        let a = nymix_crypto::hkdf::derive(&salt, &ikm, &info, len);
        let b = nymix_crypto::hkdf::derive(&salt, &ikm, &info, len);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), len);
    }
}
