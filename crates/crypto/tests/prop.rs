//! Property-based tests for the crypto primitives.

use nymix_crypto::{open, seal, ChaCha20, MerkleTree, Sha256};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                         split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), nymix_crypto::sha256(&data));
    }

    #[test]
    fn chacha_roundtrip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                        mut data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let orig = data.clone();
        ChaCha20::new(&key, &nonce, 1).apply(&mut data);
        ChaCha20::new(&key, &nonce, 1).apply(&mut data);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn chacha_chunking_irrelevant(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                  data in proptest::collection::vec(any::<u8>(), 1..512),
                                  cuts in proptest::collection::vec(1usize..64, 0..8)) {
        let mut whole = data.clone();
        ChaCha20::new(&key, &nonce, 0).apply(&mut whole);
        let mut chunked = data.clone();
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let mut off = 0usize;
        for cut in cuts {
            if off >= chunked.len() { break; }
            let end = (off + cut).min(chunked.len());
            c.apply(&mut chunked[off..end]);
            off = end;
        }
        c.apply(&mut chunked[off..]);
        prop_assert_eq!(whole, chunked);
    }

    #[test]
    fn aead_roundtrip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                      aad in proptest::collection::vec(any::<u8>(), 0..64),
                      msg in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let boxed = seal(&key, &nonce, &aad, &msg);
        prop_assert_eq!(boxed.len(), msg.len() + 16);
        prop_assert_eq!(open(&key, &nonce, &aad, &boxed).unwrap(), msg);
    }

    #[test]
    fn aead_any_bitflip_detected(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                 msg in proptest::collection::vec(any::<u8>(), 1..256),
                                 flip_byte in any::<usize>(), flip_bit in 0u8..8) {
        let mut boxed = seal(&key, &nonce, b"aad", &msg);
        let idx = flip_byte % boxed.len();
        boxed[idx] ^= 1 << flip_bit;
        prop_assert!(open(&key, &nonce, b"aad", &boxed).is_err());
    }

    #[test]
    fn merkle_proofs_verify(blocks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 1..40)) {
        let tree = MerkleTree::build(blocks.iter().map(|b| b.as_slice()));
        let n = blocks.len();
        for (i, b) in blocks.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(MerkleTree::verify(&tree.root(), i, b, &proof, n));
        }
    }

    #[test]
    fn merkle_cross_block_proofs_fail(blocks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..32), 2..20), i in any::<usize>(), j in any::<usize>()) {
        let n = blocks.len();
        let (i, j) = (i % n, j % n);
        prop_assume!(i != j && blocks[i] != blocks[j]);
        let tree = MerkleTree::build(blocks.iter().map(|b| b.as_slice()));
        let proof = tree.prove(i).unwrap();
        prop_assert!(!MerkleTree::verify(&tree.root(), i, &blocks[j], &proof, n));
    }

    #[test]
    fn hkdf_deterministic(salt in proptest::collection::vec(any::<u8>(), 0..32),
                          ikm in proptest::collection::vec(any::<u8>(), 1..64),
                          info in proptest::collection::vec(any::<u8>(), 0..32),
                          len in 1usize..200) {
        let a = nymix_crypto::hkdf::derive(&salt, &ikm, &info, len);
        let b = nymix_crypto::hkdf::derive(&salt, &ikm, &info, len);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), len);
    }
}
