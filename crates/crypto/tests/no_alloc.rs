//! Pins the allocation-freedom of the crypto hot path: once buffers exist,
//! `ChaCha20::apply`/`xor_into`, the incremental `Poly1305`, and the
//! in-place AEAD must never touch the heap.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// lint:allow(forbid-unsafe): GlobalAlloc is an unsafe trait; this counting shim only delegates to System
unsafe impl GlobalAlloc for CountingAlloc {
    // lint:allow(forbid-unsafe): signature dictated by the GlobalAlloc contract
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) } // lint:allow(forbid-unsafe): direct pass-through to the System allocator
    }
    // lint:allow(forbid-unsafe): signature dictated by the GlobalAlloc contract
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) } // lint:allow(forbid-unsafe): direct pass-through to the System allocator
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_in(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn chacha20_apply_is_allocation_free() {
    let key = [7u8; 32];
    let nonce = [3u8; 12];
    let mut buf = vec![0u8; 64 * 1024 + 17];
    let n = allocations_in(|| {
        let mut c = nymix_crypto::ChaCha20::new(&key, &nonce, 1);
        c.apply(&mut buf);
        c.xor_into(&mut buf);
        c.seek(5);
        c.xor_into(&mut buf);
    });
    assert_eq!(n, 0, "ChaCha20 apply/xor_into/seek must not allocate");
}

#[test]
fn poly1305_streaming_is_allocation_free() {
    let key = [9u8; 32];
    let msg = vec![0xa5u8; 4096 + 7];
    let n = allocations_in(|| {
        let mut mac = nymix_crypto::Poly1305::new(&key);
        mac.update(&msg[..1000]);
        mac.pad_to_block();
        mac.update(&msg[1000..]);
        std::hint::black_box(mac.finalize());
    });
    assert_eq!(n, 0, "incremental Poly1305 must not allocate");
}

#[test]
fn in_place_aead_is_allocation_free() {
    let key = [1u8; 32];
    let nonce = [2u8; 12];
    let mut buf = vec![0x42u8; 8192];
    let n = allocations_in(|| {
        let tag = nymix_crypto::seal_in_place_detached(&key, &nonce, b"aad", &mut buf);
        nymix_crypto::open_in_place_detached(&key, &nonce, b"aad", &mut buf, &tag)
            .expect("roundtrip");
    });
    assert_eq!(n, 0, "in-place AEAD seal/open must not allocate");
}
