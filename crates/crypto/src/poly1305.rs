//! RFC 8439 Poly1305 one-time authenticator.
//!
//! Implemented with 26-bit limbs over the prime `2^130 - 5`, the classic
//! portable representation. Only used through [`crate::aead`], which derives
//! a fresh one-time key per message as RFC 8439 requires.

/// Bytes in a Poly1305 one-time key.
pub const KEY_LEN: usize = 32;

/// Bytes in a Poly1305 tag.
pub const TAG_LEN: usize = 16;

/// Computes the Poly1305 tag of `msg` under the one-time key `key`.
///
/// # Examples
///
/// ```
/// let tag = nymix_crypto::poly1305_tag(&[1u8; 32], b"msg");
/// assert_eq!(tag.len(), 16);
/// ```
pub fn poly1305_tag(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    // Clamp r per RFC 8439 §2.5.
    let t0 = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
    let t1 = u32::from_le_bytes([key[4], key[5], key[6], key[7]]);
    let t2 = u32::from_le_bytes([key[8], key[9], key[10], key[11]]);
    let t3 = u32::from_le_bytes([key[12], key[13], key[14], key[15]]);

    let r0 = t0 & 0x03ffffff;
    let r1 = ((t0 >> 26) | (t1 << 6)) & 0x03ffff03;
    let r2 = ((t1 >> 20) | (t2 << 12)) & 0x03ffc0ff;
    let r3 = ((t2 >> 14) | (t3 << 18)) & 0x03f03fff;
    let r4 = (t3 >> 8) & 0x000fffff;

    let s1 = r1 * 5;
    let s2 = r2 * 5;
    let s3 = r3 * 5;
    let s4 = r4 * 5;

    let mut h0: u32 = 0;
    let mut h1: u32 = 0;
    let mut h2: u32 = 0;
    let mut h3: u32 = 0;
    let mut h4: u32 = 0;

    let mut chunks = msg.chunks(16);
    for chunk in &mut chunks {
        let mut block = [0u8; 17];
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()] = 1; // The "high bit" pad byte.

        let b0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let b1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let b2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let b3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);
        let b4 = block[16] as u32;

        h0 = h0.wrapping_add(b0 & 0x03ffffff);
        h1 = h1.wrapping_add(((b0 >> 26) | (b1 << 6)) & 0x03ffffff);
        h2 = h2.wrapping_add(((b1 >> 20) | (b2 << 12)) & 0x03ffffff);
        h3 = h3.wrapping_add(((b2 >> 14) | (b3 << 18)) & 0x03ffffff);
        h4 = h4.wrapping_add((b3 >> 8) | (b4 << 24));

        // h *= r (mod 2^130 - 5), schoolbook with the 5x folding trick.
        let d0 = (h0 as u64) * (r0 as u64)
            + (h1 as u64) * (s4 as u64)
            + (h2 as u64) * (s3 as u64)
            + (h3 as u64) * (s2 as u64)
            + (h4 as u64) * (s1 as u64);
        let mut d1 = (h0 as u64) * (r1 as u64)
            + (h1 as u64) * (r0 as u64)
            + (h2 as u64) * (s4 as u64)
            + (h3 as u64) * (s3 as u64)
            + (h4 as u64) * (s2 as u64);
        let mut d2 = (h0 as u64) * (r2 as u64)
            + (h1 as u64) * (r1 as u64)
            + (h2 as u64) * (r0 as u64)
            + (h3 as u64) * (s4 as u64)
            + (h4 as u64) * (s3 as u64);
        let mut d3 = (h0 as u64) * (r3 as u64)
            + (h1 as u64) * (r2 as u64)
            + (h2 as u64) * (r1 as u64)
            + (h3 as u64) * (r0 as u64)
            + (h4 as u64) * (s4 as u64);
        let mut d4 = (h0 as u64) * (r4 as u64)
            + (h1 as u64) * (r3 as u64)
            + (h2 as u64) * (r2 as u64)
            + (h3 as u64) * (r1 as u64)
            + (h4 as u64) * (r0 as u64);

        // Partial carry propagation.
        let mut c: u64;
        c = d0 >> 26;
        h0 = (d0 & 0x03ffffff) as u32;
        d1 += c;
        c = d1 >> 26;
        h1 = (d1 & 0x03ffffff) as u32;
        d2 += c;
        c = d2 >> 26;
        h2 = (d2 & 0x03ffffff) as u32;
        d3 += c;
        c = d3 >> 26;
        h3 = (d3 & 0x03ffffff) as u32;
        d4 += c;
        c = d4 >> 26;
        h4 = (d4 & 0x03ffffff) as u32;
        h0 = h0.wrapping_add((c as u32) * 5);
        let c2 = h0 >> 26;
        h0 &= 0x03ffffff;
        h1 = h1.wrapping_add(c2);
    }

    // Full carry propagation.
    let mut c = h1 >> 26;
    h1 &= 0x03ffffff;
    h2 = h2.wrapping_add(c);
    c = h2 >> 26;
    h2 &= 0x03ffffff;
    h3 = h3.wrapping_add(c);
    c = h3 >> 26;
    h3 &= 0x03ffffff;
    h4 = h4.wrapping_add(c);
    c = h4 >> 26;
    h4 &= 0x03ffffff;
    h0 = h0.wrapping_add(c * 5);
    c = h0 >> 26;
    h0 &= 0x03ffffff;
    h1 = h1.wrapping_add(c);

    // Compute h + -p = h - (2^130 - 5) and select it if non-negative.
    let mut g0 = h0.wrapping_add(5);
    c = g0 >> 26;
    g0 &= 0x03ffffff;
    let mut g1 = h1.wrapping_add(c);
    c = g1 >> 26;
    g1 &= 0x03ffffff;
    let mut g2 = h2.wrapping_add(c);
    c = g2 >> 26;
    g2 &= 0x03ffffff;
    let mut g3 = h3.wrapping_add(c);
    c = g3 >> 26;
    g3 &= 0x03ffffff;
    let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

    // Constant-time select: mask is all-ones when g >= p.
    let mask = (g4 >> 31).wrapping_sub(1);
    h0 = (h0 & !mask) | (g0 & mask);
    h1 = (h1 & !mask) | (g1 & mask);
    h2 = (h2 & !mask) | (g2 & mask);
    h3 = (h3 & !mask) | (g3 & mask);
    h4 = (h4 & !mask) | (g4 & mask);

    // Serialize back to 128 bits.
    let f0 = h0 | (h1 << 26);
    let f1 = (h1 >> 6) | (h2 << 20);
    let f2 = (h2 >> 12) | (h3 << 14);
    let f3 = (h3 >> 18) | (h4 << 8);

    // tag = (h + s) mod 2^128.
    let s0 = u32::from_le_bytes([key[16], key[17], key[18], key[19]]) as u64;
    let s1k = u32::from_le_bytes([key[20], key[21], key[22], key[23]]) as u64;
    let s2k = u32::from_le_bytes([key[24], key[25], key[26], key[27]]) as u64;
    let s3k = u32::from_le_bytes([key[28], key[29], key[30], key[31]]) as u64;

    let mut acc = (f0 as u64) + s0;
    let o0 = acc as u32;
    acc >>= 32;
    acc += (f1 as u64) + s1k;
    let o1 = acc as u32;
    acc >>= 32;
    acc += (f2 as u64) + s2k;
    let o2 = acc as u32;
    acc >>= 32;
    acc += (f3 as u64) + s3k;
    let o3 = acc as u32;

    let mut tag = [0u8; TAG_LEN];
    tag[0..4].copy_from_slice(&o0.to_le_bytes());
    tag[4..8].copy_from_slice(&o1.to_le_bytes());
    tag[8..12].copy_from_slice(&o2.to_le_bytes());
    tag[12..16].copy_from_slice(&o3.to_le_bytes());
    tag
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let tag = poly1305_tag(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn zero_key_zero_message() {
        let tag = poly1305_tag(&[0u8; 32], b"");
        assert_eq!(tag, [0u8; 16]);
    }

    #[test]
    fn tag_depends_on_message() {
        let key = [0x11u8; 32];
        assert_ne!(poly1305_tag(&key, b"aaaa"), poly1305_tag(&key, b"aaab"));
    }

    #[test]
    fn tag_depends_on_key() {
        assert_ne!(
            poly1305_tag(&[1u8; 32], b"same message"),
            poly1305_tag(&[2u8; 32], b"same message")
        );
    }

    #[test]
    fn block_boundary_lengths() {
        // Exercise the partial-final-block path on either side of 16 bytes.
        let key = [0x5au8; 32];
        let msg = [0xc3u8; 64];
        let mut tags = std::collections::HashSet::new();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 48, 63, 64] {
            assert!(tags.insert(poly1305_tag(&key, &msg[..len])), "len {len}");
        }
    }
}
