//! RFC 8439 Poly1305 one-time authenticator.
//!
//! Implemented with 44/44/42-bit limbs over the prime `2^130 - 5` using
//! full 64x64→128 products (the portable-fast "donna-64" shape). Only used
//! through [`crate::aead`], which derives a fresh one-time key per message
//! as RFC 8439 requires.
//!
//! The authenticator is incremental: [`Poly1305::update`] consumes input
//! slices of any length (buffering at most 15 bytes between calls), so the
//! AEAD construction MACs `aad || pad || ciphertext || pad || lengths`
//! directly from the caller's slices without assembling a scratch copy.

/// Bytes in a Poly1305 one-time key.
pub const KEY_LEN: usize = 32;

/// Bytes in a Poly1305 tag.
pub const TAG_LEN: usize = 16;

/// Bytes per Poly1305 message block.
const BLOCK_LEN: usize = 16;

/// Multiplies two 44/44/42-limb values mod `2^130 - 5` (partial
/// reduction); used once per MAC to precompute `r^2`.
fn mul_mod(a: &[u64; 3], b: &[u64; 3]) -> [u64; 3] {
    let sb1 = b[1] * 20;
    let sb2 = b[2] * 20;
    let d0 = (a[0] as u128) * (b[0] as u128)
        + (a[1] as u128) * (sb2 as u128)
        + (a[2] as u128) * (sb1 as u128);
    let mut d1 = (a[0] as u128) * (b[1] as u128)
        + (a[1] as u128) * (b[0] as u128)
        + (a[2] as u128) * (sb2 as u128);
    let mut d2 = (a[0] as u128) * (b[2] as u128)
        + (a[1] as u128) * (b[1] as u128)
        + (a[2] as u128) * (b[0] as u128);
    let mut c = (d0 >> 44) as u64;
    let mut h0 = (d0 as u64) & 0xfffffffffff;
    d1 += c as u128;
    c = (d1 >> 44) as u64;
    let h1 = (d1 as u64) & 0xfffffffffff;
    d2 += c as u128;
    c = (d2 >> 42) as u64;
    let h2 = (d2 as u64) & 0x3ffffffffff;
    h0 += c * 5;
    [h0, h1, h2]
}

/// Incremental Poly1305 hasher.
///
/// # Examples
///
/// ```
/// use nymix_crypto::{poly1305_tag, Poly1305};
///
/// let key = [7u8; 32];
/// let mut mac = Poly1305::new(&key);
/// mac.update(b"split ");
/// mac.update(b"message");
/// assert_eq!(mac.finalize(), poly1305_tag(&key, b"split message"));
/// ```
pub struct Poly1305 {
    /// Clamped multiplier `r` in 44/44/42-bit limbs.
    r: [u64; 3],
    /// Precomputed `20 * r[1..3]` for the modular folding trick
    /// (`2^130 ≡ 5 (mod p)` and the limbs sit 2 bits high).
    s: [u64; 2],
    /// `r^2 mod p`, for the two-blocks-per-iteration Horner stride.
    r2: [u64; 3],
    /// `20 * r2[1..3]`.
    s2: [u64; 2],
    /// Accumulator `h` in 44/44/42-bit limbs.
    h: [u64; 3],
    /// Final added secret `s` (key bytes 16..32) as little-endian words.
    pad: [u64; 2],
    /// Partial input block.
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Drop for Poly1305 {
    fn drop(&mut self) {
        // r/r2 (and their folded s/s2 forms) are the one-time key; h and
        // buf hold message-dependent state under it. pad is key bytes
        // 16..32 verbatim.
        crate::zeroize::wipe_limbs(&mut self.r);
        crate::zeroize::wipe_limbs(&mut self.s);
        crate::zeroize::wipe_limbs(&mut self.r2);
        crate::zeroize::wipe_limbs(&mut self.s2);
        crate::zeroize::wipe_limbs(&mut self.h);
        crate::zeroize::wipe_limbs(&mut self.pad);
        crate::zeroize::wipe_bytes(&mut self.buf);
    }
}

impl Poly1305 {
    /// Starts a MAC under the one-time `key`.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // Clamp r per RFC 8439 §2.5, folded into the 44-bit limb masks.
        let t0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
        let t1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));

        let r = [
            t0 & 0xffc0fffffff,
            ((t0 >> 44) | (t1 << 20)) & 0xfffffc0ffff,
            (t1 >> 24) & 0x00ffffffc0f,
        ];
        let r2 = mul_mod(&r, &r);
        Self {
            r,
            s: [r[1] * 20, r[2] * 20],
            r2,
            s2: [r2[1] * 20, r2[2] * 20],
            h: [0; 3],
            pad: [
                u64::from_le_bytes(key[16..24].try_into().expect("8 bytes")),
                u64::from_le_bytes(key[24..32].try_into().expect("8 bytes")),
            ],
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorbs a run of full 16-byte blocks; `hibit` is `1 << 40` for
    /// normal blocks and `0` for the already-0x01-terminated final partial
    /// block. The accumulator stays in registers across the run; pairs of
    /// blocks are folded per iteration via `r^2` — `(h + m0)·r² + m1·r` —
    /// so the two 3x3 multiplies are independent and overlap in the
    /// pipeline instead of serializing on the accumulator.
    #[inline(always)]
    fn process_blocks(&mut self, data: &[u8], hibit: u64) {
        debug_assert!(data.len().is_multiple_of(BLOCK_LEN));
        let [mut h0, mut h1, mut h2] = self.h;
        let [r0, r1, r2] = self.r;
        let [s1, s2] = self.s;
        let [q0, q1, q2] = self.r2;
        let [p1, p2] = self.s2;

        let mut chunks = data.chunks_exact(2 * BLOCK_LEN);
        for pair in &mut chunks {
            let t0 = u64::from_le_bytes(pair[0..8].try_into().expect("8 bytes"));
            let t1 = u64::from_le_bytes(pair[8..16].try_into().expect("8 bytes"));
            let u0 = u64::from_le_bytes(pair[16..24].try_into().expect("8 bytes"));
            let u1 = u64::from_le_bytes(pair[24..32].try_into().expect("8 bytes"));

            // a = (h + m0) * r^2.
            let a0 = h0 + (t0 & 0xfffffffffff);
            let a1 = h1 + (((t0 >> 44) | (t1 << 20)) & 0xfffffffffff);
            let a2 = h2 + (((t1 >> 24) & 0x3ffffffffff) | hibit);
            // b = m1 * r (independent of h — overlaps with a's multiply).
            let b0 = u0 & 0xfffffffffff;
            let b1 = ((u0 >> 44) | (u1 << 20)) & 0xfffffffffff;
            let b2 = ((u1 >> 24) & 0x3ffffffffff) | hibit;

            let d0 = (a0 as u128) * (q0 as u128)
                + (a1 as u128) * (p2 as u128)
                + (a2 as u128) * (p1 as u128)
                + (b0 as u128) * (r0 as u128)
                + (b1 as u128) * (s2 as u128)
                + (b2 as u128) * (s1 as u128);
            let mut d1 = (a0 as u128) * (q1 as u128)
                + (a1 as u128) * (q0 as u128)
                + (a2 as u128) * (p2 as u128)
                + (b0 as u128) * (r1 as u128)
                + (b1 as u128) * (r0 as u128)
                + (b2 as u128) * (s2 as u128);
            let mut d2 = (a0 as u128) * (q2 as u128)
                + (a1 as u128) * (q1 as u128)
                + (a2 as u128) * (q0 as u128)
                + (b0 as u128) * (r2 as u128)
                + (b1 as u128) * (r1 as u128)
                + (b2 as u128) * (r0 as u128);

            let mut c = (d0 >> 44) as u64;
            h0 = (d0 as u64) & 0xfffffffffff;
            d1 += c as u128;
            c = (d1 >> 44) as u64;
            h1 = (d1 as u64) & 0xfffffffffff;
            d2 += c as u128;
            c = (d2 >> 42) as u64;
            h2 = (d2 as u64) & 0x3ffffffffff;
            h0 += c * 5;
            c = h0 >> 44;
            h0 &= 0xfffffffffff;
            h1 += c;
        }

        for block in chunks.remainder().chunks_exact(BLOCK_LEN) {
            let t0 = u64::from_le_bytes(block[0..8].try_into().expect("8 bytes"));
            let t1 = u64::from_le_bytes(block[8..16].try_into().expect("8 bytes"));

            h0 += t0 & 0xfffffffffff;
            h1 += ((t0 >> 44) | (t1 << 20)) & 0xfffffffffff;
            h2 += ((t1 >> 24) & 0x3ffffffffff) | hibit;

            // h *= r (mod 2^130 - 5): 3x3 schoolbook over u128 with the
            // high limbs folded back via s = 20r.
            let d0 = (h0 as u128) * (r0 as u128)
                + (h1 as u128) * (s2 as u128)
                + (h2 as u128) * (s1 as u128);
            let mut d1 = (h0 as u128) * (r1 as u128)
                + (h1 as u128) * (r0 as u128)
                + (h2 as u128) * (s2 as u128);
            let mut d2 = (h0 as u128) * (r2 as u128)
                + (h1 as u128) * (r1 as u128)
                + (h2 as u128) * (r0 as u128);

            // Partial carry propagation.
            let mut c = (d0 >> 44) as u64;
            h0 = (d0 as u64) & 0xfffffffffff;
            d1 += c as u128;
            c = (d1 >> 44) as u64;
            h1 = (d1 as u64) & 0xfffffffffff;
            d2 += c as u128;
            c = (d2 >> 42) as u64;
            h2 = (d2 as u64) & 0x3ffffffffff;
            h0 += c * 5;
            c = h0 >> 44;
            h0 &= 0xfffffffffff;
            h1 += c;
        }
        self.h = [h0, h1, h2];
    }

    /// Absorbs one 16-byte block (see [`Poly1305::process_blocks`]).
    #[inline(always)]
    fn process_block(&mut self, block: &[u8; BLOCK_LEN], hibit: u64) {
        self.process_blocks(block, hibit);
    }

    /// Feeds `data` into the MAC; call any number of times with any split.
    pub fn update(&mut self, mut data: &[u8]) {
        // Top up a buffered partial block first.
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < BLOCK_LEN {
                return; // data exhausted without completing the block
            }
            let block = self.buf;
            self.process_block(&block, 1 << 40);
            self.buf_len = 0;
        }
        // Full blocks straight from the input slice — no copying, and the
        // accumulator stays in registers across the whole run.
        let full = data.len() - data.len() % BLOCK_LEN;
        self.process_blocks(&data[..full], 1 << 40);
        let rem = &data[full..];
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Zero-pads the stream to a 16-byte boundary (the AEAD layout pads the
    /// aad and ciphertext sections independently).
    pub fn pad_to_block(&mut self) {
        if self.buf_len > 0 {
            const ZEROS: [u8; BLOCK_LEN] = [0u8; BLOCK_LEN];
            let need = BLOCK_LEN - self.buf_len;
            self.update(&ZEROS[..need]);
        }
    }

    /// Completes the MAC and returns the tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zeros, high bit clear.
            let mut block = [0u8; BLOCK_LEN];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, 0);
        }

        let [mut h0, mut h1, mut h2] = self.h;

        // Full carry propagation.
        let mut c = h1 >> 44;
        h1 &= 0xfffffffffff;
        h2 += c;
        c = h2 >> 42;
        h2 &= 0x3ffffffffff;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= 0xfffffffffff;
        h1 += c;
        c = h1 >> 44;
        h1 &= 0xfffffffffff;
        h2 += c;
        c = h2 >> 42;
        h2 &= 0x3ffffffffff;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= 0xfffffffffff;
        h1 += c;

        // Compute h + -p = h - (2^130 - 5) and select it if non-negative.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 44;
        g0 &= 0xfffffffffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 44;
        g1 &= 0xfffffffffff;
        let g2 = h2.wrapping_add(c).wrapping_sub(1 << 42);

        // Constant-time select: mask is all-ones when g >= p.
        let mask = (g2 >> 63).wrapping_sub(1);
        h0 = (h0 & !mask) | (g0 & mask);
        h1 = (h1 & !mask) | (g1 & mask);
        h2 = (h2 & !mask) | (g2 & mask);

        // Serialize to 128 bits and add s mod 2^128.
        let f0 = h0 | (h1 << 44);
        let f1 = (h1 >> 20) | (h2 << 24);
        let (o0, carry) = f0.overflowing_add(self.pad[0]);
        let o1 = f1.wrapping_add(self.pad[1]).wrapping_add(carry as u64);

        let mut tag = [0u8; TAG_LEN];
        tag[0..8].copy_from_slice(&o0.to_le_bytes());
        tag[8..16].copy_from_slice(&o1.to_le_bytes());
        tag
    }
}

/// Computes the Poly1305 tag of `msg` under the one-time key `key`.
///
/// One-shot wrapper over the incremental [`Poly1305`] hasher.
///
/// # Examples
///
/// ```
/// let tag = nymix_crypto::poly1305_tag(&[1u8; 32], b"msg");
/// assert_eq!(tag.len(), 16);
/// ```
pub fn poly1305_tag(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(key);
    mac.update(msg);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.5.2 one-time key.
    fn rfc_key() -> [u8; 32] {
        [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ]
    }

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let tag = poly1305_tag(&rfc_key(), b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn rfc8439_vector_incremental() {
        // Same §2.5.2 vector through the streaming API, byte at a time.
        let mut mac = Poly1305::new(&rfc_key());
        for b in b"Cryptographic Forum Research Group" {
            mac.update(core::slice::from_ref(b));
        }
        assert_eq!(hex(&mac.finalize()), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn zero_key_zero_message() {
        let tag = poly1305_tag(&[0u8; 32], b"");
        assert_eq!(tag, [0u8; 16]);
    }

    #[test]
    fn tag_depends_on_message() {
        let key = [0x11u8; 32];
        assert_ne!(poly1305_tag(&key, b"aaaa"), poly1305_tag(&key, b"aaab"));
    }

    #[test]
    fn tag_depends_on_key() {
        assert_ne!(
            poly1305_tag(&[1u8; 32], b"same message"),
            poly1305_tag(&[2u8; 32], b"same message")
        );
    }

    #[test]
    fn block_boundary_lengths() {
        // Exercise the partial-final-block path on either side of 16 bytes.
        let key = [0x5au8; 32];
        let msg = [0xc3u8; 64];
        let mut tags = std::collections::HashSet::new();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 48, 63, 64] {
            assert!(tags.insert(poly1305_tag(&key, &msg[..len])), "len {len}");
        }
    }

    #[test]
    fn streaming_split_invariance() {
        let key = [0x77u8; 32];
        let msg: Vec<u8> = (0..100u8).collect();
        let want = poly1305_tag(&key, &msg);
        for split in [0usize, 1, 15, 16, 17, 50, 99, 100] {
            let mut mac = Poly1305::new(&key);
            mac.update(&msg[..split]);
            mac.update(&msg[split..]);
            assert_eq!(mac.finalize(), want, "split {split}");
        }
    }

    #[test]
    fn pad_to_block_equals_explicit_zeros() {
        let key = [0x3cu8; 32];
        let msg = [0xaau8; 21];
        let mut padded = Poly1305::new(&key);
        padded.update(&msg);
        padded.pad_to_block();
        let mut explicit = Poly1305::new(&key);
        explicit.update(&msg);
        explicit.update(&[0u8; 11]);
        assert_eq!(padded.finalize(), explicit.finalize());
        // Padding an already-aligned stream is a no-op.
        let mut aligned = Poly1305::new(&key);
        aligned.update(&[1u8; 32]);
        aligned.pad_to_block();
        let mut plain = Poly1305::new(&key);
        plain.update(&[1u8; 32]);
        assert_eq!(aligned.finalize(), plain.finalize());
    }
}
