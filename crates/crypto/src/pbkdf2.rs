//! RFC 8018 PBKDF2-HMAC-SHA256.
//!
//! Nymix derives the archive master secret from the user's nym password
//! and the nym's storage label (§3.5 workflow: "a password to encrypt it
//! with"). PBKDF2 slows down offline guessing if a cloud provider or a
//! confiscating adversary obtains the encrypted archive.
//!
//! The iteration loop runs on [`HmacKey::mac32`]: the password's
//! ipad/opad midstates are compressed once up front, so every
//! `U_{n+1} = HMAC(P, U_n)` step costs two SHA-256 compressions instead
//! of the four a from-scratch HMAC pays. Sealing latency is linear in
//! this loop, so the midstate cache directly halves save/restore time.

use crate::hmac::HmacKey;
use crate::sha256::DIGEST_LEN;

/// Derives key material from `password` and a salt supplied as
/// concatenated `salt_parts`, writing exactly `out.len()` bytes into
/// `out` without allocating.
///
/// Callers that assemble the salt from several pieces (the sealed-archive
/// path binds `label ‖ 0 ‖ random`) pass the pieces directly instead of
/// materializing the concatenation.
///
/// # Panics
///
/// Panics if `iterations` is zero.
pub fn pbkdf2_hmac_sha256_into(
    password: &[u8],
    salt_parts: &[&[u8]],
    iterations: u32,
    out: &mut [u8],
) {
    assert!(iterations > 0, "PBKDF2 requires at least one iteration");
    nymix_obs::counter!("crypto.kdf.calls", 1u64);
    let key = HmacKey::new(password);
    let mut block_index = 1u32;
    for chunk in out.chunks_mut(DIGEST_LEN) {
        // U_1 = HMAC(P, salt ‖ INT(i)), streamed over the salt parts.
        let mut h = key.hasher();
        for part in salt_parts {
            h.update(part);
        }
        h.update(&block_index.to_be_bytes());
        let mut u = key.finish(h);
        let mut acc = u;
        for _ in 1..iterations {
            u = key.mac32(&u);
            for (a, b) in acc.iter_mut().zip(u.iter()) {
                *a ^= b;
            }
        }
        chunk.copy_from_slice(&acc[..chunk.len()]);
        crate::zeroize::wipe_bytes(&mut u);
        crate::zeroize::wipe_bytes(&mut acc);
        block_index = block_index.wrapping_add(1);
    }
}

/// Derives `len` bytes from `password` and `salt` with `iterations`
/// rounds of PBKDF2-HMAC-SHA256.
///
/// # Panics
///
/// Panics if `iterations` is zero.
///
/// # Examples
///
/// ```
/// let key = nymix_crypto::pbkdf2_hmac_sha256(b"hunter2", b"nym:alice", 1000, 32);
/// assert_eq!(key.len(), 32);
/// ```
pub fn pbkdf2_hmac_sha256(password: &[u8], salt: &[u8], iterations: u32, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    pbkdf2_hmac_sha256_into(password, &[salt], iterations, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn known_vector_one_iteration() {
        // Widely published PBKDF2-HMAC-SHA256 vector.
        let dk = pbkdf2_hmac_sha256(b"password", b"salt", 1, 32);
        assert_eq!(
            hex(&dk),
            "120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b"
        );
    }

    #[test]
    fn known_vector_two_iterations() {
        let dk = pbkdf2_hmac_sha256(b"password", b"salt", 2, 32);
        assert_eq!(
            hex(&dk),
            "ae4d0c95af6b46d32d0adff928f06dd02a303f8ef3c251dfd6e2d85a95474c43"
        );
    }

    #[test]
    fn known_vector_4096_iterations() {
        let dk = pbkdf2_hmac_sha256(b"password", b"salt", 4096, 32);
        assert_eq!(
            hex(&dk),
            "c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a"
        );
    }

    #[test]
    fn longer_output_spans_blocks() {
        let dk = pbkdf2_hmac_sha256(
            b"passwordPASSWORDpassword",
            b"saltSALTsaltSALTsaltSALTsaltSALTsalt",
            4096,
            40,
        );
        assert_eq!(
            hex(&dk),
            "348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1\
             c635518c7dac47e9"
        );
    }

    #[test]
    fn rfc7914_vectors() {
        // RFC 7914 §11 lists PBKDF2-HMAC-SHA256 vectors with 64-byte
        // output (two derived blocks).
        let dk = pbkdf2_hmac_sha256(b"passwd", b"salt", 1, 64);
        assert_eq!(
            hex(&dk),
            "55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc\
             49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783"
        );
        let dk = pbkdf2_hmac_sha256(b"Password", b"NaCl", 80_000, 64);
        assert_eq!(
            hex(&dk),
            "4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56\
             a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d"
        );
    }

    #[test]
    fn multipart_salt_equals_concatenation() {
        let mut split = [0u8; 40];
        pbkdf2_hmac_sha256_into(b"pw", &[b"nym:alice", &[0], b"random"], 100, &mut split);
        let joined = pbkdf2_hmac_sha256(b"pw", b"nym:alice\x00random", 100, 40);
        assert_eq!(&split[..], &joined[..]);
    }

    #[test]
    fn different_salts_differ() {
        let a = pbkdf2_hmac_sha256(b"pw", b"nym:a", 10, 32);
        let b = pbkdf2_hmac_sha256(b"pw", b"nym:b", 10, 32);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = pbkdf2_hmac_sha256(b"pw", b"s", 0, 32);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected_into() {
        pbkdf2_hmac_sha256_into(b"pw", &[b"s"], 0, &mut [0u8; 32]);
    }
}
