//! RFC 8018 PBKDF2-HMAC-SHA256.
//!
//! Nymix derives the archive master secret from the user's nym password
//! and the nym's storage label (§3.5 workflow: "a password to encrypt it
//! with"). PBKDF2 slows down offline guessing if a cloud provider or a
//! confiscating adversary obtains the encrypted archive.

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// Derives `len` bytes from `password` and `salt` with `iterations`
/// rounds of PBKDF2-HMAC-SHA256.
///
/// # Panics
///
/// Panics if `iterations` is zero.
///
/// # Examples
///
/// ```
/// let key = nymix_crypto::pbkdf2_hmac_sha256(b"hunter2", b"nym:alice", 1000, 32);
/// assert_eq!(key.len(), 32);
/// ```
pub fn pbkdf2_hmac_sha256(password: &[u8], salt: &[u8], iterations: u32, len: usize) -> Vec<u8> {
    assert!(iterations > 0, "PBKDF2 requires at least one iteration");
    let mut out = Vec::with_capacity(len);
    let mut block_index = 1u32;
    while out.len() < len {
        let mut msg = salt.to_vec();
        msg.extend_from_slice(&block_index.to_be_bytes());
        let mut u = hmac_sha256(password, &msg);
        let mut acc = u;
        for _ in 1..iterations {
            u = hmac_sha256(password, &u);
            for i in 0..DIGEST_LEN {
                acc[i] ^= u[i];
            }
        }
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&acc[..take]);
        block_index = block_index.wrapping_add(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn known_vector_one_iteration() {
        // Widely published PBKDF2-HMAC-SHA256 vector.
        let dk = pbkdf2_hmac_sha256(b"password", b"salt", 1, 32);
        assert_eq!(
            hex(&dk),
            "120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b"
        );
    }

    #[test]
    fn known_vector_two_iterations() {
        let dk = pbkdf2_hmac_sha256(b"password", b"salt", 2, 32);
        assert_eq!(
            hex(&dk),
            "ae4d0c95af6b46d32d0adff928f06dd02a303f8ef3c251dfd6e2d85a95474c43"
        );
    }

    #[test]
    fn known_vector_4096_iterations() {
        let dk = pbkdf2_hmac_sha256(b"password", b"salt", 4096, 32);
        assert_eq!(
            hex(&dk),
            "c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a"
        );
    }

    #[test]
    fn longer_output_spans_blocks() {
        let dk = pbkdf2_hmac_sha256(
            b"passwordPASSWORDpassword",
            b"saltSALTsaltSALTsaltSALTsaltSALTsalt",
            4096,
            40,
        );
        assert_eq!(
            hex(&dk),
            "348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1\
             c635518c7dac47e9"
        );
    }

    #[test]
    fn different_salts_differ() {
        let a = pbkdf2_hmac_sha256(b"pw", b"nym:a", 10, 32);
        let b = pbkdf2_hmac_sha256(b"pw", b"nym:b", 10, 32);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = pbkdf2_hmac_sha256(b"pw", b"s", 0, 32);
    }
}
