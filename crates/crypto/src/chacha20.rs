//! RFC 8439 ChaCha20 stream cipher.
//!
//! ChaCha20 serves two roles in Nymix: it is the bulk cipher of the
//! [`crate::aead`] construction that seals quasi-persistent nym state, and
//! it is the pseudo-random generator that expands pairwise DC-net seeds
//! into transmission pads for the Dissent anonymizer.

/// Bytes in a ChaCha20 key.
pub const KEY_LEN: usize = 32;

/// Bytes in a ChaCha20 nonce.
pub const NONCE_LEN: usize = 12;

/// Bytes produced per block invocation.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes([
            key[i * 4],
            key[i * 4 + 1],
            key[i * 4 + 2],
            key[i * 4 + 3],
        ]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Streaming ChaCha20 keystream generator.
///
/// # Examples
///
/// ```
/// use nymix_crypto::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let mut msg = *b"nymbox state";
/// ChaCha20::new(&key, &nonce, 1).apply(&mut msg);
/// assert_ne!(&msg, b"nymbox state");
/// ChaCha20::new(&key, &nonce, 1).apply(&mut msg);
/// assert_eq!(&msg, b"nymbox state");
/// ```
pub struct ChaCha20 {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    counter: u32,
    buf: [u8; BLOCK_LEN],
    buf_pos: usize,
}

impl ChaCha20 {
    /// Creates a cipher positioned at `initial_counter`.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], initial_counter: u32) -> Self {
        Self {
            key: *key,
            nonce: *nonce,
            counter: initial_counter,
            buf: [0u8; BLOCK_LEN],
            buf_pos: BLOCK_LEN,
        }
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data {
            if self.buf_pos == BLOCK_LEN {
                self.buf = block(&self.key, self.counter, &self.nonce);
                self.counter = self.counter.wrapping_add(1);
                self.buf_pos = 0;
            }
            *byte ^= self.buf[self.buf_pos];
            self.buf_pos += 1;
        }
    }

    /// Produces `len` bytes of raw keystream.
    ///
    /// Used as a deterministic PRG (e.g. DC-net pads): the keystream of a
    /// shared secret key is the pad both DC-net peers compute.
    pub fn keystream(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.apply(&mut out);
        out
    }
}

/// Encrypts (or decrypts) `data` in place with the RFC 8439 convention of
/// starting the keystream at block counter 1 (block 0 is reserved for the
/// Poly1305 one-time key in the AEAD construction).
pub fn chacha20_xor(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    ChaCha20::new(key, nonce, 1).apply(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn test_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2.
        let key = test_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let out = block(&key, 1, &nonce);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encrypt_vector() {
        // RFC 8439 §2.4.2 ("sunscreen" plaintext).
        let key = test_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        chacha20_xor(&key, &nonce, &mut data);
        assert_eq!(
            hex(&data),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn streaming_matches_block_boundaries() {
        let key = test_key();
        let nonce = [3u8; 12];
        let mut a = vec![0u8; 200];
        ChaCha20::new(&key, &nonce, 0).apply(&mut a);
        // Apply in uneven chunks; result must be identical.
        let mut b = vec![0u8; 200];
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let mut off = 0;
        for chunk in [1usize, 63, 64, 65, 7] {
            c.apply(&mut b[off..off + chunk]);
            off += chunk;
        }
        assert_eq!(a, b);
    }

    #[test]
    fn keystream_is_deterministic() {
        let key = [9u8; 32];
        let nonce = [4u8; 12];
        let k1 = ChaCha20::new(&key, &nonce, 0).keystream(100);
        let k2 = ChaCha20::new(&key, &nonce, 0).keystream(100);
        assert_eq!(k1, k2);
        let k3 = ChaCha20::new(&key, &nonce, 1).keystream(100);
        assert_ne!(k1, k3);
    }

    #[test]
    fn roundtrip_inverts() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        let msg: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut work = msg.clone();
        chacha20_xor(&key, &nonce, &mut work);
        assert_ne!(work, msg);
        chacha20_xor(&key, &nonce, &mut work);
        assert_eq!(work, msg);
    }
}
