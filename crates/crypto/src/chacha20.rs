//! RFC 8439 ChaCha20 stream cipher.
//!
//! ChaCha20 serves two roles in Nymix: it is the bulk cipher of the
//! [`crate::aead`] construction that seals quasi-persistent nym state, and
//! it is the pseudo-random generator that expands pairwise DC-net seeds
//! into transmission pads for the Dissent anonymizer.
//!
//! Both roles are hot paths (every onion cell and every DC-net slot byte
//! crosses them), so the cipher works block-at-a-time rather than
//! byte-at-a-time: the key/nonce are parsed once into a flat `[u32; 16]`
//! initial state, keystream is produced by a 4-block batched kernel where
//! only the counter word changes between blocks, and [`ChaCha20::xor_into`]
//! XORs whole 32-bit words of keystream into the caller's buffer without
//! ever materializing a keystream allocation.

/// Bytes in a ChaCha20 key.
pub const KEY_LEN: usize = 32;

/// Bytes in a ChaCha20 nonce.
pub const NONCE_LEN: usize = 12;

/// Bytes produced per block invocation.
pub const BLOCK_LEN: usize = 64;

/// Blocks per batched keystream kernel invocation. Four 32-bit lanes per
/// state word: wide enough to fill a 128-bit vector (and let AVX2 fuse
/// pairs of operations), narrow enough that the 2x16 lane-vectors of
/// working + initial state still fit the register file without spills.
const BATCH_BLOCKS: usize = 4;

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Builds the flat initial state from key, counter and nonce.
#[inline]
fn init_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
    }
    state
}

/// The 20-round core: runs the double round ten times over `working` and
/// adds the initial `state` back in, yielding one block of keystream as
/// sixteen little-endian words.
#[inline(always)]
fn block_words(state: &[u32; 16]) -> [u32; 16] {
    let mut working = *state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (w, s) in working.iter_mut().zip(state) {
        *w = w.wrapping_add(*s);
    }
    working
}

/// XORs keystream words into a word-aligned run of bytes.
///
/// `dst.len()` must be `4 * ks.len()` at most; partial final words are the
/// caller's problem (handled via the block buffer).
#[inline(always)]
fn xor_words(dst: &mut [u8], ks: &[u32]) {
    for (chunk, &w) in dst.chunks_exact_mut(4).zip(ks) {
        let v = u32::from_le_bytes(chunk.try_into().expect("4 bytes")) ^ w;
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// One word position across [`BATCH_BLOCKS`] blocks computed in parallel
/// (structure-of-arrays lane vector; each elementwise loop compiles to one
/// SIMD op).
type Lanes = [u32; BATCH_BLOCKS];

#[inline(always)]
fn vadd(a: &mut Lanes, b: &Lanes) {
    for i in 0..BATCH_BLOCKS {
        a[i] = a[i].wrapping_add(b[i]);
    }
}

#[inline(always)]
fn vxor_rotl<const R: u32>(d: &mut Lanes, a: &Lanes) {
    for i in 0..BATCH_BLOCKS {
        d[i] = (d[i] ^ a[i]).rotate_left(R);
    }
}

/// The quarter round across all lanes at once.
#[inline(always)]
fn vquarter_round(s: &mut [Lanes; 16], a: usize, b: usize, c: usize, d: usize) {
    let t = s[b];
    vadd(&mut s[a], &t);
    let t = s[a];
    vxor_rotl::<16>(&mut s[d], &t);
    let t = s[d];
    vadd(&mut s[c], &t);
    let t = s[c];
    vxor_rotl::<12>(&mut s[b], &t);
    let t = s[b];
    vadd(&mut s[a], &t);
    let t = s[a];
    vxor_rotl::<8>(&mut s[d], &t);
    let t = s[d];
    vadd(&mut s[c], &t);
    let t = s[c];
    vxor_rotl::<7>(&mut s[b], &t);
}

/// Batched kernel: computes [`BATCH_BLOCKS`] consecutive keystream blocks
/// (counters `state[12] .. state[12] + BATCH_BLOCKS`) and XORs them into
/// `dst` (`BATCH_BLOCKS * BLOCK_LEN` bytes).
///
/// The working state is kept flat across blocks — only the counter lane
/// differs — and every round operation runs elementwise across the four
/// block lanes, which the compiler lowers to 4-wide vector instructions.
#[inline]
fn xor_batch(state: &[u32; 16], dst: &mut [u8]) {
    debug_assert_eq!(dst.len(), BATCH_BLOCKS * BLOCK_LEN);
    let mut v: [Lanes; 16] = std::array::from_fn(|i| [state[i]; BATCH_BLOCKS]);
    for (j, lane) in v[12].iter_mut().enumerate() {
        *lane = state[12].wrapping_add(j as u32);
    }
    let init = v;
    for _ in 0..10 {
        vquarter_round(&mut v, 0, 4, 8, 12);
        vquarter_round(&mut v, 1, 5, 9, 13);
        vquarter_round(&mut v, 2, 6, 10, 14);
        vquarter_round(&mut v, 3, 7, 11, 15);
        vquarter_round(&mut v, 0, 5, 10, 15);
        vquarter_round(&mut v, 1, 6, 11, 12);
        vquarter_round(&mut v, 2, 7, 8, 13);
        vquarter_round(&mut v, 3, 4, 9, 14);
    }
    for (word, seed) in v.iter_mut().zip(&init) {
        vadd(word, seed);
    }
    // De-interleave lanes back into byte order while XORing into dst.
    for j in 0..BATCH_BLOCKS {
        let block = &mut dst[j * BLOCK_LEN..(j + 1) * BLOCK_LEN];
        for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
            let w = u32::from_le_bytes(chunk.try_into().expect("4 bytes")) ^ v[i][j];
            chunk.copy_from_slice(&w.to_le_bytes());
        }
    }
}

/// Computes one 64-byte ChaCha20 keystream block.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let words = block_words(&init_state(key, counter, nonce));
    let mut out = [0u8; BLOCK_LEN];
    for (chunk, w) in out.chunks_exact_mut(4).zip(words) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Streaming ChaCha20 keystream generator.
///
/// The key and nonce are parsed into the flat initial state exactly once in
/// [`ChaCha20::new`]; afterwards only the counter word (`state[12]`)
/// advances. Applying keystream is allocation-free and word-vectorized.
///
/// # Examples
///
/// ```
/// use nymix_crypto::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let mut msg = *b"nymbox state";
/// ChaCha20::new(&key, &nonce, 1).apply(&mut msg);
/// assert_ne!(&msg, b"nymbox state");
/// ChaCha20::new(&key, &nonce, 1).apply(&mut msg);
/// assert_eq!(&msg, b"nymbox state");
/// ```
pub struct ChaCha20 {
    /// Flat initial state; `state[12]` is the block counter and is the only
    /// word that changes between blocks.
    state: [u32; 16],
    /// Leftover keystream from a partially consumed block.
    buf: [u8; BLOCK_LEN],
    buf_pos: usize,
}

impl Drop for ChaCha20 {
    fn drop(&mut self) {
        // state[4..12] are the key words and buf is live keystream
        // (key-equivalent); wipe the whole state rather than track which
        // words are sensitive.
        crate::zeroize::wipe_words(&mut self.state);
        crate::zeroize::wipe_bytes(&mut self.buf);
    }
}

impl ChaCha20 {
    /// Creates a cipher positioned at `initial_counter`.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], initial_counter: u32) -> Self {
        Self {
            state: init_state(key, initial_counter, nonce),
            buf: [0u8; BLOCK_LEN],
            buf_pos: BLOCK_LEN,
        }
    }

    /// Repositions the keystream at the start of block `block_counter`,
    /// discarding any buffered partial block.
    pub fn seek(&mut self, block_counter: u32) {
        self.state[12] = block_counter;
        self.buf_pos = BLOCK_LEN;
    }

    /// The next block counter value that would be consumed.
    pub fn counter(&self) -> u32 {
        self.state[12]
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    ///
    /// Equivalent to [`ChaCha20::xor_into`]; kept as the cipher-flavored
    /// name.
    #[inline]
    pub fn apply(&mut self, data: &mut [u8]) {
        self.xor_into(data);
    }

    /// XORs the next `dst.len()` keystream bytes into `dst`.
    ///
    /// This is the allocation-free PRG entry point: DC-net pad accumulation
    /// XORs one stream per pairwise seed directly into the slot accumulator,
    /// and onion wrap/peel XOR per-hop streams directly into the cell. Full
    /// 64-byte blocks are produced by a `BATCH_BLOCKS`-block batched
    /// kernel and XORed word-by-word; only a trailing partial block goes
    /// through the byte buffer.
    pub fn xor_into(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        let mut off = 0;

        // Drain leftover keystream from a previous partial block.
        while self.buf_pos < BLOCK_LEN && off < n {
            dst[off] ^= self.buf[self.buf_pos];
            self.buf_pos += 1;
            off += 1;
        }

        // Batched kernel: BATCH_BLOCKS blocks per round trip through the
        // working state, only the counter lane changing between blocks.
        while n - off >= BATCH_BLOCKS * BLOCK_LEN {
            xor_batch(&self.state, &mut dst[off..off + BATCH_BLOCKS * BLOCK_LEN]);
            self.state[12] = self.state[12].wrapping_add(BATCH_BLOCKS as u32);
            off += BATCH_BLOCKS * BLOCK_LEN;
        }

        // Remaining full blocks.
        while n - off >= BLOCK_LEN {
            let words = block_words(&self.state);
            self.state[12] = self.state[12].wrapping_add(1);
            xor_words(&mut dst[off..off + BLOCK_LEN], &words);
            off += BLOCK_LEN;
        }

        // Trailing partial block: materialize one block into the buffer and
        // consume what is needed; the rest stays for the next call.
        if off < n {
            let words = block_words(&self.state);
            self.state[12] = self.state[12].wrapping_add(1);
            for (chunk, w) in self.buf.chunks_exact_mut(4).zip(words) {
                chunk.copy_from_slice(&w.to_le_bytes());
            }
            self.buf_pos = 0;
            while off < n {
                dst[off] ^= self.buf[self.buf_pos];
                self.buf_pos += 1;
                off += 1;
            }
        }
    }

    /// Produces `len` bytes of raw keystream.
    #[deprecated(
        since = "0.1.0",
        note = "allocates a keystream Vec per call; use `xor_into` on a caller buffer instead"
    )]
    pub fn keystream(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.xor_into(&mut out);
        out
    }
}

/// Encrypts (or decrypts) `data` in place with the RFC 8439 convention of
/// starting the keystream at block counter 1 (block 0 is reserved for the
/// Poly1305 one-time key in the AEAD construction).
pub fn chacha20_xor(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    ChaCha20::new(key, nonce, 1).xor_into(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn test_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2.
        let key = test_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let out = block(&key, 1, &nonce);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encrypt_vector() {
        // RFC 8439 §2.4.2 ("sunscreen" plaintext).
        let key = test_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        chacha20_xor(&key, &nonce, &mut data);
        assert_eq!(
            hex(&data),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn streaming_matches_block_boundaries() {
        let key = test_key();
        let nonce = [3u8; 12];
        let mut a = vec![0u8; 200];
        ChaCha20::new(&key, &nonce, 0).apply(&mut a);
        // Apply in uneven chunks; result must be identical.
        let mut b = vec![0u8; 200];
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let mut off = 0;
        for chunk in [1usize, 63, 64, 65, 7] {
            c.apply(&mut b[off..off + chunk]);
            off += chunk;
        }
        assert_eq!(a, b);
    }

    #[test]
    fn batched_path_matches_single_blocks() {
        // Cross 4-block batch boundaries with a large buffer and verify
        // against the reference single-block function.
        let key = test_key();
        let nonce = [5u8; 12];
        let mut data = vec![0u8; 64 * 11 + 17];
        ChaCha20::new(&key, &nonce, 3).xor_into(&mut data);
        for (i, chunk) in data.chunks(64).enumerate() {
            let want = block(&key, 3 + i as u32, &nonce);
            assert_eq!(chunk, &want[..chunk.len()], "block {i}");
        }
    }

    #[test]
    fn seek_repositions_keystream() {
        let key = test_key();
        let nonce = [8u8; 12];
        let mut direct = [0u8; 64];
        ChaCha20::new(&key, &nonce, 7).xor_into(&mut direct);

        let mut c = ChaCha20::new(&key, &nonce, 0);
        let mut scratch = [0u8; 100];
        c.xor_into(&mut scratch); // consume into a partial block
        c.seek(7);
        assert_eq!(c.counter(), 7);
        let mut seeked = [0u8; 64];
        c.xor_into(&mut seeked);
        assert_eq!(direct, seeked);
    }

    #[test]
    #[allow(deprecated)]
    fn keystream_is_deterministic() {
        let key = [9u8; 32];
        let nonce = [4u8; 12];
        let k1 = ChaCha20::new(&key, &nonce, 0).keystream(100);
        let k2 = ChaCha20::new(&key, &nonce, 0).keystream(100);
        assert_eq!(k1, k2);
        let k3 = ChaCha20::new(&key, &nonce, 1).keystream(100);
        assert_ne!(k1, k3);
    }

    #[test]
    fn xor_into_equals_apply() {
        let key = [0x31u8; 32];
        let nonce = [0x13u8; 12];
        let mut a = vec![0x5au8; 333];
        let mut b = a.clone();
        ChaCha20::new(&key, &nonce, 2).apply(&mut a);
        ChaCha20::new(&key, &nonce, 2).xor_into(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_inverts() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        let msg: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut work = msg.clone();
        chacha20_xor(&key, &nonce, &mut work);
        assert_ne!(work, msg);
        chacha20_xor(&key, &nonce, &mut work);
        assert_eq!(work, msg);
    }
}
