//! RFC 8439 ChaCha20-Poly1305 authenticated encryption.
//!
//! This is the construction Nymix uses to seal quasi-persistent nym
//! archives before they leave the machine (§3.5): the cloud provider sees
//! only ciphertext, and tampering (e.g. a provider splicing one nym's
//! state into another) is detected on restore.

use crate::chacha20::{self, ChaCha20, KEY_LEN, NONCE_LEN};
use crate::ct;
use crate::poly1305::{poly1305_tag, TAG_LEN};

/// Error returned when decryption fails authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// The Poly1305 tag did not verify; the ciphertext or associated data
    /// was modified, or the wrong key/nonce was used.
    TagMismatch,
    /// The ciphertext is shorter than a tag.
    Truncated,
}

impl core::fmt::Display for AeadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AeadError::TagMismatch => write!(f, "authentication tag mismatch"),
            AeadError::Truncated => write!(f, "ciphertext shorter than tag"),
        }
    }
}

impl std::error::Error for AeadError {}

fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = chacha20::block(key, 0, nonce);
    let mut out = [0u8; 32];
    out.copy_from_slice(&block[..32]);
    out
}

fn mac_data(otk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac_input = Vec::with_capacity(aad.len() + ciphertext.len() + 32);
    mac_input.extend_from_slice(aad);
    mac_input.extend_from_slice(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
    mac_input.extend_from_slice(ciphertext);
    mac_input.extend_from_slice(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
    mac_input.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    mac_input.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    poly1305_tag(otk, &mac_input)
}

/// Encrypts `plaintext` with associated data `aad`; returns
/// `ciphertext || tag`.
///
/// # Examples
///
/// ```
/// use nymix_crypto::{seal, open};
///
/// let key = [0u8; 32];
/// let nonce = [0u8; 12];
/// let boxed = seal(&key, &nonce, b"nym:alice", b"secret state");
/// let back = open(&key, &nonce, b"nym:alice", &boxed).unwrap();
/// assert_eq!(back, b"secret state");
/// ```
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    ChaCha20::new(key, nonce, 1).apply(&mut out);
    let otk = poly_key(key, nonce);
    let tag = mac_data(&otk, aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// Decrypts `boxed` (`ciphertext || tag`), verifying `aad`.
///
/// # Errors
///
/// Returns [`AeadError::Truncated`] if `boxed` is shorter than a tag and
/// [`AeadError::TagMismatch`] if authentication fails.
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    boxed: &[u8],
) -> Result<Vec<u8>, AeadError> {
    if boxed.len() < TAG_LEN {
        return Err(AeadError::Truncated);
    }
    let (ciphertext, tag) = boxed.split_at(boxed.len() - TAG_LEN);
    let otk = poly_key(key, nonce);
    let want = mac_data(&otk, aad, ciphertext);
    if !ct::eq(&want, tag) {
        return Err(AeadError::TagMismatch);
    }
    let mut out = ciphertext.to_vec();
    ChaCha20::new(key, nonce, 1).apply(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let nonce: [u8; 12] = [0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47];
        let aad: [u8; 12] = [0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let boxed = seal(&key, &nonce, &aad, plaintext);
        let (ct_part, tag) = boxed.split_at(boxed.len() - 16);
        assert_eq!(
            hex(&ct_part[..16]),
            "d31a8d34648e60db7b86afbc53ef7ec2",
            "first ciphertext block"
        );
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        let back = open(&key, &nonce, &aad, &boxed).unwrap();
        assert_eq!(back, plaintext);
    }

    #[test]
    fn tamper_detected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut boxed = seal(&key, &nonce, b"", b"hello world");
        boxed[0] ^= 1;
        assert_eq!(open(&key, &nonce, b"", &boxed), Err(AeadError::TagMismatch));
    }

    #[test]
    fn aad_mismatch_detected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let boxed = seal(&key, &nonce, b"nym:a", b"hello");
        assert_eq!(
            open(&key, &nonce, b"nym:b", &boxed),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn wrong_key_detected() {
        let nonce = [2u8; 12];
        let boxed = seal(&[1u8; 32], &nonce, b"", b"hello");
        assert_eq!(
            open(&[3u8; 32], &nonce, b"", &boxed),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(open(&[0u8; 32], &[0u8; 12], b"", &[1, 2, 3]), Err(AeadError::Truncated));
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = [9u8; 32];
        let nonce = [8u8; 12];
        let boxed = seal(&key, &nonce, b"aad", b"");
        assert_eq!(boxed.len(), 16);
        assert_eq!(open(&key, &nonce, b"aad", &boxed).unwrap(), b"");
    }

    #[test]
    fn various_lengths_roundtrip() {
        let key = [7u8; 32];
        let nonce = [6u8; 12];
        for len in [1usize, 15, 16, 17, 63, 64, 65, 1000] {
            let msg = vec![0xabu8; len];
            let boxed = seal(&key, &nonce, b"x", &msg);
            assert_eq!(open(&key, &nonce, b"x", &boxed).unwrap(), msg, "len {len}");
        }
    }
}
