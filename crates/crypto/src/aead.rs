//! RFC 8439 ChaCha20-Poly1305 authenticated encryption.
//!
//! This is the construction Nymix uses to seal quasi-persistent nym
//! archives before they leave the machine (§3.5): the cloud provider sees
//! only ciphertext, and tampering (e.g. a provider splicing one nym's
//! state into another) is detected on restore.
//!
//! Layout convention (RFC 8439 §2.8): block counter 0 of the ChaCha20
//! keystream derives the Poly1305 one-time key; the payload keystream
//! starts at block counter 1. The MAC input is
//! `aad || pad16 || ciphertext || pad16 || len(aad) || len(ciphertext)`,
//! streamed through the incremental [`Poly1305`] hasher — no scratch copy
//! of aad + ciphertext is ever assembled.
//!
//! The primary entry points are the allocation-free
//! [`seal_in_place_detached`] / [`open_in_place_detached`], which
//! encrypt/decrypt a caller buffer in place with a detached tag;
//! [`seal`] / [`open`] are thin boxing wrappers.

use crate::chacha20::{self, ChaCha20, KEY_LEN, NONCE_LEN};
use crate::ct;
use crate::poly1305::{Poly1305, TAG_LEN};

/// Error returned when decryption fails authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// The Poly1305 tag did not verify; the ciphertext or associated data
    /// was modified, or the wrong key/nonce was used.
    TagMismatch,
    /// The ciphertext is shorter than a tag.
    Truncated,
}

impl core::fmt::Display for AeadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AeadError::TagMismatch => write!(f, "authentication tag mismatch"),
            AeadError::Truncated => write!(f, "ciphertext shorter than tag"),
        }
    }
}

impl std::error::Error for AeadError {}

fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = chacha20::block(key, 0, nonce);
    let mut out = [0u8; 32];
    out.copy_from_slice(&block[..32]);
    out
}

/// MACs `aad` and `ciphertext` in the RFC 8439 AEAD layout, streaming the
/// slices directly through the incremental hasher.
fn mac_data(otk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(otk);
    mac.update(aad);
    mac.pad_to_block();
    mac.update(ciphertext);
    mac.pad_to_block();
    let mut lengths = [0u8; 16];
    lengths[..8].copy_from_slice(&(aad.len() as u64).to_le_bytes());
    lengths[8..].copy_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    mac.update(&lengths);
    mac.finalize()
}

/// Encrypts `data` in place and returns the detached tag.
///
/// Performs no heap allocation: the caller owns the buffer, the keystream
/// is XORed in block-wise, and the tag is computed by streaming the
/// ciphertext through Poly1305.
///
/// # Examples
///
/// ```
/// use nymix_crypto::{open_in_place_detached, seal_in_place_detached};
///
/// let key = [0u8; 32];
/// let nonce = [0u8; 12];
/// let mut buf = *b"secret state";
/// let tag = seal_in_place_detached(&key, &nonce, b"nym:alice", &mut buf);
/// assert_ne!(&buf, b"secret state");
/// open_in_place_detached(&key, &nonce, b"nym:alice", &mut buf, &tag).unwrap();
/// assert_eq!(&buf, b"secret state");
/// ```
pub fn seal_in_place_detached(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    data: &mut [u8],
) -> [u8; TAG_LEN] {
    nymix_obs::counter!("crypto.aead.seals", 1u64);
    ChaCha20::new(key, nonce, 1).xor_into(data);
    let mut otk = poly_key(key, nonce);
    let tag = mac_data(&otk, aad, data);
    crate::zeroize::wipe_bytes(&mut otk);
    tag
}

/// Verifies `tag` over `aad` and the ciphertext in `data`, then decrypts
/// `data` in place.
///
/// The buffer is left untouched unless authentication succeeds.
///
/// # Errors
///
/// Returns [`AeadError::Truncated`] if `tag` is not exactly [`TAG_LEN`]
/// bytes and [`AeadError::TagMismatch`] if authentication fails.
pub fn open_in_place_detached(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    data: &mut [u8],
    tag: &[u8],
) -> Result<(), AeadError> {
    if tag.len() != TAG_LEN {
        return Err(AeadError::Truncated);
    }
    nymix_obs::counter!("crypto.aead.opens", 1u64);
    let mut otk = poly_key(key, nonce);
    let want = mac_data(&otk, aad, data);
    crate::zeroize::wipe_bytes(&mut otk);
    if !ct::eq(&want, tag) {
        return Err(AeadError::TagMismatch);
    }
    ChaCha20::new(key, nonce, 1).xor_into(data);
    Ok(())
}

/// Encrypts `plaintext` with associated data `aad`; returns
/// `ciphertext || tag`.
///
/// Thin wrapper over [`seal_in_place_detached`] that allocates the output
/// box; bulk paths should use the in-place form on a reused buffer.
///
/// # Examples
///
/// ```
/// use nymix_crypto::{seal, open};
///
/// let key = [0u8; 32];
/// let nonce = [0u8; 12];
/// let boxed = seal(&key, &nonce, b"nym:alice", b"secret state");
/// let back = open(&key, &nonce, b"nym:alice", &boxed).unwrap();
/// assert_eq!(back, b"secret state");
/// ```
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
    out.extend_from_slice(plaintext);
    let tag = seal_in_place_detached(key, nonce, aad, &mut out);
    out.extend_from_slice(&tag);
    out
}

/// Decrypts `boxed` (`ciphertext || tag`), verifying `aad`.
///
/// Thin wrapper over [`open_in_place_detached`] that copies the ciphertext
/// into a fresh buffer; bulk paths should use the in-place form.
///
/// # Errors
///
/// Returns [`AeadError::Truncated`] if `boxed` is shorter than a tag and
/// [`AeadError::TagMismatch`] if authentication fails.
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    boxed: &[u8],
) -> Result<Vec<u8>, AeadError> {
    if boxed.len() < TAG_LEN {
        return Err(AeadError::Truncated);
    }
    let (ciphertext, tag) = boxed.split_at(boxed.len() - TAG_LEN);
    let mut out = ciphertext.to_vec();
    open_in_place_detached(key, nonce, aad, &mut out, tag)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let nonce: [u8; 12] = [
            0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad: [u8; 12] = [
            0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let boxed = seal(&key, &nonce, &aad, plaintext);
        let (ct_part, tag) = boxed.split_at(boxed.len() - 16);
        assert_eq!(
            hex(&ct_part[..16]),
            "d31a8d34648e60db7b86afbc53ef7ec2",
            "first ciphertext block"
        );
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        let back = open(&key, &nonce, &aad, &boxed).unwrap();
        assert_eq!(back, plaintext);
    }

    #[test]
    fn in_place_matches_boxed() {
        let key = [0x21u8; 32];
        let nonce = [0x12u8; 12];
        let aad = b"assoc";
        for len in [0usize, 1, 16, 63, 64, 65, 500] {
            let msg = vec![0x6du8; len];
            let boxed = seal(&key, &nonce, aad, &msg);
            let mut buf = msg.clone();
            let tag = seal_in_place_detached(&key, &nonce, aad, &mut buf);
            assert_eq!(&boxed[..len], &buf[..], "ciphertext len {len}");
            assert_eq!(&boxed[len..], &tag[..], "tag len {len}");
            open_in_place_detached(&key, &nonce, aad, &mut buf, &tag).unwrap();
            assert_eq!(buf, msg, "roundtrip len {len}");
        }
    }

    #[test]
    fn in_place_open_rejects_tamper_without_decrypting() {
        let key = [4u8; 32];
        let nonce = [5u8; 12];
        let mut buf = b"payload bytes".to_vec();
        let mut tag = seal_in_place_detached(&key, &nonce, b"", &mut buf);
        tag[0] ^= 1;
        let before = buf.clone();
        assert_eq!(
            open_in_place_detached(&key, &nonce, b"", &mut buf, &tag),
            Err(AeadError::TagMismatch)
        );
        assert_eq!(buf, before, "buffer must stay ciphertext on failure");
        assert_eq!(
            open_in_place_detached(&key, &nonce, b"", &mut buf, &tag[..15]),
            Err(AeadError::Truncated)
        );
    }

    #[test]
    fn tamper_detected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut boxed = seal(&key, &nonce, b"", b"hello world");
        boxed[0] ^= 1;
        assert_eq!(open(&key, &nonce, b"", &boxed), Err(AeadError::TagMismatch));
    }

    #[test]
    fn aad_mismatch_detected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let boxed = seal(&key, &nonce, b"nym:a", b"hello");
        assert_eq!(
            open(&key, &nonce, b"nym:b", &boxed),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn wrong_key_detected() {
        let nonce = [2u8; 12];
        let boxed = seal(&[1u8; 32], &nonce, b"", b"hello");
        assert_eq!(
            open(&[3u8; 32], &nonce, b"", &boxed),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            open(&[0u8; 32], &[0u8; 12], b"", &[1, 2, 3]),
            Err(AeadError::Truncated)
        );
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let key = [9u8; 32];
        let nonce = [8u8; 12];
        let boxed = seal(&key, &nonce, b"aad", b"");
        assert_eq!(boxed.len(), 16);
        assert_eq!(open(&key, &nonce, b"aad", &boxed).unwrap(), b"");
    }

    #[test]
    fn various_lengths_roundtrip() {
        let key = [7u8; 32];
        let nonce = [6u8; 12];
        for len in [1usize, 15, 16, 17, 63, 64, 65, 1000] {
            let msg = vec![0xabu8; len];
            let boxed = seal(&key, &nonce, b"x", &msg);
            assert_eq!(open(&key, &nonce, b"x", &boxed).unwrap(), msg, "len {len}");
        }
    }
}
