//! Constant-time comparison helpers.
//!
//! Tag verification in [`crate::aead`] and password checks in the nym
//! store must not leak how many leading bytes matched.

/// Compares two byte slices in time independent of their contents.
///
/// Returns `false` immediately (and safely) if lengths differ — length is
/// not secret in any Nymix use.
///
/// # Examples
///
/// ```
/// assert!(nymix_crypto::ct::eq(b"abc", b"abc"));
/// assert!(!nymix_crypto::ct::eq(b"abc", b"abd"));
/// ```
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Selects `a` when `choice` is true, `b` otherwise, without branching on
/// the choice bit.
pub fn select_u8(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(eq(b"", b""));
        assert!(eq(b"x", b"x"));
        assert!(!eq(b"x", b"y"));
        assert!(!eq(b"x", b"xx"));
        assert!(!eq(b"ax", b"bx"));
    }

    #[test]
    fn select_basic() {
        assert_eq!(select_u8(true, 0xaa, 0x55), 0xaa);
        assert_eq!(select_u8(false, 0xaa, 0x55), 0x55);
    }
}
