//! Cryptographic primitives for Nymix, implemented from scratch.
//!
//! Nymix encrypts quasi-persistent nym state before shipping it to cloud
//! storage (§3.5 of the paper), verifies the read-only host partition with a
//! Merkle tree (§3.4), and builds DC-net pads for the Dissent anonymizer
//! (§3.3/§4.1). This crate provides the primitives those paths need:
//!
//! * [`sha256`](mod@crate::sha256) — FIPS 180-4 SHA-256.
//! * [`hmac`] — RFC 2104 HMAC-SHA256.
//! * [`hkdf`] — RFC 5869 HKDF-SHA256 extract/expand.
//! * [`pbkdf2`] — RFC 8018 PBKDF2-HMAC-SHA256 password KDF.
//! * [`chacha20`] — RFC 8439 ChaCha20 stream cipher.
//! * [`poly1305`] — RFC 8439 Poly1305 one-time authenticator.
//! * [`aead`] — RFC 8439 ChaCha20-Poly1305 AEAD.
//! * [`merkle`] — binary Merkle hash tree over disk blocks.
//! * [`ct`] — constant-time comparison helpers.
//!
//! # The in-place hot path
//!
//! Everything Nymix moves in bulk — onion-wrapped Tor cells, DC-net pads,
//! sealed nym archives — runs through ChaCha20/Poly1305, so these
//! primitives are built for block-level, zero-copy operation:
//!
//! * [`ChaCha20::xor_into`] XORs keystream directly into a caller buffer,
//!   word-vectorized over 64-byte blocks (4-block batched kernel), with
//!   [`ChaCha20::seek`] for repositioning. No keystream `Vec` is ever
//!   allocated; `ChaCha20::keystream` is deprecated accordingly.
//! * [`Poly1305`] is an incremental `update`/`finalize` hasher, so MACs
//!   stream over scattered slices without a scratch copy.
//! * [`seal_in_place_detached`] / [`open_in_place_detached`] encrypt and
//!   authenticate a caller buffer in place with a detached tag; the
//!   allocating [`seal`] / [`open`] are thin wrappers over them.
//!
//! The SHA-256 stack gets the same treatment for the save/restore path:
//!
//! * The compression function is fully unrolled with a rolling 16-word
//!   schedule window, and [`Sha256::update`] compresses aligned input
//!   directly from the caller's slice (no staging buffer).
//! * [`sha256_x4`] hashes four equal-length messages (with a shared
//!   prefix) in one interleaved pass; [`MerkleTree::build`] batches leaf
//!   and interior-node hashing on it.
//! * [`MerkleAccumulator`] keeps a tree's leaf and interior nodes cached
//!   between root computations, so recommitting after a few leaf edits
//!   costs O(dirty · log n) hashes instead of O(n) — the delta-snapshot
//!   save and restore-replay paths both ride on it.
//!
//! # SHA-256 backend dispatch
//!
//! The SHA-256 compression kernel is selected once per process at
//! runtime rather than at compile time: the `NYMIX_SHA_BACKEND` env
//! var (`scalar|x4|avx2|shani`) overrides, otherwise CPUID picks
//! SHA-NI, then AVX2, then the portable [`sha256_x4`]/scalar floor
//! that every build retains. The accelerated kernels exist only under
//! the opt-in `simd-kernels` feature (without it this crate still
//! `forbid(unsafe_code)`s), and every backend is proptested
//! bit-identical to the scalar floor. See the
//! [`sha256`](mod@crate::sha256) module docs for the full model;
//! [`sha256_backend`] / [`set_sha_backend`] expose the selection.
//! * [`HmacKey`] caches the ipad/opad midstates so every MAC under a
//!   reused key skips the key-block compressions; [`HmacKey::mac32`] is
//!   the two-compression PBKDF2 iteration shape, and
//!   [`pbkdf2_hmac_sha256_into`] derives keys into a caller buffer with
//!   a multi-part salt and no allocation.
//!
//! # AEAD counter convention
//!
//! Per RFC 8439 §2.8, ChaCha20 block counter 0 under the message nonce
//! derives the Poly1305 one-time key, and payload keystream starts at
//! block counter 1. Standalone cipher users (e.g. DC-net pad expansion)
//! are free to start at counter 0.
//!
//! # Secret hygiene
//!
//! Key-bearing types ([`HmacKey`], [`ChaCha20`], [`Poly1305`]) do not
//! implement `Clone` or derive `Debug`, and wipe their material on drop
//! via [`zeroize`]. The workspace's `nymix-lint` `secret-*` rules pin
//! these properties; `LINTS.md` at the repository root documents the
//! full rule catalogue.
//!
//! All implementations are validated against published test vectors in
//! their module tests. The crate has no dependencies and performs no I/O.

// Without the opt-in kernels this crate carries no unsafe code at all;
// with them, unsafe stays denied everywhere except the two cfg-gated
// kernel modules, which override with a file-level allow that
// nymix-lint cross-checks against its registered unsafe-kernel
// exemptions (forbid could not be overridden, hence the downgrade).
#![cfg_attr(not(feature = "simd-kernels"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd-kernels", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod hkdf;
pub mod hmac;
pub mod merkle;
pub mod pbkdf2;
pub mod poly1305;
pub mod sha256;
pub mod zeroize;

pub use aead::{open, open_in_place_detached, seal, seal_in_place_detached, AeadError};
pub use chacha20::ChaCha20;
pub use hkdf::{hkdf_expand, hkdf_extract};
pub use hmac::{hmac_sha256, HmacKey};
pub use merkle::{leaf_hash_parts, merkle_root_from_leaves, MerkleAccumulator, MerkleTree};
pub use pbkdf2::{pbkdf2_hmac_sha256, pbkdf2_hmac_sha256_into};
pub use poly1305::{poly1305_tag, Poly1305};
pub use sha256::{set_sha_backend, sha256, sha256_backend, sha256_x4, Sha256, ShaBackend};
