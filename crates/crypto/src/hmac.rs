//! RFC 2104 HMAC-SHA256.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, msg)`.
///
/// # Examples
///
/// ```
/// let mac = nymix_crypto::hmac_sha256(b"key", b"msg");
/// assert_eq!(mac.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = crate::sha256(key);
        key_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // RFC 4231 test case 6: 131-byte key.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
