//! RFC 2104 HMAC-SHA256.
//!
//! Two APIs share one implementation:
//!
//! * [`hmac_sha256`] — one-shot, for callers that MAC under a fresh key.
//! * [`HmacKey`] — a precomputed key: the ipad/opad SHA-256 midstates are
//!   compressed once at construction and replayed for every message, so
//!   each subsequent MAC costs two compression calls for short messages
//!   instead of four. PBKDF2 runs its entire inner loop on
//!   [`HmacKey::mac32`], which is what makes the 10k-iteration KDF
//!   affordable on every nym save/restore.

use crate::sha256::{compress_blocks, state_to_digest, Sha256, BLOCK_LEN, DIGEST_LEN, INIT_STATE};

/// A precomputed HMAC-SHA256 key.
///
/// Construction hashes the padded key into the two midstates; MACs then
/// resume from those states without touching the key material again.
///
/// # Examples
///
/// ```
/// use nymix_crypto::{hmac_sha256, HmacKey};
///
/// let key = HmacKey::new(b"key");
/// assert_eq!(key.mac(b"msg"), hmac_sha256(b"key", b"msg"));
/// ```
pub struct HmacKey {
    /// State after compressing `key ^ ipad`.
    inner: [u32; 8],
    /// State after compressing `key ^ opad`.
    outer: [u32; 8],
}

impl Drop for HmacKey {
    fn drop(&mut self) {
        // The midstates are key-equivalent: anyone holding them can MAC
        // arbitrary messages under this key.
        crate::zeroize::wipe_words(&mut self.inner);
        crate::zeroize::wipe_words(&mut self.outer);
    }
}

/// Bit length of the single-block messages [`HmacKey::mac32`] and the
/// outer hash consume: one key pad block plus a 32-byte payload.
const PADDED_32B_BITS: u64 = ((BLOCK_LEN + DIGEST_LEN) * 8) as u64;

impl HmacKey {
    /// Precomputes the midstates for `key` (hashed first if longer than
    /// one block, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }
        let mut inner = INIT_STATE;
        compress_blocks(&mut inner, &ipad);
        let mut outer = INIT_STATE;
        compress_blocks(&mut outer, &opad);
        crate::zeroize::wipe_bytes(&mut key_block);
        crate::zeroize::wipe_bytes(&mut ipad);
        crate::zeroize::wipe_bytes(&mut opad);
        Self { inner, outer }
    }

    /// Starts a streaming MAC: a hasher resumed from the inner midstate.
    /// Feed the message with [`Sha256::update`], then pass the hasher to
    /// [`HmacKey::finish`].
    pub fn hasher(&self) -> Sha256 {
        Sha256::from_midstate(self.inner, BLOCK_LEN as u64)
    }

    /// Completes a streaming MAC started with [`HmacKey::hasher`].
    pub fn finish(&self, inner: Sha256) -> [u8; DIGEST_LEN] {
        self.outer_digest(&inner.finalize())
    }

    /// Computes `HMAC-SHA256(key, msg)`.
    pub fn mac(&self, msg: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = self.hasher();
        h.update(msg);
        self.finish(h)
    }

    /// MAC of a 32-byte message in exactly two compression calls — the
    /// PBKDF2 iteration shape (`U_{n+1} = HMAC(P, U_n)`).
    pub fn mac32(&self, msg: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
        let mut state = self.inner;
        compress_blocks(&mut state, &padded_32b_block(msg));
        self.outer_digest(&state_to_digest(&state))
    }

    /// The outer hash: one compression of `inner_digest` padded to a
    /// block, resumed from the opad midstate.
    fn outer_digest(&self, inner_digest: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
        let mut state = self.outer;
        compress_blocks(&mut state, &padded_32b_block(inner_digest));
        state_to_digest(&state)
    }
}

/// Builds the final SHA-256 block for a 32-byte payload that follows one
/// already-compressed block: payload ‖ 0x80 ‖ zeros ‖ bit length.
fn padded_32b_block(payload: &[u8; DIGEST_LEN]) -> [u8; BLOCK_LEN] {
    let mut block = [0u8; BLOCK_LEN];
    block[..DIGEST_LEN].copy_from_slice(payload);
    block[DIGEST_LEN] = 0x80;
    block[BLOCK_LEN - 8..].copy_from_slice(&PADDED_32B_BITS.to_be_bytes());
    block
}

/// Computes `HMAC-SHA256(key, msg)`.
///
/// # Examples
///
/// ```
/// let mac = nymix_crypto::hmac_sha256(b"key", b"msg");
/// assert_eq!(mac.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    HmacKey::new(key).mac(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Direct RFC 2104 construction with no midstate caching, as the seed
    /// implemented it; the fast paths must agree with this exactly.
    fn hmac_naive(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        inner.update(msg);
        let inner_digest = inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&opad);
        outer.update(&inner_digest);
        outer.finalize()
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // RFC 4231 test case 6: 131-byte key.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn precomputed_key_matches_naive() {
        for key_len in [0usize, 1, 20, 63, 64, 65, 131] {
            let key = vec![0x7eu8; key_len];
            let hk = HmacKey::new(&key);
            for msg_len in [0usize, 1, 31, 32, 33, 55, 56, 64, 200] {
                let msg: Vec<u8> = (0..msg_len as u8).collect();
                assert_eq!(
                    hk.mac(&msg),
                    hmac_naive(&key, &msg),
                    "key {key_len} msg {msg_len}"
                );
            }
        }
    }

    #[test]
    fn mac32_matches_general_path() {
        let hk = HmacKey::new(b"pbkdf2-key");
        let msg = [0x42u8; 32];
        assert_eq!(hk.mac32(&msg), hk.mac(&msg));
        assert_eq!(hk.mac32(&msg), hmac_naive(b"pbkdf2-key", &msg));
    }

    #[test]
    fn streaming_matches_oneshot() {
        let hk = HmacKey::new(b"stream");
        let mut h = hk.hasher();
        h.update(b"part one|");
        h.update(b"part two");
        assert_eq!(hk.finish(h), hk.mac(b"part one|part two"));
    }
}
