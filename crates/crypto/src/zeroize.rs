//! Best-effort zeroization for key material.
//!
//! Nymix's secret types ([`crate::hmac::HmacKey`] midstates,
//! [`crate::chacha20::ChaCha20`] state, [`crate::poly1305::Poly1305`]
//! limbs, the store's `SealKey`) wipe themselves on drop so freed nym
//! keys do not linger in the host's reusable heap pages — the same
//! paranoia the paper applies to quasi-persistent state generally
//! (§3.5): anything not explicitly bound to the nym must not survive
//! it.
//!
//! The workspace compiles under `#![forbid(unsafe_code)]`, so volatile
//! writes are off the table. Instead the wipe routes the zeroed
//! reference through [`core::hint::black_box`], which tells the
//! optimizer the value escapes and the stores must happen. This is the
//! strongest guarantee available in safe stable Rust; the
//! `secret-zeroize` lint pins that every registered secret type calls
//! into here from its `Drop`.

use core::hint::black_box;

/// Zeroes a byte buffer and inhibits dead-store elimination.
#[inline(never)]
pub fn wipe_bytes(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
    black_box(buf);
}

/// Zeroes a `u32` word buffer (hash midstates, cipher state, Poly1305
/// limbs) and inhibits dead-store elimination.
#[inline(never)]
pub fn wipe_words(buf: &mut [u32]) {
    for w in buf.iter_mut() {
        *w = 0;
    }
    black_box(buf);
}

/// Zeroes a `u64` limb buffer (Poly1305 `r`/`s`/accumulator limbs) and
/// inhibits dead-store elimination.
#[inline(never)]
pub fn wipe_limbs(buf: &mut [u64]) {
    for w in buf.iter_mut() {
        *w = 0;
    }
    black_box(buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wipes_to_zero() {
        let mut b = [0xAAu8; 64];
        wipe_bytes(&mut b);
        assert_eq!(b, [0u8; 64]);
        let mut w = [0xDEADBEEFu32; 16];
        wipe_words(&mut w);
        assert_eq!(w, [0u32; 16]);
        let mut l = [u64::MAX; 3];
        wipe_limbs(&mut l);
        assert_eq!(l, [0u64; 3]);
    }
}
