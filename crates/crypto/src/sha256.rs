//! FIPS 180-4 SHA-256.
//!
//! Used throughout Nymix: page-content hashing for KSM, Merkle leaves for
//! the read-only host partition check, and as the compression function
//! behind HMAC/HKDF/PBKDF2.
//!
//! # Performance notes
//!
//! The compression function is fully unrolled with the message schedule
//! kept as a rolling 16-word window that is advanced in place between
//! 16-round groups. The straightforward formulation (precompute `w[64]`,
//! then a 64-iteration round loop) autovectorizes badly under
//! `-C target-cpu=native`: LLVM turns the 48-iteration schedule loop into
//! AVX-512 gather/shuffle soup while leaving the serially-dependent round
//! loop scalar, which is how the seed lost ~1.5× on `sha256_64k`. The
//! unrolled form has no loop to pessimize and keeps both the state and the
//! window register-resident.
//!
//! Three entry points share the kernel:
//!
//! * [`Sha256`] — incremental hashing; `update` feeds aligned full blocks
//!   straight from the input slice without staging them through the
//!   partial-block buffer.
//! * [`sha256`] — one-shot convenience.
//! * [`sha256_x4`] — four equal-length messages (plus a shared prefix)
//!   hashed in one interleaved pass. The four lanes step in lockstep so
//!   the per-lane loops vectorize across lanes; batch Merkle leaf/node
//!   hashing is built on this.
//!
//! # Runtime backend dispatch
//!
//! PR 2's notes document how a single compile-time codegen target made
//! `sha256_64k` silently 2.4× slower when `-C target-cpu=native` was
//! dropped — a build-configuration dependency nobody notices until the
//! performance envelope is gone. The kernel behind all three entry
//! points is therefore selected **at runtime**, once per process:
//!
//! 1. `NYMIX_SHA_BACKEND=scalar|x4|avx2|shani` overrides everything
//!    (testing / forensics). Naming a kernel this build or CPU cannot
//!    run falls back to the portable [`ShaBackend::X4`] floor — it
//!    never silently upgrades to a different accelerated path.
//! 2. Otherwise CPUID picks the best supported kernel: SHA-NI
//!    (hardware rounds), then AVX2 (the interleaved kernel compiled in
//!    a verified-AVX2 context), then the portable floor.
//!
//! The accelerated kernels live in cfg-isolated child modules
//! (`shani`, `avx2`) compiled only under the `simd-kernels` feature on
//! `x86_64`; they are the only unsafe code in the workspace, and
//! `nymix-lint` carries them as registered, reason-required
//! `unsafe-kernel` exemptions. Without the feature the crate still
//! `forbid(unsafe_code)`s and runs the portable scalar/[`sha256_x4`]
//! kernels, which remain the bit-identical floor on every target.
//! [`sha256_backend`] reports the selection (and exports it as the
//! `crypto.sha256.backend` gauge); [`set_sha_backend`] forces it.

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// Number of bytes in a SHA-256 input block.
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Initial hash state (exposed to `hmac` for midstate caching).
pub(crate) const INIT_STATE: [u32; 8] = H0;

#[inline(always)]
fn sig0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}

#[inline(always)]
fn sig1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}

/// One round: consumes `$kw = K[t] + w[t]`, updates `$d` and `$h` so the
/// caller cycles the variable names instead of shuffling eight registers.
macro_rules! rnd {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $kw:expr) => {{
        let t1 = $h
            .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
            .wrapping_add(($e & $f) ^ (!$e & $g))
            .wrapping_add($kw);
        let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
            .wrapping_add(($a & $b) ^ ($c & ($a ^ $b)));
        $d = $d.wrapping_add(t1);
        $h = t1.wrapping_add(t2);
    }};
}

/// Sixteen unrolled rounds reading the current schedule window; `$off` is
/// the logical round number of `$w[0]`.
macro_rules! rnd16 {
    ($w:ident, $off:expr,
     $a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident) => {{
        rnd!($a, $b, $c, $d, $e, $f, $g, $h, $w[0].wrapping_add(K[$off]));
        rnd!(
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            $w[1].wrapping_add(K[$off + 1])
        );
        rnd!(
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            $w[2].wrapping_add(K[$off + 2])
        );
        rnd!(
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $w[3].wrapping_add(K[$off + 3])
        );
        rnd!(
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $w[4].wrapping_add(K[$off + 4])
        );
        rnd!(
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $w[5].wrapping_add(K[$off + 5])
        );
        rnd!(
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $w[6].wrapping_add(K[$off + 6])
        );
        rnd!(
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $w[7].wrapping_add(K[$off + 7])
        );
        rnd!(
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $w[8].wrapping_add(K[$off + 8])
        );
        rnd!(
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            $w[9].wrapping_add(K[$off + 9])
        );
        rnd!(
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            $w[10].wrapping_add(K[$off + 10])
        );
        rnd!(
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $w[11].wrapping_add(K[$off + 11])
        );
        rnd!(
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $w[12].wrapping_add(K[$off + 12])
        );
        rnd!(
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $w[13].wrapping_add(K[$off + 13])
        );
        rnd!(
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $w[14].wrapping_add(K[$off + 14])
        );
        rnd!(
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $w[15].wrapping_add(K[$off + 15])
        );
    }};
}

/// Advances the rolling window by one word:
/// `w[t] += s0(w[t+1]) + w[t+9] + s1(w[t+14])` with all indices mod 16.
/// In-place updates in ascending order naturally pick up
/// already-advanced words where the recurrence needs them.
macro_rules! sched1 {
    ($w:ident, $t:expr) => {
        $w[$t & 15] = $w[$t & 15]
            .wrapping_add(sig0($w[($t + 1) & 15]))
            .wrapping_add($w[($t + 9) & 15])
            .wrapping_add(sig1($w[($t + 14) & 15]));
    };
}

/// Advances the whole window sixteen rounds.
macro_rules! sched16 {
    ($w:ident) => {{
        sched1!($w, 0);
        sched1!($w, 1);
        sched1!($w, 2);
        sched1!($w, 3);
        sched1!($w, 4);
        sched1!($w, 5);
        sched1!($w, 6);
        sched1!($w, 7);
        sched1!($w, 8);
        sched1!($w, 9);
        sched1!($w, 10);
        sched1!($w, 11);
        sched1!($w, 12);
        sched1!($w, 13);
        sched1!($w, 14);
        sched1!($w, 15);
    }};
}

#[inline(always)]
fn compress_block(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    let mut w = [0u32; 16];
    for (t, chunk) in block.chunks_exact(4).enumerate() {
        w[t] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    rnd16!(w, 0, a, b, c, d, e, f, g, h);
    sched16!(w);
    rnd16!(w, 16, a, b, c, d, e, f, g, h);
    sched16!(w);
    rnd16!(w, 32, a, b, c, d, e, f, g, h);
    sched16!(w);
    rnd16!(w, 48, a, b, c, d, e, f, g, h);
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// The portable block loop — also the fallback the cfg-gated kernels
/// take when the runtime CPU check says no.
fn compress_blocks_portable(state: &mut [u32; 8], data: &[u8]) {
    for block in data.chunks_exact(BLOCK_LEN) {
        compress_block(state, block.try_into().expect("exact chunk"));
    }
}

/// Compresses every 64-byte block of `data` (whose length must be a
/// multiple of [`BLOCK_LEN`]) into `state`, reading the input in place.
/// Routed through the dispatched backend (single-stream, so only the
/// SHA-NI kernel beats the unrolled portable loop here).
pub(crate) fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % BLOCK_LEN, 0);
    nymix_obs::counter!("crypto.sha256.blocks", data.len() / BLOCK_LEN);
    #[cfg(all(feature = "simd-kernels", target_arch = "x86_64"))]
    if backend() == ShaBackend::ShaNi {
        shani::compress_blocks(state, data);
        return;
    }
    compress_blocks_portable(state, data);
}

/// Serializes a state into the big-endian digest byte order.
pub(crate) fn state_to_digest(state: &[u32; 8]) -> [u8; DIGEST_LEN] {
    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use nymix_crypto::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), nymix_crypto::sha256(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Resumes hashing from a captured compression state after
    /// `bytes_consumed` bytes (which must be block-aligned). This is how
    /// `HmacKey` replays its cached ipad/opad midstates.
    pub(crate) fn from_midstate(state: [u32; 8], bytes_consumed: u64) -> Self {
        debug_assert_eq!(bytes_consumed % BLOCK_LEN as u64, 0);
        Self {
            state,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: bytes_consumed,
        }
    }

    /// Absorbs `data` into the hash state. Full blocks are compressed
    /// directly from `data`; only a trailing partial block is staged.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                compress_block(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let full = input.len() - input.len() % BLOCK_LEN;
        if full > 0 {
            compress_blocks(&mut self.state, &input[..full]);
            input = &input[full..];
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Build the padding in one or two tail blocks directly rather
        // than dribbling pad bytes through `update`.
        let mut tail = [0u8; 2 * BLOCK_LEN];
        tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        tail[self.buf_len] = 0x80;
        let tail_len = if self.buf_len < 56 {
            BLOCK_LEN
        } else {
            2 * BLOCK_LEN
        };
        tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
        compress_blocks(&mut self.state, &tail[..tail_len]);
        state_to_digest(&self.state)
    }
}

/// Computes the SHA-256 digest of `data` in one shot.
///
/// # Examples
///
/// ```
/// let d = nymix_crypto::sha256(b"abc");
/// assert_eq!(d[0], 0xba);
/// ```
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

// ---------------------------------------------------------------------------
// 4-way interleaved multi-buffer kernel
// ---------------------------------------------------------------------------

/// Number of lanes in the interleaved kernel.
const LANES: usize = 4;

/// One round across all lanes; the compiler vectorizes the lane loop.
macro_rules! rnd4 {
    ($w:ident, $t:expr,
     $a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident) => {{
        for l in 0..LANES {
            let t1 = $h[l]
                .wrapping_add(
                    $e[l].rotate_right(6) ^ $e[l].rotate_right(11) ^ $e[l].rotate_right(25),
                )
                .wrapping_add(($e[l] & $f[l]) ^ (!$e[l] & $g[l]))
                .wrapping_add(K[$t].wrapping_add($w[$t & 15][l]));
            let t2 = ($a[l].rotate_right(2) ^ $a[l].rotate_right(13) ^ $a[l].rotate_right(22))
                .wrapping_add(($a[l] & $b[l]) ^ ($c[l] & ($a[l] ^ $b[l])));
            $d[l] = $d[l].wrapping_add(t1);
            $h[l] = t1.wrapping_add(t2);
        }
    }};
}

/// Advances one schedule word across all lanes.
macro_rules! sched4 {
    ($w:ident, $t:expr) => {{
        for l in 0..LANES {
            $w[$t & 15][l] = $w[$t & 15][l]
                .wrapping_add(sig0($w[($t + 1) & 15][l]))
                .wrapping_add($w[($t + 9) & 15][l])
                .wrapping_add(sig1($w[($t + 14) & 15][l]));
        }
    }};
}

/// Sixteen interleaved rounds starting at logical round `$off`, advancing
/// the schedule first when `$off >= 16`.
macro_rules! rnd16x4 {
    ($w:ident, $off:expr, sched,
     $a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident) => {{
        sched4!($w, $off);
        sched4!($w, $off + 1);
        sched4!($w, $off + 2);
        sched4!($w, $off + 3);
        sched4!($w, $off + 4);
        sched4!($w, $off + 5);
        sched4!($w, $off + 6);
        sched4!($w, $off + 7);
        sched4!($w, $off + 8);
        sched4!($w, $off + 9);
        sched4!($w, $off + 10);
        sched4!($w, $off + 11);
        sched4!($w, $off + 12);
        sched4!($w, $off + 13);
        sched4!($w, $off + 14);
        sched4!($w, $off + 15);
        rnd16x4!($w, $off, $a, $b, $c, $d, $e, $f, $g, $h);
    }};
    ($w:ident, $off:expr,
     $a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident) => {{
        rnd4!($w, $off, $a, $b, $c, $d, $e, $f, $g, $h);
        rnd4!($w, $off + 1, $h, $a, $b, $c, $d, $e, $f, $g);
        rnd4!($w, $off + 2, $g, $h, $a, $b, $c, $d, $e, $f);
        rnd4!($w, $off + 3, $f, $g, $h, $a, $b, $c, $d, $e);
        rnd4!($w, $off + 4, $e, $f, $g, $h, $a, $b, $c, $d);
        rnd4!($w, $off + 5, $d, $e, $f, $g, $h, $a, $b, $c);
        rnd4!($w, $off + 6, $c, $d, $e, $f, $g, $h, $a, $b);
        rnd4!($w, $off + 7, $b, $c, $d, $e, $f, $g, $h, $a);
        rnd4!($w, $off + 8, $a, $b, $c, $d, $e, $f, $g, $h);
        rnd4!($w, $off + 9, $h, $a, $b, $c, $d, $e, $f, $g);
        rnd4!($w, $off + 10, $g, $h, $a, $b, $c, $d, $e, $f);
        rnd4!($w, $off + 11, $f, $g, $h, $a, $b, $c, $d, $e);
        rnd4!($w, $off + 12, $e, $f, $g, $h, $a, $b, $c, $d);
        rnd4!($w, $off + 13, $d, $e, $f, $g, $h, $a, $b, $c);
        rnd4!($w, $off + 14, $c, $d, $e, $f, $g, $h, $a, $b);
        rnd4!($w, $off + 15, $b, $c, $d, $e, $f, $g, $h, $a);
    }};
}

/// Compresses one block per lane, routed to the dispatched backend.
/// Every four-lane entry point funnels through here.
fn compress4(states: &mut [[u32; 8]; LANES], blocks: [&[u8; BLOCK_LEN]; LANES]) {
    nymix_obs::counter!("crypto.sha256.blocks", LANES);
    match backend() {
        // The strictly-serial floor: each lane steps alone through the
        // single-stream kernel (what a non-batching port would do).
        ShaBackend::Scalar => {
            for (state, block) in states.iter_mut().zip(blocks) {
                compress_block(state, block);
            }
        }
        #[cfg(all(feature = "simd-kernels", target_arch = "x86_64"))]
        ShaBackend::Avx2 => avx2::compress4(states, blocks),
        #[cfg(all(feature = "simd-kernels", target_arch = "x86_64"))]
        ShaBackend::ShaNi => {
            // SHA-NI is a single-stream unit; lane-serial hardware
            // rounds still beat the interleaved software kernel.
            for (state, block) in states.iter_mut().zip(blocks) {
                shani::compress_blocks(state, &block[..]);
            }
        }
        _ => compress4_portable(states, blocks),
    }
}

/// The portable interleaved kernel: one block per lane, all four lanes
/// in lockstep. `inline(always)` so the cfg-gated AVX2 wrapper can
/// recompile this exact body inside a verified-AVX2 context.
#[inline(always)]
fn compress4_portable(states: &mut [[u32; 8]; LANES], blocks: [&[u8; BLOCK_LEN]; LANES]) {
    let mut w = [[0u32; LANES]; 16];
    for (t, lane_words) in w.iter_mut().enumerate() {
        for (l, block) in blocks.iter().enumerate() {
            lane_words[l] =
                u32::from_be_bytes(block[t * 4..t * 4 + 4].try_into().expect("4-byte word"));
        }
    }
    macro_rules! gather {
        ($i:expr) => {
            [states[0][$i], states[1][$i], states[2][$i], states[3][$i]]
        };
    }
    let mut a = gather!(0);
    let mut b = gather!(1);
    let mut c = gather!(2);
    let mut d = gather!(3);
    let mut e = gather!(4);
    let mut f = gather!(5);
    let mut g = gather!(6);
    let mut h = gather!(7);
    rnd16x4!(w, 0, a, b, c, d, e, f, g, h);
    rnd16x4!(w, 16, sched, a, b, c, d, e, f, g, h);
    rnd16x4!(w, 32, sched, a, b, c, d, e, f, g, h);
    rnd16x4!(w, 48, sched, a, b, c, d, e, f, g, h);
    for l in 0..LANES {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
        states[l][4] = states[l][4].wrapping_add(e[l]);
        states[l][5] = states[l][5].wrapping_add(f[l]);
        states[l][6] = states[l][6].wrapping_add(g[l]);
        states[l][7] = states[l][7].wrapping_add(h[l]);
    }
}

/// Copies bytes `start..start + dst.len()` of the logical stream
/// `prefix ‖ msg` into `dst`.
fn stream_copy(prefix: &[u8], msg: &[u8], start: usize, dst: &mut [u8]) {
    let n = dst.len();
    let mut copied = 0usize;
    if start < prefix.len() {
        let take = (prefix.len() - start).min(n);
        dst[..take].copy_from_slice(&prefix[start..start + take]);
        copied = take;
    }
    if copied < n {
        let o = start + copied - prefix.len();
        dst[copied..].copy_from_slice(&msg[o..o + (n - copied)]);
    }
}

/// Hashes four equal-length messages, each prepended with the same
/// `prefix`, in one interleaved pass: the digest of lane `l` equals
/// `sha256(prefix ‖ msgs[l])`.
///
/// The lanes advance in lockstep (identical lengths make the block and
/// padding structure identical), so the per-round lane loops compile to
/// SIMD across messages. Blocks that lie entirely inside a message are
/// read in place; only blocks straddling the prefix and the padded tail
/// are staged.
///
/// # Panics
///
/// Panics if the messages are not all the same length.
///
/// # Examples
///
/// ```
/// use nymix_crypto::{sha256, sha256_x4};
///
/// let msgs = [&b"aaaa"[..], b"bbbb", b"cccc", b"dddd"];
/// let digests = sha256_x4(b"tag:", msgs);
/// assert_eq!(digests[2], sha256(b"tag:cccc"));
/// ```
pub fn sha256_x4(prefix: &[u8], msgs: [&[u8]; LANES]) -> [[u8; DIGEST_LEN]; LANES] {
    let len = msgs[0].len();
    assert!(
        msgs.iter().all(|m| m.len() == len),
        "sha256_x4 requires equal-length messages"
    );
    let total = prefix.len() + len;
    let mut states = [H0; LANES];
    let mut stage = [[0u8; BLOCK_LEN]; LANES];
    for bi in 0..total / BLOCK_LEN {
        let start = bi * BLOCK_LEN;
        if start >= prefix.len() {
            let o = start - prefix.len();
            let block = |l: usize| -> &[u8; BLOCK_LEN] {
                msgs[l][o..o + BLOCK_LEN].try_into().expect("full block")
            };
            compress4(&mut states, [block(0), block(1), block(2), block(3)]);
        } else {
            for (l, buf) in stage.iter_mut().enumerate() {
                stream_copy(prefix, msgs[l], start, buf);
            }
            compress4(&mut states, [&stage[0], &stage[1], &stage[2], &stage[3]]);
        }
    }
    // Padded tail: same shape in every lane.
    let rem = total % BLOCK_LEN;
    let bit_len = (total as u64).wrapping_mul(8);
    let tail_len = if rem < 56 { BLOCK_LEN } else { 2 * BLOCK_LEN };
    let mut tail = [[0u8; 2 * BLOCK_LEN]; LANES];
    for (l, buf) in tail.iter_mut().enumerate() {
        stream_copy(prefix, msgs[l], total - rem, &mut buf[..rem]);
        buf[rem] = 0x80;
        buf[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    }
    for tb in 0..tail_len / BLOCK_LEN {
        let block = |l: usize| -> &[u8; BLOCK_LEN] {
            tail[l][tb * BLOCK_LEN..(tb + 1) * BLOCK_LEN]
                .try_into()
                .expect("full block")
        };
        compress4(&mut states, [block(0), block(1), block(2), block(3)]);
    }
    [
        state_to_digest(&states[0]),
        state_to_digest(&states[1]),
        state_to_digest(&states[2]),
        state_to_digest(&states[3]),
    ]
}

// ---------------------------------------------------------------------------
// Runtime backend dispatch
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd-kernels", target_arch = "x86_64"))]
mod avx2;
#[cfg(all(feature = "simd-kernels", target_arch = "x86_64"))]
mod shani;

use core::sync::atomic::{AtomicU8, Ordering};

/// The SHA-256 compression kernel a process dispatches to (see the
/// [module docs](self#runtime-backend-dispatch) for the selection
/// order). Discriminants are stable: they are what the
/// `crypto.sha256.backend` gauge exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShaBackend {
    /// Strictly serial portable kernel: every lane of a four-lane
    /// batch steps alone. The reference floor every other backend is
    /// proptested bit-identical against.
    Scalar = 1,
    /// Portable four-lane interleaved kernel ([`sha256_x4`]) for
    /// batches, unrolled scalar for single streams. The default on
    /// targets without verified CPU features — always available.
    X4 = 2,
    /// The interleaved kernel recompiled in a CPUID-verified AVX2
    /// context, so cross-lane vectorization no longer depends on
    /// build-wide codegen flags. Requires the `simd-kernels` feature.
    Avx2 = 3,
    /// Hardware SHA extensions (single-stream `sha256rnds2` rounds);
    /// batches run lane-serial through the hardware unit. Requires the
    /// `simd-kernels` feature.
    ShaNi = 4,
}

impl ShaBackend {
    /// Stable lower-case name, as accepted by `NYMIX_SHA_BACKEND`.
    pub fn name(self) -> &'static str {
        match self {
            ShaBackend::Scalar => "scalar",
            ShaBackend::X4 => "x4",
            ShaBackend::Avx2 => "avx2",
            ShaBackend::ShaNi => "shani",
        }
    }

    /// Numeric id exported as the `crypto.sha256.backend` gauge.
    pub fn id(self) -> usize {
        self as u8 as usize
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "scalar" => Some(ShaBackend::Scalar),
            "x4" => Some(ShaBackend::X4),
            "avx2" => Some(ShaBackend::Avx2),
            "shani" => Some(ShaBackend::ShaNi),
            _ => None,
        }
    }
}

/// 0 = not yet selected; otherwise a `ShaBackend` discriminant.
static BACKEND: AtomicU8 = AtomicU8::new(0);

/// True when this build *and* this CPU can run `b`.
fn backend_supported(b: ShaBackend) -> bool {
    match b {
        ShaBackend::Scalar | ShaBackend::X4 => true,
        #[cfg(all(feature = "simd-kernels", target_arch = "x86_64"))]
        ShaBackend::Avx2 => std::is_x86_feature_detected!("avx2"),
        #[cfg(all(feature = "simd-kernels", target_arch = "x86_64"))]
        ShaBackend::ShaNi => {
            std::is_x86_feature_detected!("sha")
                && std::is_x86_feature_detected!("ssse3")
                && std::is_x86_feature_detected!("sse4.1")
        }
        #[cfg(not(all(feature = "simd-kernels", target_arch = "x86_64")))]
        ShaBackend::Avx2 | ShaBackend::ShaNi => false,
    }
}

/// Best kernel CPUID says this machine can run.
fn detect_backend() -> ShaBackend {
    if backend_supported(ShaBackend::ShaNi) {
        ShaBackend::ShaNi
    } else if backend_supported(ShaBackend::Avx2) {
        ShaBackend::Avx2
    } else {
        ShaBackend::X4
    }
}

/// One-time selection: env override first, then CPUID.
fn select_backend() -> ShaBackend {
    match std::env::var("NYMIX_SHA_BACKEND") {
        Ok(name) => match ShaBackend::from_name(name.trim()) {
            // An override naming a kernel this build or CPU cannot run
            // falls back to the portable floor — it must never
            // silently upgrade to a different accelerated path.
            Some(b) if backend_supported(b) => b,
            _ => ShaBackend::X4,
        },
        Err(_) => detect_backend(),
    }
}

#[inline]
fn backend() -> ShaBackend {
    match BACKEND.load(Ordering::Relaxed) {
        1 => ShaBackend::Scalar,
        2 => ShaBackend::X4,
        3 => ShaBackend::Avx2,
        4 => ShaBackend::ShaNi,
        _ => {
            let b = select_backend();
            BACKEND.store(b as u8, Ordering::Relaxed);
            b
        }
    }
}

/// The kernel this process dispatches SHA-256 to, selecting it (env
/// override, then CPUID) on first call. Also exports the selection as
/// the `crypto.sha256.backend` gauge so bench-smoke snapshots record
/// which kernel produced the numbers.
pub fn sha256_backend() -> ShaBackend {
    let b = backend();
    nymix_obs::gauge!("crypto.sha256.backend", b.id());
    b
}

/// Forces the dispatched backend (testing hook — the equivalence suite
/// uses it to pin every kernel bit-identical). Requests this build or
/// CPU cannot run install the portable [`ShaBackend::X4`] floor;
/// returns the backend actually installed.
pub fn set_sha_backend(requested: ShaBackend) -> ShaBackend {
    let b = if backend_supported(requested) {
        requested
    } else {
        ShaBackend::X4
    };
    BACKEND.store(b as u8, Ordering::Relaxed);
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn four_block_vector() {
        // FIPS 180-4 / NIST CAVP long-message vector (896 bits).
        assert_eq!(
            hex(&sha256(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                  hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_splits() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let want = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the 55/56/64-byte padding boundaries must all work.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xa5u8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(core::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), sha256(&data), "len {len}");
        }
    }

    #[test]
    fn multi_block_fast_path_matches_buffered() {
        // Feed the same 1000 bytes as one aligned slab, as misaligned
        // chunks, and byte-at-a-time; all must agree.
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        let want = sha256(&data);
        for chunk in [1usize, 7, 63, 64, 65, 128, 130, 999] {
            let mut h = Sha256::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), want, "chunk {chunk}");
        }
    }

    #[test]
    fn x4_matches_scalar() {
        for len in [0usize, 1, 31, 32, 55, 56, 63, 64, 65, 127, 128, 300] {
            for prefix in [&b""[..], b"\x00", b"tag:", &[0x55u8; 70]] {
                let msgs: Vec<Vec<u8>> = (0..4u8).map(|l| vec![l ^ 0xa5; len]).collect();
                let got = sha256_x4(prefix, [&msgs[0], &msgs[1], &msgs[2], &msgs[3]]);
                for l in 0..4 {
                    let mut h = Sha256::new();
                    h.update(prefix);
                    h.update(&msgs[l]);
                    assert_eq!(got[l], h.finalize(), "len {len} lane {l}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn x4_rejects_ragged_lanes() {
        let _ = sha256_x4(b"", [b"a", b"b", b"c", b"dd"]);
    }

    /// One test (not several) because the backend selector is process-
    /// global: a single test owning every `set_sha_backend` call keeps
    /// the suite race-free. Output equality across backends means the
    /// concurrent read-only tests cannot observe a difference anyway.
    #[test]
    fn backend_dispatch_and_equivalence() {
        let prev = sha256_backend();

        // Reference digests under the strictly-serial floor, at lengths
        // straddling every padding/block boundary.
        let data: Vec<u8> = (0u8..=255).cycle().take(2000).collect();
        let lens = [0usize, 1, 31, 55, 56, 63, 64, 65, 127, 128, 129, 1000, 2000];
        assert_eq!(set_sha_backend(ShaBackend::Scalar), ShaBackend::Scalar);
        let want: Vec<_> = lens.iter().map(|&n| sha256(&data[..n])).collect();
        let want_x4: Vec<_> = lens
            .iter()
            .map(|&n| sha256_x4(b"tag:", [&data[..n], &data[..n], &data[..n], &data[..n]]))
            .collect();

        let all = [
            ShaBackend::Scalar,
            ShaBackend::X4,
            ShaBackend::Avx2,
            ShaBackend::ShaNi,
        ];
        for requested in all {
            let installed = set_sha_backend(requested);
            // Unsupported requests must land on the portable floor,
            // never a different accelerated kernel.
            assert!(
                installed == requested || installed == ShaBackend::X4,
                "requested {} installed {}",
                requested.name(),
                installed.name()
            );
            assert_eq!(sha256_backend(), installed);

            // FIPS vector, one-shot, split-point invariance, and the
            // four-lane kernel: all bit-identical to the scalar floor.
            assert_eq!(
                hex(&sha256(b"abc")),
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
                "backend {}",
                installed.name()
            );
            for (i, &n) in lens.iter().enumerate() {
                assert_eq!(
                    sha256(&data[..n]),
                    want[i],
                    "backend {} len {n}",
                    installed.name()
                );
                let mut h = Sha256::new();
                h.update(&data[..n / 2]);
                h.update(&data[n / 2..n]);
                assert_eq!(
                    h.finalize(),
                    want[i],
                    "backend {} split {n}",
                    installed.name()
                );
                assert_eq!(
                    sha256_x4(b"tag:", [&data[..n], &data[..n], &data[..n], &data[..n]]),
                    want_x4[i],
                    "backend {} x4 {n}",
                    installed.name()
                );
            }
        }

        // On a simd-kernels x86_64 build the accelerated requests must
        // actually install when the CPU advertises the features.
        #[cfg(all(feature = "simd-kernels", target_arch = "x86_64"))]
        {
            if std::is_x86_feature_detected!("avx2") {
                assert_eq!(set_sha_backend(ShaBackend::Avx2), ShaBackend::Avx2);
            }
            if std::is_x86_feature_detected!("sha") {
                assert_eq!(set_sha_backend(ShaBackend::ShaNi), ShaBackend::ShaNi);
            }
        }
        #[cfg(not(all(feature = "simd-kernels", target_arch = "x86_64")))]
        {
            assert_eq!(set_sha_backend(ShaBackend::Avx2), ShaBackend::X4);
            assert_eq!(set_sha_backend(ShaBackend::ShaNi), ShaBackend::X4);
        }

        set_sha_backend(prev);
    }
}
