//! RFC 5869 HKDF-SHA256.
//!
//! Nymix derives all per-purpose keys from a nym's master secret with
//! HKDF: the archive encryption key, the deterministic entry-guard seed
//! (§3.5 "Security Tradeoffs"), and per-pair DC-net seeds, each separated
//! by an `info` label so that no key is ever reused across purposes.

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: derives a pseudorandom key from input keying material.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `len` bytes of output keying material.
///
/// # Panics
///
/// Panics if `len > 255 * 32`, the RFC 5869 limit.
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output length limit exceeded");
    let mut out = Vec::with_capacity(len);
    let mut prev: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = prev.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block[..take]);
        prev = block.to_vec();
        counter = counter.wrapping_add(1);
    }
    out
}

/// One-shot extract-then-expand.
///
/// # Examples
///
/// ```
/// let key = nymix_crypto::hkdf::derive(b"salt", b"master", b"nymix/archive", 32);
/// assert_eq!(key.len(), 32);
/// ```
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

/// Derives a fixed 32-byte key, convenient for cipher keys.
pub fn derive_key32(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 32] {
    let v = derive(salt, ikm, info, 32);
    let mut out = [0u8; 32];
    out.copy_from_slice(&v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case3_empty_salt_info() {
        let ikm = [0x0bu8; 22];
        let prk = hkdf_extract(&[], &ikm);
        let okm = hkdf_expand(&prk, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn info_separates_keys() {
        let a = derive_key32(b"s", b"master", b"purpose-a");
        let b = derive_key32(b"s", b"master", b"purpose-b");
        assert_ne!(a, b);
    }

    #[test]
    fn expand_prefix_property() {
        // A shorter expansion is a prefix of a longer one.
        let prk = hkdf_extract(b"salt", b"ikm");
        let short = hkdf_expand(&prk, b"info", 20);
        let long = hkdf_expand(&prk, b"info", 100);
        assert_eq!(short, long[..20]);
    }

    #[test]
    #[should_panic(expected = "HKDF output length limit")]
    fn expand_limit_enforced() {
        let prk = [0u8; 32];
        let _ = hkdf_expand(&prk, b"", 255 * 32 + 1);
    }
}
