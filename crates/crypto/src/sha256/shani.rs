//! SHA-NI kernel: FIPS 180-4 compression on the x86 SHA extensions
//! (`sha256rnds2` / `sha256msg1` / `sha256msg2`).
//!
//! Compiled only under the `simd-kernels` feature on `x86_64`, and
//! reached only through [`super::backend`] dispatch after a CPUID
//! check. This file (with its AVX2 sibling) is the workspace's only
//! unsafe code; `nymix-lint` carries it as a registered, reasoned
//! `unsafe-kernel` exemption — the entry point below stays sound on
//! its own by re-verifying the CPU features and falling back to the
//! portable loop, so a bypassed dispatcher degrades instead of
//! hitting undefined behavior.
//!
//! The round structure is the canonical SHA-NI formulation: the state
//! rides in two XMM registers packed `ABEF`/`CDGH`, each
//! `sha256rnds2` retires two rounds (four per K-group), and the
//! message schedule advances through `sha256msg1`/`sha256msg2` plus
//! one `palignr` add, four words at a time.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::{
    __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128, _mm_set_epi64x,
    _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32, _mm_shuffle_epi32,
    _mm_shuffle_epi8, _mm_storeu_si128,
};

use super::{BLOCK_LEN, K};

/// Safe entry point: verifies the CPU features the intrinsics need and
/// falls back to the portable kernel when any is absent.
pub(super) fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % BLOCK_LEN, 0);
    if std::is_x86_feature_detected!("sha")
        && std::is_x86_feature_detected!("ssse3")
        && std::is_x86_feature_detected!("sse4.1")
    {
        // SAFETY: the target features `compress_blocks_shani` enables
        // were all verified present on this CPU just above.
        unsafe { compress_blocks_shani(state, data) }
    } else {
        super::compress_blocks_portable(state, data);
    }
}

#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn compress_blocks_shani(state: &mut [u32; 8], data: &[u8]) {
    // SAFETY: all intrinsics used here require only the features this
    // function enables; the unaligned load/store intrinsics carry no
    // alignment requirement, and every pointer stays inside `state`,
    // `K`, or a full 64-byte block of `data`.
    unsafe {
        // Big-endian word loads via one byte shuffle per 16 bytes.
        let swap = _mm_set_epi64x(0x0c0d0e0f_08090a0bu64 as i64, 0x04050607_00010203u64 as i64);

        // Repack the a..h state into the ABEF/CDGH register layout the
        // rnds2 instruction consumes.
        let dcba = _mm_loadu_si128(state.as_ptr().cast::<__m128i>());
        let hgfe = _mm_loadu_si128(state.as_ptr().add(4).cast::<__m128i>());
        let cdab = _mm_shuffle_epi32::<0xB1>(dcba);
        let efgh = _mm_shuffle_epi32::<0x1B>(hgfe);
        let mut abef = _mm_alignr_epi8::<8>(cdab, efgh);
        let mut cdgh = _mm_blend_epi16::<0xF0>(efgh, cdab);

        for block in data.chunks_exact(BLOCK_LEN) {
            let abef_save = abef;
            let cdgh_save = cdgh;

            // The current 16-word schedule window, four words per
            // register; `msgs[i & 3]` is logical word group `i`.
            let mut msgs = [
                _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast::<__m128i>()), swap),
                _mm_shuffle_epi8(
                    _mm_loadu_si128(block.as_ptr().add(16).cast::<__m128i>()),
                    swap,
                ),
                _mm_shuffle_epi8(
                    _mm_loadu_si128(block.as_ptr().add(32).cast::<__m128i>()),
                    swap,
                ),
                _mm_shuffle_epi8(
                    _mm_loadu_si128(block.as_ptr().add(48).cast::<__m128i>()),
                    swap,
                ),
            ];

            for group in 0..16usize {
                let k = _mm_loadu_si128(K.as_ptr().add(4 * group).cast::<__m128i>());
                let wk = _mm_add_epi32(msgs[group & 3], k);
                cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
                let wk_hi = _mm_shuffle_epi32::<0x0E>(wk);
                abef = _mm_sha256rnds2_epu32(abef, cdgh, wk_hi);
                if group < 12 {
                    // w[g+4] = msg2(msg1(w[g], w[g+1]) + alignr(w[g+3], w[g+2], 4), w[g+3])
                    let shifted =
                        _mm_alignr_epi8::<4>(msgs[(group + 3) & 3], msgs[(group + 2) & 3]);
                    let partial = _mm_sha256msg1_epu32(msgs[group & 3], msgs[(group + 1) & 3]);
                    msgs[group & 3] = _mm_sha256msg2_epu32(
                        _mm_add_epi32(partial, shifted),
                        msgs[(group + 3) & 3],
                    );
                }
            }

            abef = _mm_add_epi32(abef, abef_save);
            cdgh = _mm_add_epi32(cdgh, cdgh_save);
        }

        // Unpack ABEF/CDGH back to the a..h word order.
        let feba = _mm_shuffle_epi32::<0x1B>(abef);
        let dchg = _mm_shuffle_epi32::<0xB1>(cdgh);
        let dcba = _mm_blend_epi16::<0xF0>(feba, dchg);
        let hgfe = _mm_alignr_epi8::<8>(dchg, feba);
        _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), dcba);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast::<__m128i>(), hgfe);
    }
}
