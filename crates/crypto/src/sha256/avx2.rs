//! AVX2 kernel: the portable four-lane interleaved compression body
//! recompiled inside a `#[target_feature(enable = "avx2")]` context.
//!
//! The portable kernel's cross-lane loops vectorize beautifully — but
//! only when the build's codegen target says AVX2 exists, which is
//! exactly the `-C target-cpu=native` fragility this dispatch layer
//! removes. Marking the wrapper `target_feature(avx2)` and inlining
//! [`super::compress4_portable`] (`inline(always)`) into it guarantees
//! LLVM vectorizes with AVX2 regardless of build-wide flags, while
//! the CPUID check keeps the binary runnable everywhere.
//!
//! Compiled only under the `simd-kernels` feature on `x86_64`, and
//! carried by `nymix-lint` as a registered `unsafe-kernel` exemption
//! (with its SHA-NI sibling, the workspace's only unsafe code). The
//! entry point stays sound on its own: it re-verifies AVX2 and falls
//! back to the portable kernel, so a bypassed dispatcher degrades
//! instead of hitting undefined behavior.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use super::{BLOCK_LEN, LANES};

/// Safe entry point: verifies AVX2 and falls back to the portable
/// kernel when absent.
pub(super) fn compress4(states: &mut [[u32; 8]; LANES], blocks: [&[u8; BLOCK_LEN]; LANES]) {
    if std::is_x86_feature_detected!("avx2") {
        // SAFETY: the only target feature `compress4_avx2` enables was
        // verified present on this CPU just above.
        unsafe { compress4_avx2(states, blocks) }
    } else {
        super::compress4_portable(states, blocks);
    }
}

/// The portable body in an AVX2 codegen context; no intrinsics — the
/// vectorization is the compiler's, just with the ISA guaranteed.
#[target_feature(enable = "avx2")]
unsafe fn compress4_avx2(states: &mut [[u32; 8]; LANES], blocks: [&[u8; BLOCK_LEN]; LANES]) {
    super::compress4_portable(states, blocks);
}
