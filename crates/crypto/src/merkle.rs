//! Binary Merkle hash tree over fixed-size disk blocks.
//!
//! §3.4 of the paper: Nymix must guarantee that the read-only host OS
//! partition shared by every AnonVM/CommVM was never modified — a single
//! flipped block would make every subsequently created VM trackable. The
//! proposed (there unimplemented) mechanism checks "all disk blocks loaded
//! from the host OS partition ... against a well-known Merkle tree as they
//! are accessed, and safely shut\[s\] down ... if a modified block is
//! detected". This module implements that tree; `nymix-fs` wires it into
//! the base-image read path.
//!
//! Tree construction is built on the interleaved multi-buffer SHA-256
//! kernel ([`sha256_x4`]): runs of four equal-length blocks hash in one
//! lockstep pass (disk blocks are uniform, so in practice every leaf
//! group batches), and interior levels — whose inputs are always exactly
//! two 32-byte child hashes — batch four parents at a time. All levels
//! live in one flat node array instead of per-level allocations.

use crate::sha256::{sha256_x4, Sha256, DIGEST_LEN};

/// A 32-byte node hash.
pub type Hash = [u8; DIGEST_LEN];

/// Domain-separation prefixes so a leaf can never be confused with an
/// interior node (second-preimage hardening).
const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;

fn leaf_hash(block: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    h.update(block);
    h.finalize()
}

fn node_hash(left: &Hash, right: &Hash) -> Hash {
    let mut h = Sha256::new();
    h.update(&[NODE_TAG]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// Hashes one leaf supplied as scattered parts, without materializing
/// the concatenation. `leaf_hash_parts(&[a, b])` equals the leaf hash
/// [`MerkleTree::build`] computes over the contiguous block `a ‖ b`, so
/// callers whose leaves are framed records (length prefix + name +
/// payload) can hash them with zero copies.
pub fn leaf_hash_parts(parts: &[&[u8]]) -> Hash {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    for part in parts {
        h.update(part);
    }
    h.finalize()
}

/// Computes the root over an already-hashed leaf level, folding the
/// scratch vector in place level by level — four parent nodes per
/// [`sha256_x4`] pass, no per-level allocations. Commits to exactly the
/// same root as [`MerkleTree::build`] over the corresponding blocks
/// (odd nodes promote unchanged; the empty set commits to the stable
/// empty-tree root).
///
/// The caller's vector is consumed as working memory: reusing one
/// buffer across calls makes repeated root computations (the delta-
/// snapshot save path) allocation-free.
pub fn merkle_root_from_leaves(leaves: &mut Vec<Hash>) -> Hash {
    let Some(&first) = leaves.first() else {
        return leaf_hash(b"nymix:empty-merkle-tree");
    };
    if leaves.len() == 1 {
        return first;
    }
    let mut width = leaves.len();
    while width > 1 {
        let pairs = width / 2;
        let mut p = 0usize;
        let mut stage = [[0u8; 2 * DIGEST_LEN]; 4];
        while p + 4 <= pairs {
            for (l, buf) in stage.iter_mut().enumerate() {
                buf[..DIGEST_LEN].copy_from_slice(&leaves[2 * (p + l)]);
                buf[DIGEST_LEN..].copy_from_slice(&leaves[2 * (p + l) + 1]);
            }
            let parents = sha256_x4(&[NODE_TAG], [&stage[0], &stage[1], &stage[2], &stage[3]]);
            leaves[p..p + 4].copy_from_slice(&parents);
            p += 4;
        }
        while p < pairs {
            leaves[p] = node_hash(&leaves[2 * p], &leaves[2 * p + 1]);
            p += 1;
        }
        if width % 2 == 1 {
            // Promote the odd node unchanged.
            leaves[pairs] = leaves[width - 1];
        }
        width = width.div_ceil(2);
    }
    leaves[0]
}

/// A Merkle tree committed over an ordered sequence of blocks.
///
/// Levels are stored bottom-up, concatenated in one flat node array with
/// a start offset per level; an odd node at any level is promoted
/// unchanged (Bitcoin-style duplication is avoided, which cannot
/// introduce ambiguity because the block count is part of the committed
/// header).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// Every level's nodes, bottom-up: leaves first, root last.
    nodes: Vec<Hash>,
    /// Start index of each level within `nodes`.
    level_starts: Vec<usize>,
    block_count: usize,
}

impl MerkleTree {
    /// Builds a tree over `blocks`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nymix_crypto::MerkleTree;
    ///
    /// let blocks: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 16]).collect();
    /// let tree = MerkleTree::build(blocks.iter().map(|b| b.as_slice()));
    /// let proof = tree.prove(2).unwrap();
    /// assert!(MerkleTree::verify(&tree.root(), 2, &blocks[2], &proof, 4));
    /// ```
    pub fn build<'a, I>(blocks: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let blocks: Vec<&[u8]> = blocks.into_iter().collect();
        let block_count = blocks.len();
        // A tree over n leaves has at most 2n nodes (plus promotions).
        let mut nodes: Vec<Hash> = Vec::with_capacity(2 * block_count + 2);

        // Leaves: batch runs of four equal-length blocks through the
        // interleaved kernel; ragged runs fall back to scalar hashing.
        let mut i = 0;
        while i < block_count {
            if i + 4 <= block_count
                && blocks[i + 1..i + 4]
                    .iter()
                    .all(|b| b.len() == blocks[i].len())
            {
                nodes.extend_from_slice(&sha256_x4(
                    &[LEAF_TAG],
                    [blocks[i], blocks[i + 1], blocks[i + 2], blocks[i + 3]],
                ));
                i += 4;
            } else {
                nodes.push(leaf_hash(blocks[i]));
                i += 1;
            }
        }

        // Interior levels: pair inputs are 64 bytes of adjacent child
        // hashes, staged four pairs at a time for the lockstep kernel.
        let mut level_starts = vec![0usize];
        let mut start = 0usize;
        let mut width = block_count;
        while width > 1 {
            let next_start = nodes.len();
            let pairs = width / 2;
            let mut p = 0usize;
            let mut stage = [[0u8; 2 * DIGEST_LEN]; 4];
            while p + 4 <= pairs {
                for (l, buf) in stage.iter_mut().enumerate() {
                    let child = start + 2 * (p + l);
                    buf[..DIGEST_LEN].copy_from_slice(&nodes[child]);
                    buf[DIGEST_LEN..].copy_from_slice(&nodes[child + 1]);
                }
                nodes.extend_from_slice(&sha256_x4(
                    &[NODE_TAG],
                    [&stage[0], &stage[1], &stage[2], &stage[3]],
                ));
                p += 4;
            }
            while p < pairs {
                let child = start + 2 * p;
                let h = node_hash(&nodes[child], &nodes[child + 1]);
                nodes.push(h);
                p += 1;
            }
            if width % 2 == 1 {
                // Promote the odd node unchanged.
                let last = nodes[start + width - 1];
                nodes.push(last);
            }
            level_starts.push(next_start);
            start = next_start;
            width = width.div_ceil(2);
        }
        Self {
            nodes,
            level_starts,
            block_count,
        }
    }

    /// Number of committed blocks.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// The nodes of level `index` (0 = leaves).
    fn level(&self, index: usize) -> &[Hash] {
        let start = self.level_starts[index];
        let end = self
            .level_starts
            .get(index + 1)
            .copied()
            .unwrap_or(self.nodes.len());
        &self.nodes[start..end]
    }

    /// The root commitment. An empty tree commits to the hash of the
    /// empty leaf set (all-zero is avoided to keep roots unambiguous).
    pub fn root(&self) -> Hash {
        match self.nodes.last() {
            Some(root) => *root,
            None => leaf_hash(b"nymix:empty-merkle-tree"),
        }
    }

    /// Produces the sibling path proving block `index`.
    ///
    /// Each element is `(sibling_hash, sibling_is_left)`.
    pub fn prove(&self, index: usize) -> Option<Vec<(Hash, bool)>> {
        if index >= self.block_count {
            return None;
        }
        let mut proof = Vec::new();
        let mut pos = index;
        for li in 0..self.level_starts.len().saturating_sub(1) {
            let level = self.level(li);
            let sibling = pos ^ 1;
            if sibling < level.len() {
                proof.push((level[sibling], sibling < pos));
            }
            pos /= 2;
        }
        Some(proof)
    }

    /// Verifies that `block` is the `index`-th of `block_count` blocks
    /// under `root`.
    pub fn verify(
        root: &Hash,
        index: usize,
        block: &[u8],
        proof: &[(Hash, bool)],
        block_count: usize,
    ) -> bool {
        if index >= block_count {
            return false;
        }
        let mut acc = leaf_hash(block);
        let mut pos = index;
        let mut width = block_count;
        let mut proof_iter = proof.iter();
        while width > 1 {
            let has_sibling = (pos ^ 1) < width;
            if has_sibling {
                let Some((sibling, sibling_is_left)) = proof_iter.next() else {
                    return false;
                };
                // The proof's claimed orientation must match the index.
                if *sibling_is_left != (pos % 2 == 1) {
                    return false;
                }
                acc = if *sibling_is_left {
                    node_hash(sibling, &acc)
                } else {
                    node_hash(&acc, sibling)
                };
            }
            pos /= 2;
            width = width.div_ceil(2);
        }
        proof_iter.next().is_none() && crate::ct::eq(&acc, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("block-{i}").into_bytes()).collect()
    }

    fn build(n: usize) -> (MerkleTree, Vec<Vec<u8>>) {
        let b = blocks(n);
        let t = MerkleTree::build(b.iter().map(|x| x.as_slice()));
        (t, b)
    }

    /// Reference build: scalar hashing, per-level vectors, as the seed
    /// implemented it. The batched build must commit to the same root.
    fn reference_root(blocks: &[Vec<u8>]) -> Hash {
        let mut level: Vec<Hash> = blocks.iter().map(|b| leaf_hash(b)).collect();
        if level.is_empty() {
            return leaf_hash(b"nymix:empty-merkle-tree");
        }
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        node_hash(&pair[0], &pair[1])
                    } else {
                        pair[0]
                    }
                })
                .collect();
        }
        level[0]
    }

    #[test]
    fn all_proofs_verify_for_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 31] {
            let (tree, data) = build(n);
            for (i, block) in data.iter().enumerate() {
                let proof = tree.prove(i).expect("in range");
                assert!(
                    MerkleTree::verify(&tree.root(), i, block, &proof, n),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn batched_build_matches_scalar_reference() {
        // Equal-length blocks (the x4 fast path) and ragged lengths (the
        // scalar fallback) must both agree with the reference build.
        for n in 0usize..=33 {
            let uniform: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 64]).collect();
            let tree = MerkleTree::build(uniform.iter().map(|b| b.as_slice()));
            assert_eq!(tree.root(), reference_root(&uniform), "uniform n={n}");

            let ragged: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 1 + (i % 7)]).collect();
            let tree = MerkleTree::build(ragged.iter().map(|b| b.as_slice()));
            assert_eq!(tree.root(), reference_root(&ragged), "ragged n={n}");
        }
    }

    #[test]
    fn root_from_leaves_matches_full_build() {
        for n in 0usize..=33 {
            let data = blocks(n);
            let tree = MerkleTree::build(data.iter().map(|b| b.as_slice()));
            let mut leaves: Vec<Hash> = data.iter().map(|b| leaf_hash(b)).collect();
            assert_eq!(merkle_root_from_leaves(&mut leaves), tree.root(), "n={n}");
        }
    }

    #[test]
    fn leaf_hash_parts_matches_contiguous() {
        let whole = b"record-name\x00payload bytes";
        assert_eq!(
            leaf_hash_parts(&[b"record-name", b"\x00", b"payload bytes"]),
            leaf_hash(whole)
        );
        assert_eq!(leaf_hash_parts(&[]), leaf_hash(b""));
        // Moving a boundary must change the hash (framing matters to
        // callers, so parts are hashed exactly as concatenation).
        assert_ne!(
            leaf_hash_parts(&[b"ab", b"c"]),
            leaf_hash_parts(&[b"a", b"b!c"])
        );
    }

    #[test]
    fn modified_block_rejected() {
        let (tree, data) = build(8);
        let proof = tree.prove(3).unwrap();
        let mut tampered = data[3].clone();
        tampered[0] ^= 0x80;
        assert!(!MerkleTree::verify(&tree.root(), 3, &tampered, &proof, 8));
    }

    #[test]
    fn wrong_index_rejected() {
        let (tree, data) = build(8);
        let proof = tree.prove(3).unwrap();
        assert!(!MerkleTree::verify(&tree.root(), 4, &data[3], &proof, 8));
    }

    #[test]
    fn truncated_proof_rejected() {
        let (tree, data) = build(8);
        let mut proof = tree.prove(3).unwrap();
        proof.pop();
        assert!(!MerkleTree::verify(&tree.root(), 3, &data[3], &proof, 8));
    }

    #[test]
    fn extended_proof_rejected() {
        let (tree, data) = build(8);
        let mut proof = tree.prove(3).unwrap();
        proof.push(([0u8; 32], false));
        assert!(!MerkleTree::verify(&tree.root(), 3, &data[3], &proof, 8));
    }

    #[test]
    fn leaf_cannot_impersonate_node() {
        // Hash of (left||right) as a *leaf* must not equal the parent node.
        let (tree, data) = build(2);
        let l = leaf_hash(&data[0]);
        let r = leaf_hash(&data[1]);
        let mut fake = Vec::new();
        fake.extend_from_slice(&l);
        fake.extend_from_slice(&r);
        assert_ne!(leaf_hash(&fake), tree.root());
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let (tree, _) = build(4);
        assert!(tree.prove(4).is_none());
    }

    #[test]
    fn empty_tree_has_stable_root() {
        let t1 = MerkleTree::build(core::iter::empty());
        let t2 = MerkleTree::build(core::iter::empty());
        assert_eq!(t1.root(), t2.root());
        assert_eq!(t1.block_count(), 0);
    }

    #[test]
    fn roots_differ_on_any_block_change() {
        let (t1, _) = build(5);
        let mut data = blocks(5);
        data[4][0] ^= 1;
        let t2 = MerkleTree::build(data.iter().map(|x| x.as_slice()));
        assert_ne!(t1.root(), t2.root());
    }
}
