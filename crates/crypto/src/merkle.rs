//! Binary Merkle hash tree over fixed-size disk blocks.
//!
//! §3.4 of the paper: Nymix must guarantee that the read-only host OS
//! partition shared by every AnonVM/CommVM was never modified — a single
//! flipped block would make every subsequently created VM trackable. The
//! proposed (there unimplemented) mechanism checks "all disk blocks loaded
//! from the host OS partition ... against a well-known Merkle tree as they
//! are accessed, and safely shut\[s\] down ... if a modified block is
//! detected". This module implements that tree; `nymix-fs` wires it into
//! the base-image read path.
//!
//! Tree construction is built on the interleaved multi-buffer SHA-256
//! kernel ([`sha256_x4`]): runs of four equal-length blocks hash in one
//! lockstep pass (disk blocks are uniform, so in practice every leaf
//! group batches), and interior levels — whose inputs are always exactly
//! two 32-byte child hashes — batch four parents at a time. All levels
//! live in one flat node array instead of per-level allocations.

use crate::sha256::{sha256_x4, Sha256, DIGEST_LEN};

/// A 32-byte node hash.
pub type Hash = [u8; DIGEST_LEN];

/// Domain-separation prefixes so a leaf can never be confused with an
/// interior node (second-preimage hardening).
const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;

fn leaf_hash(block: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    h.update(block);
    h.finalize()
}

fn node_hash(left: &Hash, right: &Hash) -> Hash {
    let mut h = Sha256::new();
    h.update(&[NODE_TAG]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// Hashes one leaf supplied as scattered parts, without materializing
/// the concatenation. `leaf_hash_parts(&[a, b])` equals the leaf hash
/// [`MerkleTree::build`] computes over the contiguous block `a ‖ b`, so
/// callers whose leaves are framed records (length prefix + name +
/// payload) can hash them with zero copies.
pub fn leaf_hash_parts(parts: &[&[u8]]) -> Hash {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    for part in parts {
        h.update(part);
    }
    h.finalize()
}

/// Computes the root over an already-hashed leaf level, folding the
/// scratch slice in place level by level — four parent nodes per
/// [`sha256_x4`] pass, no per-level allocations. Commits to exactly the
/// same root as [`MerkleTree::build`] over the corresponding blocks
/// (odd nodes promote unchanged; the empty set commits to the stable
/// empty-tree root).
///
/// The caller's buffer is consumed as working memory: reusing one
/// buffer across calls makes repeated root computations (the delta-
/// snapshot save path) allocation-free. Borrowing a slice instead of a
/// `Vec` means callers that already own a hash array never copy it
/// into a fresh vector just to fold it.
pub fn merkle_root_from_leaves(leaves: &mut [Hash]) -> Hash {
    let Some(&first) = leaves.first() else {
        return leaf_hash(b"nymix:empty-merkle-tree");
    };
    if leaves.len() == 1 {
        return first;
    }
    let mut width = leaves.len();
    while width > 1 {
        let pairs = width / 2;
        let mut p = 0usize;
        let mut stage = [[0u8; 2 * DIGEST_LEN]; 4];
        while p + 4 <= pairs {
            for (l, buf) in stage.iter_mut().enumerate() {
                buf[..DIGEST_LEN].copy_from_slice(&leaves[2 * (p + l)]);
                buf[DIGEST_LEN..].copy_from_slice(&leaves[2 * (p + l) + 1]);
            }
            let parents = sha256_x4(&[NODE_TAG], [&stage[0], &stage[1], &stage[2], &stage[3]]);
            leaves[p..p + 4].copy_from_slice(&parents);
            p += 4;
        }
        while p < pairs {
            leaves[p] = node_hash(&leaves[2 * p], &leaves[2 * p + 1]);
            p += 1;
        }
        if width % 2 == 1 {
            // Promote the odd node unchanged.
            leaves[pairs] = leaves[width - 1];
        }
        width = width.div_ceil(2);
    }
    leaves[0]
}

/// An incrementally-maintained Merkle tree over pre-hashed leaves.
///
/// Where [`merkle_root_from_leaves`] recomputes the whole tree on
/// every call — O(n) hashing even when one leaf changed — the
/// accumulator keeps every interior node cached between calls, so
/// [`MerkleAccumulator::update_leaf`] recomputes only the changed
/// leaf's root path: O(log n) hashes per dirty leaf. That turns the
/// delta-snapshot commitment from O(archive) into O(dirty · log n),
/// and the restore-replay verify side reuses the same structure.
///
/// Commits to *exactly* the same root as [`merkle_root_from_leaves`]
/// and [`MerkleTree::build`] over the same leaves (odd nodes promote
/// unchanged; the empty set commits to the stable empty-tree root) —
/// `incremental_matches_scratch` in this module and the crypto crate's
/// proptests pin the equivalence bit-for-bit.
///
/// Structural edits ([`MerkleAccumulator::push_leaf`],
/// [`MerkleAccumulator::truncate`]) change the tree shape, so they
/// mark the cached interior stale; the next [`MerkleAccumulator::root`]
/// call rebuilds it in one batched pass (reusing the node buffer — no
/// steady-state allocation). The warm path — `update_leaf` on an
/// unchanged leaf count followed by `root` — allocates nothing, which
/// the store crate's no-alloc guard pins.
#[derive(Debug, Clone, Default)]
pub struct MerkleAccumulator {
    /// Leaves first (`nodes[..leaf_count]`), then — when
    /// `interior_valid` — every interior level bottom-up, root last.
    nodes: Vec<Hash>,
    /// Start index of each materialized level within `nodes`.
    level_starts: Vec<usize>,
    leaf_count: usize,
    /// False after a structural edit: `nodes` holds only the leaf
    /// level and `level_starts` is stale until the next rebuild.
    interior_valid: bool,
}

impl MerkleAccumulator {
    /// An empty accumulator (commits to the empty-tree root).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// The cached hash of leaf `index`.
    pub fn leaf(&self, index: usize) -> Option<&Hash> {
        if index < self.leaf_count {
            self.nodes.get(index)
        } else {
            None
        }
    }

    /// Drops cached interior nodes after a structural edit, leaving
    /// only the leaf level. Buffer capacity is retained.
    fn invalidate_interior(&mut self) {
        if self.interior_valid {
            self.nodes.truncate(self.leaf_count);
            self.interior_valid = false;
        }
    }

    /// Removes every leaf. Buffer capacity is retained.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.level_starts.clear();
        self.leaf_count = 0;
        self.interior_valid = false;
    }

    /// Appends a leaf hash. Changes the tree shape, so the cached
    /// interior is invalidated and rebuilt lazily at the next
    /// [`MerkleAccumulator::root`].
    pub fn push_leaf(&mut self, leaf: Hash) {
        self.invalidate_interior();
        self.nodes.push(leaf);
        self.leaf_count += 1;
    }

    /// Shrinks the leaf level to `len` leaves (no-op when already at
    /// or below `len`). Like [`MerkleAccumulator::push_leaf`], a shape
    /// change: the interior rebuilds at the next root query.
    pub fn truncate(&mut self, len: usize) {
        if len < self.leaf_count {
            self.invalidate_interior();
            self.nodes.truncate(len);
            self.leaf_count = len;
        }
    }

    /// Replaces leaf `index` and recomputes only its root path.
    ///
    /// With a warm interior this is O(log n) hashing and allocation-
    /// free; after a structural edit it just stores the leaf (the
    /// whole interior is rebuilt at the next root query anyway).
    ///
    /// # Panics
    ///
    /// Panics if `index >= leaf_count` — the accumulator is a cache
    /// over state the caller owns, so an out-of-range update is a
    /// caller bug, not hostile input.
    pub fn update_leaf(&mut self, index: usize, leaf: Hash) {
        assert!(
            index < self.leaf_count,
            "update_leaf index {index} out of range ({} leaves)",
            self.leaf_count
        );
        if self.nodes[index] == leaf {
            return;
        }
        self.nodes[index] = leaf;
        if !self.interior_valid {
            return;
        }
        // Walk the root path: at each level rehash the touched pair
        // (or copy an odd promoted node) into the parent slot.
        let mut pos = index;
        let mut width = self.leaf_count;
        let mut level = 0usize;
        while width > 1 {
            let start = self.level_starts[level];
            let parent_start = self.level_starts[level + 1];
            let sibling = pos ^ 1;
            let parent = if sibling < width {
                let (l, r) = if pos.is_multiple_of(2) {
                    (pos, sibling)
                } else {
                    (sibling, pos)
                };
                node_hash(&self.nodes[start + l], &self.nodes[start + r])
            } else {
                // Odd node: promoted unchanged to the parent level.
                self.nodes[start + pos]
            };
            pos /= 2;
            self.nodes[parent_start + pos] = parent;
            width = width.div_ceil(2);
            level += 1;
        }
    }

    /// Rebuilds every interior level bottom-up in the flat node array,
    /// batching four parents per [`sha256_x4`] pass — the same
    /// traversal as [`MerkleTree::build`], reusing this accumulator's
    /// buffers.
    fn rebuild_interior(&mut self) {
        self.nodes.truncate(self.leaf_count);
        self.level_starts.clear();
        self.level_starts.push(0);
        let mut start = 0usize;
        let mut width = self.leaf_count;
        while width > 1 {
            let next_start = self.nodes.len();
            let pairs = width / 2;
            let mut p = 0usize;
            let mut stage = [[0u8; 2 * DIGEST_LEN]; 4];
            while p + 4 <= pairs {
                for (l, buf) in stage.iter_mut().enumerate() {
                    let child = start + 2 * (p + l);
                    buf[..DIGEST_LEN].copy_from_slice(&self.nodes[child]);
                    buf[DIGEST_LEN..].copy_from_slice(&self.nodes[child + 1]);
                }
                self.nodes.extend_from_slice(&sha256_x4(
                    &[NODE_TAG],
                    [&stage[0], &stage[1], &stage[2], &stage[3]],
                ));
                p += 4;
            }
            while p < pairs {
                let child = start + 2 * p;
                let h = node_hash(&self.nodes[child], &self.nodes[child + 1]);
                self.nodes.push(h);
                p += 1;
            }
            if width % 2 == 1 {
                // Promote the odd node unchanged.
                let last = self.nodes[start + width - 1];
                self.nodes.push(last);
            }
            self.level_starts.push(next_start);
            start = next_start;
            width = width.div_ceil(2);
        }
        self.interior_valid = true;
    }

    /// The root commitment over the current leaves. Rebuilds the
    /// interior only if a structural edit invalidated it; with a warm
    /// interior this is a cached read.
    pub fn root(&mut self) -> Hash {
        if !self.interior_valid {
            self.rebuild_interior();
        }
        match self.nodes.last() {
            Some(root) => *root,
            None => leaf_hash(b"nymix:empty-merkle-tree"),
        }
    }
}

/// A Merkle tree committed over an ordered sequence of blocks.
///
/// Levels are stored bottom-up, concatenated in one flat node array with
/// a start offset per level; an odd node at any level is promoted
/// unchanged (Bitcoin-style duplication is avoided, which cannot
/// introduce ambiguity because the block count is part of the committed
/// header).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// Every level's nodes, bottom-up: leaves first, root last.
    nodes: Vec<Hash>,
    /// Start index of each level within `nodes`.
    level_starts: Vec<usize>,
    block_count: usize,
}

impl MerkleTree {
    /// Builds a tree over `blocks`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nymix_crypto::MerkleTree;
    ///
    /// let blocks: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 16]).collect();
    /// let tree = MerkleTree::build(blocks.iter().map(|b| b.as_slice()));
    /// let proof = tree.prove(2).unwrap();
    /// assert!(MerkleTree::verify(&tree.root(), 2, &blocks[2], &proof, 4));
    /// ```
    pub fn build<'a, I>(blocks: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let blocks: Vec<&[u8]> = blocks.into_iter().collect();
        let block_count = blocks.len();
        // A tree over n leaves has at most 2n nodes (plus promotions).
        let mut nodes: Vec<Hash> = Vec::with_capacity(2 * block_count + 2);

        // Leaves: batch runs of four equal-length blocks through the
        // interleaved kernel; ragged runs fall back to scalar hashing.
        let mut i = 0;
        while i < block_count {
            if i + 4 <= block_count
                && blocks[i + 1..i + 4]
                    .iter()
                    .all(|b| b.len() == blocks[i].len())
            {
                nodes.extend_from_slice(&sha256_x4(
                    &[LEAF_TAG],
                    [blocks[i], blocks[i + 1], blocks[i + 2], blocks[i + 3]],
                ));
                i += 4;
            } else {
                nodes.push(leaf_hash(blocks[i]));
                i += 1;
            }
        }

        // Interior levels: pair inputs are 64 bytes of adjacent child
        // hashes, staged four pairs at a time for the lockstep kernel.
        let mut level_starts = vec![0usize];
        let mut start = 0usize;
        let mut width = block_count;
        while width > 1 {
            let next_start = nodes.len();
            let pairs = width / 2;
            let mut p = 0usize;
            let mut stage = [[0u8; 2 * DIGEST_LEN]; 4];
            while p + 4 <= pairs {
                for (l, buf) in stage.iter_mut().enumerate() {
                    let child = start + 2 * (p + l);
                    buf[..DIGEST_LEN].copy_from_slice(&nodes[child]);
                    buf[DIGEST_LEN..].copy_from_slice(&nodes[child + 1]);
                }
                nodes.extend_from_slice(&sha256_x4(
                    &[NODE_TAG],
                    [&stage[0], &stage[1], &stage[2], &stage[3]],
                ));
                p += 4;
            }
            while p < pairs {
                let child = start + 2 * p;
                let h = node_hash(&nodes[child], &nodes[child + 1]);
                nodes.push(h);
                p += 1;
            }
            if width % 2 == 1 {
                // Promote the odd node unchanged.
                let last = nodes[start + width - 1];
                nodes.push(last);
            }
            level_starts.push(next_start);
            start = next_start;
            width = width.div_ceil(2);
        }
        Self {
            nodes,
            level_starts,
            block_count,
        }
    }

    /// Number of committed blocks.
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// The nodes of level `index` (0 = leaves).
    fn level(&self, index: usize) -> &[Hash] {
        let start = self.level_starts[index];
        let end = self
            .level_starts
            .get(index + 1)
            .copied()
            .unwrap_or(self.nodes.len());
        &self.nodes[start..end]
    }

    /// The root commitment. An empty tree commits to the hash of the
    /// empty leaf set (all-zero is avoided to keep roots unambiguous).
    pub fn root(&self) -> Hash {
        match self.nodes.last() {
            Some(root) => *root,
            None => leaf_hash(b"nymix:empty-merkle-tree"),
        }
    }

    /// Produces the sibling path proving block `index`.
    ///
    /// Each element is `(sibling_hash, sibling_is_left)`.
    pub fn prove(&self, index: usize) -> Option<Vec<(Hash, bool)>> {
        if index >= self.block_count {
            return None;
        }
        let mut proof = Vec::new();
        let mut pos = index;
        for li in 0..self.level_starts.len().saturating_sub(1) {
            let level = self.level(li);
            let sibling = pos ^ 1;
            if sibling < level.len() {
                proof.push((level[sibling], sibling < pos));
            }
            pos /= 2;
        }
        Some(proof)
    }

    /// Verifies that `block` is the `index`-th of `block_count` blocks
    /// under `root`.
    pub fn verify(
        root: &Hash,
        index: usize,
        block: &[u8],
        proof: &[(Hash, bool)],
        block_count: usize,
    ) -> bool {
        if index >= block_count {
            return false;
        }
        let mut acc = leaf_hash(block);
        let mut pos = index;
        let mut width = block_count;
        let mut proof_iter = proof.iter();
        while width > 1 {
            let has_sibling = (pos ^ 1) < width;
            if has_sibling {
                let Some((sibling, sibling_is_left)) = proof_iter.next() else {
                    return false;
                };
                // The proof's claimed orientation must match the index.
                if *sibling_is_left != (pos % 2 == 1) {
                    return false;
                }
                acc = if *sibling_is_left {
                    node_hash(sibling, &acc)
                } else {
                    node_hash(&acc, sibling)
                };
            }
            pos /= 2;
            width = width.div_ceil(2);
        }
        proof_iter.next().is_none() && crate::ct::eq(&acc, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("block-{i}").into_bytes()).collect()
    }

    fn build(n: usize) -> (MerkleTree, Vec<Vec<u8>>) {
        let b = blocks(n);
        let t = MerkleTree::build(b.iter().map(|x| x.as_slice()));
        (t, b)
    }

    /// Reference build: scalar hashing, per-level vectors, as the seed
    /// implemented it. The batched build must commit to the same root.
    fn reference_root(blocks: &[Vec<u8>]) -> Hash {
        let mut level: Vec<Hash> = blocks.iter().map(|b| leaf_hash(b)).collect();
        if level.is_empty() {
            return leaf_hash(b"nymix:empty-merkle-tree");
        }
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        node_hash(&pair[0], &pair[1])
                    } else {
                        pair[0]
                    }
                })
                .collect();
        }
        level[0]
    }

    #[test]
    fn all_proofs_verify_for_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 31] {
            let (tree, data) = build(n);
            for (i, block) in data.iter().enumerate() {
                let proof = tree.prove(i).expect("in range");
                assert!(
                    MerkleTree::verify(&tree.root(), i, block, &proof, n),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn batched_build_matches_scalar_reference() {
        // Equal-length blocks (the x4 fast path) and ragged lengths (the
        // scalar fallback) must both agree with the reference build.
        for n in 0usize..=33 {
            let uniform: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 64]).collect();
            let tree = MerkleTree::build(uniform.iter().map(|b| b.as_slice()));
            assert_eq!(tree.root(), reference_root(&uniform), "uniform n={n}");

            let ragged: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 1 + (i % 7)]).collect();
            let tree = MerkleTree::build(ragged.iter().map(|b| b.as_slice()));
            assert_eq!(tree.root(), reference_root(&ragged), "ragged n={n}");
        }
    }

    #[test]
    fn root_from_leaves_matches_full_build() {
        for n in 0usize..=33 {
            let data = blocks(n);
            let tree = MerkleTree::build(data.iter().map(|b| b.as_slice()));
            let mut leaves: Vec<Hash> = data.iter().map(|b| leaf_hash(b)).collect();
            assert_eq!(merkle_root_from_leaves(&mut leaves), tree.root(), "n={n}");
        }
    }

    #[test]
    fn incremental_matches_scratch() {
        // Every (size, dirty-index) pair: updating one leaf in a warm
        // accumulator must commit to the same root as a from-scratch
        // fold over the mutated leaf level.
        for n in 1usize..=33 {
            let mut acc = MerkleAccumulator::new();
            let mut leaves: Vec<Hash> = (0..n).map(|i| leaf_hash(&[i as u8; 9])).collect();
            for leaf in &leaves {
                acc.push_leaf(*leaf);
            }
            assert_eq!(acc.root(), merkle_root_from_leaves(&mut leaves.clone()));
            for dirty in 0..n {
                let new_leaf = leaf_hash(format!("dirty-{n}-{dirty}").as_bytes());
                leaves[dirty] = new_leaf;
                acc.update_leaf(dirty, new_leaf);
                assert_eq!(
                    acc.root(),
                    merkle_root_from_leaves(&mut leaves.clone()),
                    "n={n} dirty={dirty}"
                );
            }
        }
    }

    #[test]
    fn accumulator_structural_edits_match_scratch() {
        // push/truncate change the tree shape; the rebuilt interior
        // must still agree with a from-scratch fold.
        let mut acc = MerkleAccumulator::new();
        let mut leaves: Vec<Hash> = Vec::new();
        assert_eq!(acc.root(), merkle_root_from_leaves(&mut leaves.clone()));
        for i in 0..17u8 {
            let leaf = leaf_hash(&[i; 5]);
            acc.push_leaf(leaf);
            leaves.push(leaf);
            assert_eq!(
                acc.root(),
                merkle_root_from_leaves(&mut leaves.clone()),
                "grow {i}"
            );
        }
        for len in (0..17usize).rev() {
            acc.truncate(len);
            leaves.truncate(len);
            assert_eq!(
                acc.root(),
                merkle_root_from_leaves(&mut leaves.clone()),
                "shrink {len}"
            );
            assert_eq!(acc.leaf_count(), len);
        }
    }

    #[test]
    fn accumulator_mixed_ops_match_scratch() {
        // Interleave updates with shape changes so update paths run
        // against interiors that were rebuilt mid-stream.
        let mut acc = MerkleAccumulator::new();
        let mut leaves: Vec<Hash> = Vec::new();
        for step in 0..60u32 {
            match step % 4 {
                0 | 1 => {
                    let leaf = leaf_hash(&step.to_le_bytes());
                    acc.push_leaf(leaf);
                    leaves.push(leaf);
                }
                2 if !leaves.is_empty() => {
                    let i = (step as usize * 7) % leaves.len();
                    let leaf = leaf_hash(format!("upd-{step}").as_bytes());
                    // Alternate warm (root queried first) and cold updates.
                    if step % 8 == 2 {
                        acc.root();
                    }
                    acc.update_leaf(i, leaf);
                    leaves[i] = leaf;
                }
                3 if leaves.len() > 2 => {
                    let len = leaves.len() - 2;
                    acc.truncate(len);
                    leaves.truncate(len);
                }
                _ => {}
            }
            assert_eq!(
                acc.root(),
                merkle_root_from_leaves(&mut leaves.clone()),
                "step {step}"
            );
        }
    }

    #[test]
    fn leaf_hash_parts_matches_contiguous() {
        let whole = b"record-name\x00payload bytes";
        assert_eq!(
            leaf_hash_parts(&[b"record-name", b"\x00", b"payload bytes"]),
            leaf_hash(whole)
        );
        assert_eq!(leaf_hash_parts(&[]), leaf_hash(b""));
        // Moving a boundary must change the hash (framing matters to
        // callers, so parts are hashed exactly as concatenation).
        assert_ne!(
            leaf_hash_parts(&[b"ab", b"c"]),
            leaf_hash_parts(&[b"a", b"b!c"])
        );
    }

    #[test]
    fn modified_block_rejected() {
        let (tree, data) = build(8);
        let proof = tree.prove(3).unwrap();
        let mut tampered = data[3].clone();
        tampered[0] ^= 0x80;
        assert!(!MerkleTree::verify(&tree.root(), 3, &tampered, &proof, 8));
    }

    #[test]
    fn wrong_index_rejected() {
        let (tree, data) = build(8);
        let proof = tree.prove(3).unwrap();
        assert!(!MerkleTree::verify(&tree.root(), 4, &data[3], &proof, 8));
    }

    #[test]
    fn truncated_proof_rejected() {
        let (tree, data) = build(8);
        let mut proof = tree.prove(3).unwrap();
        proof.pop();
        assert!(!MerkleTree::verify(&tree.root(), 3, &data[3], &proof, 8));
    }

    #[test]
    fn extended_proof_rejected() {
        let (tree, data) = build(8);
        let mut proof = tree.prove(3).unwrap();
        proof.push(([0u8; 32], false));
        assert!(!MerkleTree::verify(&tree.root(), 3, &data[3], &proof, 8));
    }

    #[test]
    fn leaf_cannot_impersonate_node() {
        // Hash of (left||right) as a *leaf* must not equal the parent node.
        let (tree, data) = build(2);
        let l = leaf_hash(&data[0]);
        let r = leaf_hash(&data[1]);
        let mut fake = Vec::new();
        fake.extend_from_slice(&l);
        fake.extend_from_slice(&r);
        assert_ne!(leaf_hash(&fake), tree.root());
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let (tree, _) = build(4);
        assert!(tree.prove(4).is_none());
    }

    #[test]
    fn empty_tree_has_stable_root() {
        let t1 = MerkleTree::build(core::iter::empty());
        let t2 = MerkleTree::build(core::iter::empty());
        assert_eq!(t1.root(), t2.root());
        assert_eq!(t1.block_count(), 0);
    }

    #[test]
    fn roots_differ_on_any_block_change() {
        let (t1, _) = build(5);
        let mut data = blocks(5);
        data[4][0] ^= 1;
        let t2 = MerkleTree::build(data.iter().map(|x| x.as_slice()));
        assert_ne!(t1.root(), t2.root());
    }
}
