//! Startup timing: phases and calibration (Figure 7).
//!
//! §5.4 divides nym startup into "three phases: AnonVM boot time, Tor
//! startup time, and webpage load time", with quasi-persistent nyms
//! adding an "Ephemeral Nym" phase (the throwaway nym that downloads
//! the state from the cloud). The abstract's headline: nymboxes load
//! "within 15 to 25 seconds".

use nymix_sim::SimDuration;

/// Calibration constants for the boot-time model.
pub mod calib {
    use nymix_sim::SimDuration;

    /// AnonVM kernel boot + X + Chromium launch on the testbed.
    /// The CommVM boots concurrently and is smaller, so the phase is
    /// bounded by the AnonVM.
    pub const ANONVM_BOOT: SimDuration = SimDuration(11_000_000);

    /// Page render CPU time after the bytes arrive (virtualized).
    pub const PAGE_RENDER: SimDuration = SimDuration(1_500_000);

    /// Unsealing (PBKDF2 + decrypt + decompress) plus re-attaching the
    /// restored layers when loading a quasi-persistent nym.
    pub const RESTORE_UNPACK: SimDuration = SimDuration(1_800_000);
}

/// Per-phase startup breakdown for one nym launch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StartupBreakdown {
    /// Throwaway-nym time when fetching quasi-persistent state from the
    /// cloud (zero for fresh/pre-configured nyms).
    pub ephemeral_fetch: SimDuration,
    /// AnonVM boot.
    pub boot_vm: SimDuration,
    /// Anonymizer startup ("Start Tor").
    pub start_anonymizer: SimDuration,
    /// First page load.
    pub load_page: SimDuration,
}

impl StartupBreakdown {
    /// Total startup latency.
    pub fn total(&self) -> SimDuration {
        self.ephemeral_fetch + self.boot_vm + self.start_anonymizer + self.load_page
    }

    /// Renders the Figure 7 stacked-bar row.
    pub fn render(&self, label: &str) -> String {
        format!(
            "{label}: boot={:.1}s tor={:.1}s page={:.1}s ephemeral={:.1}s total={:.1}s",
            self.boot_vm.as_secs_f64(),
            self.start_anonymizer.as_secs_f64(),
            self.load_page.as_secs_f64(),
            self.ephemeral_fetch.as_secs_f64(),
            self.total().as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let b = StartupBreakdown {
            ephemeral_fetch: SimDuration::from_secs(20),
            boot_vm: SimDuration::from_secs(11),
            start_anonymizer: SimDuration::from_secs(4),
            load_page: SimDuration::from_secs(3),
        };
        assert_eq!(b.total(), SimDuration::from_secs(38));
        let row = b.render("Persisted");
        assert!(row.contains("total=38.0s"));
        assert!(row.starts_with("Persisted:"));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(StartupBreakdown::default().total(), SimDuration::ZERO);
    }
}
