//! Facade-level tests: the public `NymManager` behavior across the
//! env / session / pipeline layers, plus the fleet scheduler and
//! cross-nym isolation under a shared backend.

use super::*;
use fleet::FleetSaveRequest;
use nymix_anon::AnonymizerKind;
use nymix_sim::SimDuration;
use nymix_store::DELTA_CHAIN_LIMIT;
use nymix_workload::Site;

pub(super) fn manager() -> NymManager {
    NymManager::new(42, 64)
}

#[test]
fn fresh_nym_within_paper_band() {
    let mut m = manager();
    let (id, breakdown) = m
        .create_nym("reader", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .unwrap();
    let page = m.visit_site(id, Site::Twitter).unwrap();
    let total = breakdown.total() + page;
    // Abstract: "loads within 15 to 25 seconds".
    assert!((15.0..25.0).contains(&total.as_secs_f64()), "total {total}");
}

#[test]
fn nymbox_is_two_vms() {
    let mut m = manager();
    let (id, _) = m
        .create_nym("n", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .unwrap();
    let nb = m.nymbox(id).unwrap();
    assert_ne!(nb.anon_vm, nb.comm_vm);
    assert_eq!(m.hypervisor().vm_count(), 2);
    let anon = m.hypervisor().vm(nb.anon_vm).unwrap();
    let comm = m.hypervisor().vm(nb.comm_vm).unwrap();
    assert_eq!(anon.config().role, nymix_vmm::VmRole::Anon);
    assert_eq!(comm.config().role, nymix_vmm::VmRole::Comm);
}

#[test]
fn destroy_wipes_and_frees() {
    let mut m = manager();
    let (id, _) = m
        .create_nym("n", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .unwrap();
    m.visit_site(id, Site::Bbc).unwrap();
    m.destroy_nym(id).unwrap();
    assert_eq!(m.hypervisor().vm_count(), 0);
    assert!(matches!(
        m.visit_site(id, Site::Bbc),
        Err(NymManagerError::NoSuchNym(_))
    ));
}

#[test]
fn stain_does_not_survive_ephemeral_nym() {
    let mut m = manager();
    let (id, _) = m
        .create_nym("n", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .unwrap();
    m.inject_stain(id, "evercookie-77").unwrap();
    assert!(m.has_stain(id, "evercookie-77").unwrap());
    m.destroy_nym(id).unwrap();
    let (id2, _) = m
        .create_nym("n", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .unwrap();
    assert!(!m.has_stain(id2, "evercookie-77").unwrap());
}

#[test]
fn save_restore_roundtrip_via_cloud() {
    let mut m = manager();
    m.register_cloud("dropbox", "anon-4711", "tok");
    let (id, _) = m
        .create_nym("alice", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Twitter).unwrap();
    let dest = StorageDest::Cloud {
        provider: "dropbox".into(),
        account: "anon-4711".into(),
        credential: "tok".into(),
    };
    let (size, _dur) = m.save_nym(id, "pw", &dest).unwrap();
    assert!(size > 0);
    m.destroy_nym(id).unwrap();

    let (id2, breakdown) = m
        .restore_nym(
            "alice",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &dest,
        )
        .unwrap();
    assert!(breakdown.ephemeral_fetch > SimDuration::ZERO);
    assert!(m.nymbox(id2).unwrap().restored);
    // Credentials survived: the browser still knows twitter.com.
    let vm = m.hypervisor().vm(m.nymbox(id2).unwrap().anon_vm).unwrap();
    assert!(vm.disk().exists(&nymix_fs::Path::new(
        "/home/user/.config/chromium/logins/twitter.com"
    )));
}

#[test]
fn wrong_password_fails_restore() {
    let mut m = manager();
    let (id, _) = m
        .create_nym("bob", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.save_nym(id, "right", &StorageDest::Local).unwrap();
    m.destroy_nym(id).unwrap();
    assert!(matches!(
        m.restore_nym(
            "bob",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "wrong",
            &StorageDest::Local
        ),
        Err(NymManagerError::Storage(_))
    ));
}

#[test]
fn local_restore_skips_ephemeral_nym() {
    let mut m = manager();
    let (id, _) = m
        .create_nym("carol", AnonymizerKind::Tor, UsageModel::PreConfigured)
        .unwrap();
    m.save_nym(id, "pw", &StorageDest::Local).unwrap();
    m.destroy_nym(id).unwrap();
    let (_, breakdown) = m
        .restore_nym(
            "carol",
            AnonymizerKind::Tor,
            UsageModel::PreConfigured,
            "pw",
            &StorageDest::Local,
        )
        .unwrap();
    assert!(breakdown.ephemeral_fetch < SimDuration::from_secs(3));
    // Warm anonymizer start beats a cold one.
    let (_, fresh) = m
        .create_nym("fresh", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .unwrap();
    assert!(breakdown.start_anonymizer < fresh.start_anonymizer);
}

#[test]
fn cloud_provider_never_sees_user_ip() {
    let mut m = manager();
    m.register_cloud("drive", "acct", "tok");
    let (id, _) = m
        .create_nym("dave", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    let dest = StorageDest::Cloud {
        provider: "drive".into(),
        account: "acct".into(),
        credential: "tok".into(),
    };
    m.save_nym(id, "pw", &dest).unwrap();
    let user_ip = m.public_ip();
    let provider = m.cloud_provider("drive").unwrap();
    for entry in provider.access_log() {
        assert_ne!(entry.observed_ip, user_ip, "provider saw the user");
    }
}

#[test]
fn incognito_mode_leaks_ip_to_provider() {
    // The documented trade-off: incognito's exit is the user.
    let mut m = manager();
    m.register_cloud("drive", "acct", "tok");
    let (id, _) = m
        .create_nym("erin", AnonymizerKind::Incognito, UsageModel::Persistent)
        .unwrap();
    let dest = StorageDest::Cloud {
        provider: "drive".into(),
        account: "acct".into(),
        credential: "tok".into(),
    };
    m.save_nym(id, "pw", &dest).unwrap();
    let user_ip = m.public_ip();
    assert!(m
        .cloud_provider("drive")
        .unwrap()
        .access_log()
        .iter()
        .any(|e| e.observed_ip == user_ip));
}

#[test]
fn persistent_nym_grows_across_cycles() {
    let mut m = manager();
    let (mut id, _) = m
        .create_nym("grower", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    let mut sizes = Vec::new();
    for _ in 0..4 {
        m.visit_site(id, Site::Facebook).unwrap();
        let (size, _) = m.save_nym(id, "pw", &StorageDest::Local).unwrap();
        sizes.push(size);
        m.destroy_nym(id).unwrap();
        let (nid, _) = m
            .restore_nym(
                "grower",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local,
            )
            .unwrap();
        id = nid;
    }
    assert!(
        sizes.windows(2).all(|w| w[1] > w[0]),
        "persistent nym should grow: {sizes:?}"
    );
}

#[test]
fn incremental_save_seals_only_the_delta() {
    let mut m = manager();
    let (id, _) = m
        .create_nym("inc", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Twitter).unwrap();
    // First save: no chain yet, must be full.
    let (kind, full_size, _) = m
        .save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Full);
    // A tiny change — new guard state dirties only the
    // anonymizer.state record; both disk records stay clean and are
    // neither re-serialized nor re-sealed.
    m.seed_guards_deterministically(id, "usb://nyms/inc", "pw")
        .unwrap();
    let (kind, delta_size, _) = m
        .save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Delta);
    assert!(
        delta_size * 10 < full_size,
        "delta {delta_size} not small vs full {full_size}"
    );
    // The delta rides a chained object, not the base slot.
    assert!(m.local_store().get("nym:inc@local#e1.1").is_some());
    // A stain (browser + AnonVM disk) still saves as a delta: two
    // dirty records out of five.
    m.inject_stain(id, "evercookie-9").unwrap();
    let (kind, stain_delta, _) = m
        .save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Delta);
    assert!(stain_delta < full_size);

    // Restore replays base + delta: the stain must be visible.
    m.destroy_nym(id).unwrap();
    let (id2, _) = m
        .restore_nym(
            "inc",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local,
        )
        .unwrap();
    assert!(m.has_stain(id2, "evercookie-9").unwrap());
    // Credentials from the pre-delta session survived too.
    let vm = m.hypervisor().vm(m.nymbox(id2).unwrap().anon_vm).unwrap();
    assert!(vm.disk().exists(&nymix_fs::Path::new(
        "/home/user/.config/chromium/logins/twitter.com"
    )));
    // The restored chain keeps accepting deltas where it left off.
    m.inject_stain(id2, "evercookie-10").unwrap();
    let (kind, _, _) = m
        .save_nym_incremental(id2, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Delta);
    assert!(m.local_store().get("nym:inc@local#e1.3").is_some());
}

#[test]
fn clean_saves_stay_deltas_and_chains_compact() {
    let mut m = manager();
    let (id, _) = m
        .create_nym("c", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Bbc).unwrap();
    let mut kinds = Vec::new();
    for i in 0..=nymix_store::DELTA_CHAIN_LIMIT + 1 {
        if i > 0 {
            m.inject_stain(id, &format!("mark-{i}")).unwrap();
        }
        let (kind, _, _) = m
            .save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        kinds.push(kind);
    }
    // Full, then DELTA_CHAIN_LIMIT deltas, then compaction (full).
    let mut expected = vec![SaveKind::Full];
    expected.extend([SaveKind::Delta; nymix_store::DELTA_CHAIN_LIMIT]);
    expected.push(SaveKind::Full);
    assert_eq!(kinds, expected);
    // The compacted restore carries every mark.
    m.destroy_nym(id).unwrap();
    let (id2, _) = m
        .restore_nym(
            "c",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local,
        )
        .unwrap();
    for i in 1..=nymix_store::DELTA_CHAIN_LIMIT + 1 {
        assert!(m.has_stain(id2, &format!("mark-{i}")).unwrap(), "mark-{i}");
    }
}

#[test]
fn incremental_save_via_cloud_roundtrips() {
    let mut m = manager();
    m.register_cloud("dropbox", "anon-1", "tok");
    let dest = StorageDest::Cloud {
        provider: "dropbox".into(),
        account: "anon-1".into(),
        credential: "tok".into(),
    };
    let (id, _) = m
        .create_nym("cl", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Twitter).unwrap();
    m.save_nym_incremental(id, "pw", &dest).unwrap();
    m.inject_stain(id, "cloud-mark").unwrap();
    let (kind, _, _) = m.save_nym_incremental(id, "pw", &dest).unwrap();
    assert_eq!(kind, SaveKind::Delta);
    m.destroy_nym(id).unwrap();
    let (id2, breakdown) = m
        .restore_nym(
            "cl",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &dest,
        )
        .unwrap();
    assert!(breakdown.ephemeral_fetch > SimDuration::ZERO);
    assert!(m.has_stain(id2, "cloud-mark").unwrap());
    // The provider never saw the user's address, deltas included.
    let user_ip = m.public_ip();
    for entry in m.cloud_provider("dropbox").unwrap().access_log() {
        assert_ne!(entry.observed_ip, user_ip);
    }
}

#[test]
fn tampered_delta_fails_restore_closed() {
    let mut m = manager();
    let (id, _) = m
        .create_nym("t", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Bbc).unwrap();
    m.save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    m.inject_stain(id, "x").unwrap();
    let (kind, _, _) = m
        .save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Delta);
    m.destroy_nym(id).unwrap();
    // Flip one ciphertext byte in the stored delta object.
    let mut blob = m.env.local.get("nym:t@local#e1.1").unwrap().to_vec();
    let mid = blob.len() / 2;
    blob[mid] ^= 1;
    m.env.local.put("nym:t@local#e1.1", blob);
    assert!(matches!(
        m.restore_nym(
            "t",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local
        ),
        Err(NymManagerError::Storage(_))
    ));
}

#[test]
fn delta_chain_slots_cannot_be_swapped() {
    let mut m = manager();
    let (id, _) = m
        .create_nym("s", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Bbc).unwrap();
    m.save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    for mark in ["a", "b"] {
        m.inject_stain(id, mark).unwrap();
        m.save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
    }
    m.destroy_nym(id).unwrap();
    // A malicious backend swaps the two delta objects: each blob
    // still authenticates under the chain key, but against the
    // wrong slot label — restore must refuse.
    let d1 = m.env.local.get("nym:s@local#e1.1").unwrap().to_vec();
    let d2 = m.env.local.get("nym:s@local#e1.2").unwrap().to_vec();
    m.env.local.put("nym:s@local#e1.1", d2);
    m.env.local.put("nym:s@local#e1.2", d1);
    assert!(matches!(
        m.restore_nym(
            "s",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local
        ),
        Err(NymManagerError::Storage(_))
    ));
}

#[test]
fn recreated_nym_does_not_collide_with_stale_chain() {
    // A destroyed nym leaves its chain objects behind; a brand-new
    // nym with the same name must start a fresh epoch so the stale
    // deltas (sealed under the old chain key) are never replayed
    // into its restores.
    let mut m = manager();
    let (id, _) = m
        .create_nym("re", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Bbc).unwrap();
    m.save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    m.inject_stain(id, "old-life").unwrap();
    m.save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    assert!(m.local_store().get("nym:re@local#e1.1").is_some());
    m.destroy_nym(id).unwrap();

    // Fresh nym, same name: full save must take epoch 2, not 1.
    let (id2, _) = m
        .create_nym("re", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    let (kind, _, _) = m
        .save_nym_incremental(id2, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Full);
    m.destroy_nym(id2).unwrap();
    let (id3, _) = m
        .restore_nym(
            "re",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local,
        )
        .unwrap();
    // The restored state is the fresh nym's, not the stained one.
    assert!(!m.has_stain(id3, "old-life").unwrap());
}

/// Chunk-object names the local store currently holds.
fn chunk_objects(m: &NymManager) -> Vec<String> {
    m.local_store()
        .list()
        .into_iter()
        .filter(|n| n.contains("/c/"))
        .map(str::to_string)
        .collect()
}

/// A manager at low browser scale so disk records cross the chunk
/// threshold, with one browser session saved incrementally.
fn chunked_setup(seed: u64) -> (NymManager, NymId, usize) {
    let mut m = NymManager::new(seed, 8);
    let (id, _) = m
        .create_nym("ck", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Twitter).unwrap();
    let (kind, full_uploaded, _) = m
        .save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Full);
    (m, id, full_uploaded)
}

#[test]
fn chunked_save_dedups_and_roundtrips() {
    let (mut m, id, full_uploaded) = chunked_setup(77);
    // The base shipped manifests + chunk objects.
    let after_full = chunk_objects(&m);
    assert!(!after_full.is_empty(), "large records should chunk");

    // A stain dirties the big AnonVM disk record; the delta ships
    // the new manifest plus only the chunks the write touched —
    // far fewer bytes than the base (which re-ships everything).
    m.inject_stain(id, "cas-mark").unwrap();
    let (kind, delta_uploaded, _) = m
        .save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Delta);
    assert!(
        delta_uploaded * 4 < full_uploaded,
        "chunked delta {delta_uploaded} vs full {full_uploaded}"
    );

    // Restore replays the chain and resolves every manifest.
    m.destroy_nym(id).unwrap();
    let (id2, _) = m
        .restore_nym(
            "ck",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local,
        )
        .unwrap();
    assert!(m.has_stain(id2, "cas-mark").unwrap());
    let vm = m.hypervisor().vm(m.nymbox(id2).unwrap().anon_vm).unwrap();
    assert!(vm.disk().exists(&nymix_fs::Path::new(
        "/home/user/.config/chromium/logins/twitter.com"
    )));
    // The restored chain keeps absorbing chunked deltas.
    m.inject_stain(id2, "cas-mark-2").unwrap();
    let (kind, _, _) = m
        .save_nym_incremental(id2, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Delta);
}

#[test]
fn tampered_chunk_fails_restore_closed() {
    let (mut m, id, _) = chunked_setup(78);
    m.destroy_nym(id).unwrap();
    let victim = chunk_objects(&m)[0].clone();
    let mut blob = m.env.local.get(&victim).unwrap().to_vec();
    let mid = blob.len() / 2;
    blob[mid] ^= 1;
    m.env.local.put(&victim, blob);
    assert!(matches!(
        m.restore_nym(
            "ck",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local
        ),
        Err(NymManagerError::Storage(_))
    ));
}

#[test]
fn swapped_chunks_fail_restore_closed() {
    let (mut m, id, _) = chunked_setup(79);
    m.destroy_nym(id).unwrap();
    // Each chunk is sealed with its own object name as AEAD data:
    // a backend serving chunk A's bytes under chunk B's name fails
    // authentication even though both blobs are individually valid.
    let names = chunk_objects(&m);
    assert!(names.len() >= 2, "need two chunks to swap");
    let a = m.env.local.get(&names[0]).unwrap().to_vec();
    let b = m.env.local.get(&names[1]).unwrap().to_vec();
    m.env.local.put(&names[0], b);
    m.env.local.put(&names[1], a);
    assert!(matches!(
        m.restore_nym(
            "ck",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local
        ),
        Err(NymManagerError::Storage(_))
    ));
}

#[test]
fn gcd_away_chunk_fails_restore_closed() {
    let (mut m, id, _) = chunked_setup(80);
    m.destroy_nym(id).unwrap();
    let victim = chunk_objects(&m)[0].clone();
    assert!(m.env.local.delete(&victim));
    // The backend answered and the chunk is *gone* — the distinct
    // authoritatively-absent error, not a generic storage failure and
    // not Unavailable (nothing is down; retrying cannot help).
    assert!(matches!(
        m.restore_nym(
            "ck",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local
        ),
        Err(NymManagerError::MissingObject(_))
    ));
}

#[test]
fn compaction_sweeps_retired_epoch_chunks() {
    let (mut m, id, _) = chunked_setup(81);
    let epoch1: Vec<String> = chunk_objects(&m);
    assert!(epoch1.iter().all(|n| n.contains("#e1/")), "{epoch1:?}");
    // Run the chain past the delta limit so a save compacts into a
    // new epoch; epoch 1's chunk and delta objects must be swept.
    for i in 0..=DELTA_CHAIN_LIMIT {
        m.inject_stain(id, &format!("gc-{i}")).unwrap();
        m.save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
    }
    let now = chunk_objects(&m);
    assert!(
        now.iter().all(|n| n.contains("#e2/")),
        "old-epoch chunks not swept: {now:?}"
    );
    assert!(m.local_store().get("nym:ck@local#e1.1").is_none());
    // The compacted chain restores with every mark intact.
    m.destroy_nym(id).unwrap();
    let (id2, _) = m
        .restore_nym(
            "ck",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local,
        )
        .unwrap();
    for i in 0..=DELTA_CHAIN_LIMIT {
        assert!(m.has_stain(id2, &format!("gc-{i}")).unwrap(), "gc-{i}");
    }
}

#[test]
fn chunking_disabled_keeps_record_granular_deltas() {
    let mut m = NymManager::new(82, 8);
    m.set_chunking(false);
    assert!(!m.chunking());
    let (id, _) = m
        .create_nym("nc", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Twitter).unwrap();
    m.save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    assert!(chunk_objects(&m).is_empty());
    m.inject_stain(id, "plain").unwrap();
    let (kind, _, _) = m
        .save_nym_incremental(id, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Delta);
    m.destroy_nym(id).unwrap();
    let (id2, _) = m
        .restore_nym(
            "nc",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Local,
        )
        .unwrap();
    assert!(m.has_stain(id2, "plain").unwrap());
}

#[test]
fn chunked_cloud_save_hides_user_behind_exit() {
    // Chunk uploads multiply provider operations; every one of them
    // must still show only the anonymizer's exit address.
    let mut m = NymManager::new(83, 8);
    m.register_cloud("dropbox", "anon-9", "tok");
    let dest = StorageDest::Cloud {
        provider: "dropbox".into(),
        account: "anon-9".into(),
        credential: "tok".into(),
    };
    let (id, _) = m
        .create_nym("cc", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Twitter).unwrap();
    m.save_nym_incremental(id, "pw", &dest).unwrap();
    m.inject_stain(id, "cloud-cas").unwrap();
    m.save_nym_incremental(id, "pw", &dest).unwrap();
    m.destroy_nym(id).unwrap();
    let (id2, _) = m
        .restore_nym(
            "cc",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &dest,
        )
        .unwrap();
    assert!(m.has_stain(id2, "cloud-cas").unwrap());
    let user_ip = m.public_ip();
    let provider = m.cloud_provider("dropbox").unwrap();
    assert!(provider.access_log().total_recorded() > 4);
    for entry in provider.access_log() {
        assert_ne!(entry.observed_ip, user_ip, "provider saw the user");
    }
}

#[test]
fn deterministic_guard_extension() {
    let mut m = manager();
    let (a, _) = m
        .create_nym("x", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    let s1 = m
        .seed_guards_deterministically(a, "dropbox://nyms/x", "pw")
        .unwrap();
    let (b, _) = m
        .create_nym("y", AnonymizerKind::Tor, UsageModel::Ephemeral)
        .unwrap();
    let s2 = m
        .seed_guards_deterministically(b, "dropbox://nyms/x", "pw")
        .unwrap();
    assert_eq!(s1, s2, "same location+password must give same guards");
}

#[test]
fn admission_eventually_refuses() {
    let mut m = manager();
    let mut created = 0;
    loop {
        match m.create_nym("n", AnonymizerKind::Incognito, UsageModel::Ephemeral) {
            Ok(_) => created += 1,
            Err(NymManagerError::Hypervisor(HypervisorError::InsufficientMemory { .. })) => break,
            Err(e) => panic!("unexpected: {e}"),
        }
        assert!(created < 64);
    }
    // 16 GiB host, ~706 MiB/nymbox: low twenties.
    assert!((20..24).contains(&created), "created {created}");
}

#[test]
fn delta_saves_do_not_drain_orphaned_chunk_registry() {
    // A destroyed nym's chunk objects are registered as orphans and
    // must survive any number of *delta* saves under the same label —
    // only the next compaction sweeps them. (Regression: the seal
    // stage used to drain the orphan list on every save, so a delta in
    // between dropped it without deleting anything and the dead nym's
    // chunks leaked on the backend forever.)
    let mut m = NymManager::new(91, 8);
    let (a, _) = m
        .create_nym("twin", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(a, Site::Twitter).unwrap();
    m.save_nym_incremental(a, "pw", &StorageDest::Local)
        .unwrap(); // epoch 1, chunks on disk
    let epoch1: Vec<String> = chunk_objects(&m);
    assert!(epoch1.iter().any(|n| n.contains("#e1/")), "{epoch1:?}");

    // A second nym takes over the label with a full save (epoch 2),
    // then the first nym dies — its epoch-1 chunks become orphans.
    let (b, _) = m
        .create_nym("twin", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(b, Site::Bbc).unwrap();
    m.save_nym_incremental(b, "pw", &StorageDest::Local)
        .unwrap(); // epoch 2
    m.destroy_nym(a).unwrap();

    // Delta saves on b's chain must leave the orphans alone.
    m.inject_stain(b, "delta-1").unwrap();
    let (kind, _, _) = m
        .save_nym_incremental(b, "pw", &StorageDest::Local)
        .unwrap();
    assert_eq!(kind, SaveKind::Delta);
    assert!(
        chunk_objects(&m).iter().any(|n| n.contains("#e1/")),
        "delta save must not sweep (or forget) the dead nym's chunks"
    );

    // Run the chain into compaction: now the orphans are swept.
    for i in 0..=DELTA_CHAIN_LIMIT {
        m.inject_stain(b, &format!("fill-{i}")).unwrap();
        m.save_nym_incremental(b, "pw", &StorageDest::Local)
            .unwrap();
    }
    assert!(
        chunk_objects(&m).iter().all(|n| !n.contains("#e1/")),
        "compaction must sweep the orphaned epoch-1 chunks: {:?}",
        chunk_objects(&m)
    );
}

#[test]
fn disk_save_restore_roundtrip_survives_detach() {
    let mut m = manager();
    let (id, _) = m
        .create_nym("disky", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Twitter).unwrap();
    m.inject_stain(id, "disk-marker").unwrap();
    let (size, dur) = m.save_nym(id, "pw", &StorageDest::Disk).unwrap();
    assert!(size > 0);
    // Disk saves are charged real device time (journal + heap + fsyncs).
    assert!(dur > SimDuration::ZERO);
    m.destroy_nym(id).unwrap();

    // Detach the device image, boot a brand-new manager, plug it in.
    let image = m.take_disk();
    let mut m2 = manager();
    m2.attach_disk(image).unwrap();
    let (id2, breakdown) = m2
        .restore_nym(
            "disky",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Disk,
        )
        .unwrap();
    // Like Local, disk restores need no ephemeral fetch nym.
    assert!(breakdown.ephemeral_fetch < SimDuration::from_secs(3));
    assert!(m2.nymbox(id2).unwrap().restored);
    assert!(m2.has_stain(id2, "disk-marker").unwrap());
}

/// Two nyms with one durable round-1 save on the disk backend, round-2
/// stains staged but unsaved — the setup every fleet crash test below
/// perturbs.
fn disk_fleet_round2() -> (NymManager, Vec<NymId>) {
    let mut m = manager();
    let mut ids = Vec::new();
    for name in ["fleet-a", "fleet-b"] {
        let (id, _) = m
            .create_nym(name, AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.inject_stain(id, "round-1").unwrap();
        ids.push(id);
    }
    let reqs: Vec<FleetSaveRequest> = ids
        .iter()
        .map(|id| FleetSaveRequest {
            id: *id,
            password: "pw",
            dest: &StorageDest::Disk,
        })
        .collect();
    m.save_nyms_incremental(&reqs).unwrap();
    for id in &ids {
        m.inject_stain(*id, "round-2").unwrap();
    }
    (m, ids)
}

#[test]
fn fleet_disk_crash_matrix_recovers_whole_fleet_pre_or_post() {
    use nymix_store::{CrashMode, FaultPlan};
    // Kill the device at every write/fsync boundary of a two-nym
    // batched save, materialize every covering crash mode, and recover
    // into a fresh manager: the *whole fleet* must come back at
    // round 1 or round 2 together — a crashed batch never splits the
    // fleet across save generations.
    let stride = if cfg!(debug_assertions) { 3u64 } else { 1 };
    let (mut seen_pre, mut seen_post) = (0u32, 0u32);
    let mut kill = 0u64;
    loop {
        let (mut m, ids) = disk_fleet_round2();
        let base_ops = m.disk_store().disk().ops();
        m.set_disk_fault_plan(FaultPlan::kill_at_op(base_ops + kill));
        let reqs: Vec<FleetSaveRequest> = ids
            .iter()
            .map(|id| FleetSaveRequest {
                id: *id,
                password: "pw",
                dest: &StorageDest::Disk,
            })
            .collect();
        if m.save_nyms_incremental(&reqs).is_ok() {
            break; // Kill point beyond the batch: matrix exhausted.
        }
        if !kill.is_multiple_of(stride) {
            kill += 1;
            continue;
        }
        for mode in CrashMode::covering_set(m.disk_store().disk().pending_writes(), 64) {
            let mut m2 = manager();
            m2.attach_disk(m.crash_disk(mode))
                .unwrap_or_else(|e| panic!("kill {kill} {mode:?}: recovery failed: {e}"));
            let mut round2 = Vec::new();
            for name in ["fleet-a", "fleet-b"] {
                let (rid, _) = m2
                    .restore_nym(
                        name,
                        AnonymizerKind::Tor,
                        UsageModel::Persistent,
                        "pw",
                        &StorageDest::Disk,
                    )
                    .unwrap_or_else(|e| panic!("kill {kill} {mode:?}: {name} lost: {e}"));
                assert!(
                    m2.has_stain(rid, "round-1").unwrap(),
                    "kill {kill} {mode:?}: {name} lost its round-1 state"
                );
                round2.push(m2.has_stain(rid, "round-2").unwrap());
            }
            assert_eq!(
                round2[0], round2[1],
                "kill {kill} {mode:?}: fleet split across save generations"
            );
            if round2[0] {
                seen_post += 1;
            } else {
                seen_pre += 1;
            }
        }
        kill += 1;
    }
    assert!(kill >= 4, "matrix covered only {kill} kill points");
    assert!(seen_pre > 0, "no crash point preserved the round-1 fleet");
    assert!(seen_post > 0, "no crash point reached the round-2 fleet");
}
