//! The restore (read) side of the store pipeline: fetch a chain's
//! base, Merkle-verified delta replay, and chunk-manifest resolution,
//! all failing closed on anything missing, tampered or transplanted.
//! Split from [`super::pipeline`] (the write side) purely for module
//! size; the two share the destination-backend plumbing defined there.

use nymix_net::Ip;
use nymix_store::cas::{self, ChunkIndex, ChunkManifest};
use nymix_store::{
    ArchiveCommitment, DeltaArchive, NymArchive, ObjectBackend, SealKey, SealScratch,
    DELTA_CHAIN_LIMIT,
};

use super::env::Environment;
use super::env::{dest_backend, storage_err};
use super::pipeline::{chunk_prefix, delta_label, EPOCH_RECORD};
use super::{NymManagerError, StorageDest};

/// What the read side of the pipeline recovers for a restore: the
/// chain key, the replayed archive (resolved for use — chunked records
/// reassembled and verified), and the stored-form bytes to swap back
/// before the archive becomes the continued chain's base.
pub(super) struct FetchedChain {
    pub archive: NymArchive,
    /// `(record name, stored manifest bytes)` for every resolved
    /// record — swapped back into `archive` when it becomes the
    /// chain's stored-form base.
    pub stored_overrides: Vec<(String, Vec<u8>)>,
    pub key: SealKey,
    pub epoch: Option<u64>,
    pub delta_count: usize,
    pub chunk_index: ChunkIndex,
    /// The commitment cache built over the base and advanced through
    /// every verified delta replay — it covers the stored form the
    /// continued chain starts from, so the session's next delta save
    /// is O(dirty) with no rebuild.
    pub commitment: ArchiveCommitment,
    pub fetched_bytes: usize,
}

/// Fetches and verifies a whole chain: base blob (one KDF from its
/// salt), Merkle-verified delta replay, then manifest resolution —
/// fetch, name-bound unseal, content-hash check, reassemble — failing
/// closed on anything missing, tampered or transplanted.
pub(super) fn fetch_chain(
    env: &mut Environment,
    label: &str,
    password: &str,
    dest: &StorageDest,
    fetch_exit: Option<Ip>,
    work: &mut Vec<u8>,
    scratch: &mut SealScratch,
) -> Result<FetchedChain, NymManagerError> {
    let seal_err = |e: nymix_store::SealedError| NymManagerError::Storage(e.to_string());
    nymix_obs::sim_clock(env.clock.as_micros());
    let now = env.clock;
    let mut backend = dest_backend(
        &mut env.cloud,
        &mut env.local,
        &mut env.disk,
        env.striped.as_mut(),
        now,
        dest,
        fetch_exit,
    )?;
    let mut fetched_bytes = 0usize;

    // One KDF opens the whole chain: re-derive the chain key from the
    // base blob's salt, then open base + deltas keyed. The blob is
    // unsealed straight off the backend's borrow — no working copy
    // beyond the (reused) ciphertext buffer.
    let (chain_key, mut archive) = {
        let _span = nymix_obs::span!("fetch");
        let base_blob = backend
            .get(label)
            .map_err(storage_err)?
            .ok_or(NymManagerError::NothingStored)?;
        fetched_bytes += base_blob.len();
        let salt = *nymix_store::blob_salt(base_blob)
            .ok_or_else(|| NymManagerError::Storage("malformed sealed nym".into()))?;
        let chain_key = SealKey::from_salt(password, label, &salt);
        let bytes = nymix_store::unseal_keyed_raw_into(base_blob, &chain_key, label, work, scratch)
            .map_err(seal_err)?;
        let archive =
            NymArchive::from_bytes(bytes).map_err(|e| NymManagerError::Storage(e.to_string()))?;
        (chain_key, archive)
    };

    // Replay the delta chain: each blob is bound to its slot label (no
    // splicing), each replay is Merkle-verified against the delta's
    // full-record-set commitment — any mismatch aborts the restore
    // instead of resurrecting silently-wrong state. The commitment
    // accumulator is built once over the base, then advanced leaf-wise
    // per delta, so verification rehashes only each delta's dirty
    // records instead of the whole record set per replay.
    let mut commitment = ArchiveCommitment::build(&archive);
    let epoch = archive
        .get(EPOCH_RECORD)
        .and_then(|b| <[u8; 8]>::try_from(b).ok())
        .map(u64::from_le_bytes);
    let mut delta_count = 0;
    if let Some(epoch) = epoch {
        let _span = nymix_obs::span!("replay", "epoch" => epoch);
        for index in 1..=DELTA_CHAIN_LIMIT {
            let dlabel = delta_label(label, epoch, index);
            let delta = {
                let Some(dblob) = backend.get(&dlabel).map_err(storage_err)? else {
                    break;
                };
                fetched_bytes += dblob.len();
                let bytes =
                    nymix_store::unseal_keyed_raw_into(dblob, &chain_key, &dlabel, work, scratch)
                        .map_err(seal_err)?;
                DeltaArchive::from_bytes(bytes)
                    .map_err(|e| NymManagerError::Storage(e.to_string()))?
            };
            delta
                .apply_with(&mut archive, &mut commitment)
                .map_err(|e| NymManagerError::Storage(e.to_string()))?;
            delta_count = index;
        }
    }

    // The replayed archive — verified against the chain's Merkle
    // commitment — is the *stored* form: large records hold chunk
    // manifests. Resolve each manifest in place (the stored bytes swap
    // out, to swap back when the archive becomes the continued chain's
    // base — no whole-archive clone), verifying every chunk against
    // its name-bound seal and content hash.
    let mut chunk_index = ChunkIndex::new();
    let mut stored_overrides = Vec::new();
    if let Some(epoch) = epoch {
        let _span = nymix_obs::span!("resolve", "epoch" => epoch);
        let prefix = chunk_prefix(label, epoch);
        let manifests: Vec<(String, ChunkManifest)> = archive
            .records()
            .filter_map(|(n, d)| {
                ChunkManifest::from_bytes(d)
                    .ok()
                    .map(|m| (n.to_string(), m))
            })
            .collect();
        for (record_name, manifest) in manifests {
            chunk_index.retain_manifest(&manifest);
            let mut resolved = Vec::with_capacity(manifest.total_len());
            // Absent and failed are different restore outcomes: a
            // manifest-required chunk the backend *answered* is gone
            // (GC'd away, provider withheld it) is a permanent
            // MissingObject — the stored state is incomplete — while a
            // backend that couldn't be reached leaves the state
            // presumed intact behind an Unavailable error.
            fetched_bytes += cas::fetch_record_into(
                &manifest,
                &chain_key,
                &prefix,
                &mut backend,
                work,
                scratch,
                &mut resolved,
            )
            .map_err(|e| match e {
                cas::CasError::MissingChunk => NymManagerError::MissingObject(format!(
                    "chunk of record {record_name:?} under {prefix:?}"
                )),
                cas::CasError::Backend(be) => storage_err(be),
                other => NymManagerError::Storage(other.to_string()),
            })?;
            let stored = archive
                .replace(&record_name, resolved)
                .expect("record present above");
            stored_overrides.push((record_name, stored));
        }
    }

    Ok(FetchedChain {
        archive,
        stored_overrides,
        key: chain_key,
        epoch,
        delta_count,
        chunk_index,
        commitment,
        fetched_bytes,
    })
}
