//! The **Environment** layer: the shared simulated world.
//!
//! Everything every nym sees in common lives here — the hypervisor
//! (VMs, memory, CPU), the packet fabric (isolation), the fluid flow
//! network (timing), DNS, the relay directory, the simulation clock,
//! the world RNG, and the storage endpoints (cloud providers, local
//! partition). The layering rule: an [`Environment`] never holds
//! per-nym state. Per-nym state — nymbox, anonymizer, browser,
//! snapshot chains, sealing scratch — lives in
//! [`NymSession`](super::session::NymSession), one value per nym, so
//! no `&mut` on one nym's session can alias another's. Sessions take
//! `&mut Environment` for exactly the operations that genuinely touch
//! the shared world (booting VMs, driving flows, advancing the clock).

use nymix_anon::tor::{TorClient, TorDirectory};
use nymix_anon::{Anonymizer, AnonymizerKind, DissentNet, Incognito, Sweet};
use nymix_net::dns::DnsDb;
use nymix_net::flow::calib as netcal;
use nymix_net::{Fabric, FlowNet, Ip, LinkId, Mac, NodeId, NodeKind};
use nymix_sim::{DiskProfile, Rng, SimDuration, SimTime};
use nymix_store::cloud::CloudSession;
use nymix_store::{
    BackendError, CloudChild, CloudProvider, DiskStore, LocalStore, ObjectBackend, PlacementStore,
};
use nymix_vmm::Hypervisor;

use std::collections::BTreeMap;

use super::{NymManagerError, StorageDest};

/// The shared simulated world every nym runs in.
pub struct Environment {
    pub(super) hv: Hypervisor,
    pub(super) fabric: Fabric,
    pub(super) flows: FlowNet,
    pub(super) access_link: LinkId,
    pub(super) dns: DnsDb,
    pub(super) directory: TorDirectory,
    pub(super) rng: Rng,
    pub(super) clock: SimTime,
    pub(super) cloud: BTreeMap<String, CloudProvider>,
    pub(super) local: LocalStore,
    pub(super) disk: DiskStore,
    pub(super) striped: Option<PlacementStore<CloudChild>>,
    pub(super) disk_profile: DiskProfile,
    pub(super) browser_scale: u64,
    // Fabric landmarks.
    pub(super) hyp_node: NodeId,
    pub(super) internet_node: NodeId,
    pub(super) intranet_node: NodeId,
    pub(super) public_ip: Ip,
    pub(super) lan_gateway_ip: Ip,
}

impl Environment {
    /// Boots the paper's testbed topology on a host with
    /// `host_ram_mib` MiB of RAM (minimal base image for speed;
    /// `browser_scale` divides browser byte volumes).
    pub(super) fn new(seed: u64, browser_scale: u64, host_ram_mib: u32) -> Self {
        let mut fabric = Fabric::new();
        let public_ip = Ip::parse("203.0.113.9");
        let lan_gateway_ip = Ip::parse("192.168.1.1");

        // The hypervisor host: NAT from nymboxes to the access link,
        // plus a leg on the local intranet.
        let hyp_node = fabric.add_node("hypervisor", NodeKind::Nat);
        let hyp_wan = fabric.add_iface(hyp_node, Mac::host_nic(1), public_ip);
        let hyp_lan = fabric.add_iface(hyp_node, Mac::host_nic(2), Ip::parse("192.168.1.100"));

        // The wide-area Internet: owns every evaluation-site address.
        let internet_node = fabric.add_node("internet", NodeKind::Internet);
        let inet_iface =
            fabric.add_iface(internet_node, Mac::host_nic(3), Ip::parse("198.51.100.1"));
        let dns = DnsDb::with_eval_sites();
        for (i, name) in [
            "gmail.com",
            "twitter.com",
            "youtube.com",
            "blog.torproject.org",
            "bbc.co.uk",
            "facebook.com",
            "slashdot.org",
            "espn.com",
            "kernel.deterlab.net",
            "cloud.dropbox.example",
            "cloud.drive.example",
        ]
        .iter()
        .enumerate()
        {
            let ip = dns.resolve(name).expect("eval site registered");
            fabric.add_iface(internet_node, Mac::host_nic(100 + i as u32), ip);
        }
        // Tor relays live on the internet node too (198.18.0.0/15).
        for i in 0..4u32 {
            fabric.add_iface(
                internet_node,
                Mac::host_nic(200 + i),
                Ip([198, 18, 0, i as u8]),
            );
        }
        fabric.connect(hyp_node, hyp_wan, internet_node, inet_iface);
        fabric.add_route(internet_node, Ip::parse("0.0.0.0"), 0, inet_iface);

        // The local intranet (what CommVMs must NOT reach, §5.1).
        let intranet_node = fabric.add_node("intranet-fileserver", NodeKind::Host);
        let intr_iface = fabric.add_iface(intranet_node, Mac::host_nic(4), lan_gateway_ip);
        fabric.connect(hyp_node, hyp_lan, intranet_node, intr_iface);
        fabric.add_route(intranet_node, Ip::parse("0.0.0.0"), 0, intr_iface);

        // Hypervisor routing: LAN to the LAN leg, everything else WAN.
        fabric.add_route(hyp_node, Ip::parse("0.0.0.0"), 0, hyp_wan);
        fabric.add_route(hyp_node, Ip::parse("192.168.1.0"), 24, hyp_lan);

        // Fluid network: the shaped 10 Mbit/s access link.
        let mut flows = FlowNet::new();
        let access_link = flows.add_link(netcal::ACCESS_LINK_BPS, netcal::ACCESS_ONE_WAY);

        let mut rng = Rng::seed_from(seed);
        let directory = TorDirectory::generate(rng.next_u64(), 120);

        // Boot-time DHCP: the only LAN traffic an idle Nymix host emits
        // (§5.1: "The Nymix hypervisor emitted only traffic for DHCP and
        // anonymizer traffic").
        let dhcp =
            nymix_net::fabric::Packet::udp(Ip::parse("192.168.1.100"), lan_gateway_ip, 67, 300);
        let _ = fabric.send(hyp_node, dhcp);

        Self {
            // paper_testbed_minimal() at the paper's 16 GiB; larger
            // hosts run bigger fleets (the admission model is unchanged).
            hv: Hypervisor::new(
                host_ram_mib,
                nymix_fs::BaseImage::minimal().to_layer(),
                nymix_vmm::CpuHost::paper_testbed(),
            ),
            fabric,
            flows,
            access_link,
            dns,
            directory,
            rng,
            clock: SimTime::ZERO,
            cloud: BTreeMap::new(),
            local: LocalStore::new(),
            disk: DiskStore::new(),
            striped: None,
            disk_profile: DiskProfile::ssd(),
            browser_scale,
            hyp_node,
            internet_node,
            intranet_node,
            public_ip,
            lan_gateway_ip,
        }
    }

    /// Boots a fresh anonymizer of the requested kind against the
    /// shared relay directory (drawing from the world RNG).
    pub(super) fn build_anonymizer(&mut self, kind: AnonymizerKind) -> Box<dyn Anonymizer> {
        match kind {
            AnonymizerKind::Tor => {
                let mut tor = TorClient::bootstrap(&self.directory, &mut self.rng);
                // The startup phases include the circuit build; give the
                // client its live circuit so exit_address is a real exit.
                let _ = tor.build_circuit(&self.directory, &mut self.rng);
                Box::new(tor)
            }
            AnonymizerKind::Dissent => Box::new(DissentNet::new(8, 3, 512, self.rng.next_u64())),
            AnonymizerKind::Incognito => Box::new(Incognito::new()),
            AnonymizerKind::Sweet => Box::new(Sweet::new()),
        }
    }

    /// Pushes `wire_bytes` through the shared access link as one flow,
    /// advancing the fluid network, and returns the transfer time.
    pub(super) fn run_access_flow(&mut self, wire_bytes: f64) -> SimDuration {
        let start = self.clock;
        let flow = self
            .flows
            .start_flow(start, vec![self.access_link], wire_bytes);
        let mut finish = start;
        while self.flows.flow_remaining(flow).is_some() {
            let next = self
                .flows
                .next_event()
                .expect("flow pending implies an event");
            self.flows.advance(next);
            finish = next;
        }
        if let Some(t) = self.flows.completions().get(&flow) {
            finish = *t;
        }
        finish.since(start)
    }

    /// Seconds to move `wire_bytes` across the access link right now
    /// (serial ops: assumes the link is otherwise idle).
    pub(super) fn transfer_secs(wire_bytes: f64) -> f64 {
        wire_bytes / netcal::ACCESS_LINK_BPS + netcal::ACCESS_ONE_WAY.as_secs_f64()
    }
}

/// Deterministic semi-compressible filler (directory documents are
/// text-ish: ~half repeated tokens, half digest material).
pub(super) fn deterministic_blob(tag: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = tag ^ 0x9e3779b97f4a7c15;
    while out.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if x & 1 == 0 {
            out.extend_from_slice(b"router relay-descriptor bandwidth=");
        }
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// The storage destination presented as a flat [`ObjectBackend`]: a
/// credentialed cloud session observing the anonymizer's exit address,
/// the local partition, or the crash-consistent journaled disk.
/// Everything the save/restore pipeline ships — base archives, deltas,
/// chunk objects — moves through this one interface.
pub(super) enum DestBackend<'a> {
    Cloud(CloudSession<'a>),
    Local(&'a mut LocalStore),
    Disk(&'a mut DiskStore),
    Striped(&'a mut PlacementStore<CloudChild>),
}

impl ObjectBackend for DestBackend<'_> {
    fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), nymix_store::BackendError> {
        match self {
            DestBackend::Cloud(s) => s.put(name, data),
            DestBackend::Local(s) => ObjectBackend::put(*s, name, data),
            DestBackend::Disk(s) => ObjectBackend::put(*s, name, data),
            DestBackend::Striped(s) => ObjectBackend::put(*s, name, data),
        }
    }

    fn put_many(
        &mut self,
        objects: Vec<(String, Vec<u8>)>,
    ) -> Result<(), nymix_store::BackendError> {
        match self {
            DestBackend::Cloud(s) => s.put_many(objects),
            DestBackend::Local(s) => ObjectBackend::put_many(*s, objects),
            DestBackend::Disk(s) => ObjectBackend::put_many(*s, objects),
            DestBackend::Striped(s) => ObjectBackend::put_many(*s, objects),
        }
    }

    fn get(&mut self, name: &str) -> Result<Option<&[u8]>, nymix_store::BackendError> {
        match self {
            DestBackend::Cloud(s) => s.get(name),
            DestBackend::Local(s) => ObjectBackend::get(*s, name),
            DestBackend::Disk(s) => ObjectBackend::get(*s, name),
            DestBackend::Striped(s) => ObjectBackend::get(*s, name),
        }
    }

    fn delete(&mut self, name: &str) -> Result<bool, nymix_store::BackendError> {
        match self {
            DestBackend::Cloud(s) => s.delete(name),
            DestBackend::Local(s) => ObjectBackend::delete(*s, name),
            DestBackend::Disk(s) => ObjectBackend::delete(*s, name),
            DestBackend::Striped(s) => ObjectBackend::delete(*s, name),
        }
    }

    fn list(&mut self, out: &mut Vec<String>) -> Result<(), nymix_store::BackendError> {
        match self {
            DestBackend::Cloud(s) => s.list(out),
            DestBackend::Local(s) => ObjectBackend::list(*s, out),
            DestBackend::Disk(s) => ObjectBackend::list(*s, out),
            DestBackend::Striped(s) => ObjectBackend::list(*s, out),
        }
    }

    /// Puts plus sweeps in one transaction. On the journaled disk this
    /// is a single atomic batch — a crash mid-save leaves either the
    /// old objects (sweep included) or the new ones, never a blend. On
    /// cloud/local (no durability to protect) puts land first and
    /// failed sweeps are tolerated, preserving the pipeline's historic
    /// best-effort delete semantics.
    fn apply_batch(
        &mut self,
        puts: Vec<(String, Vec<u8>)>,
        deletes: Vec<String>,
    ) -> Result<(), nymix_store::BackendError> {
        match self {
            DestBackend::Disk(s) => ObjectBackend::apply_batch(*s, puts, deletes),
            // The placement store manages sweep semantics itself: a
            // delete that can't reach a child is queued and flushed by
            // the next repair pass rather than tolerated-and-forgotten
            // (a forgotten delete would resurrect on the child's
            // recovery).
            DestBackend::Striped(s) => ObjectBackend::apply_batch(*s, puts, deletes),
            _ => {
                self.put_many(puts)?;
                for name in &deletes {
                    let _ = self.delete(name);
                }
                Ok(())
            }
        }
    }
}

/// Opens the storage destination as an [`ObjectBackend`]: a
/// credentialed cloud session (which needs the fetching/saving
/// anonymizer's `exit` address — that is all the provider ever
/// observes) or the local partition.
pub(super) fn dest_backend<'a>(
    cloud: &'a mut BTreeMap<String, CloudProvider>,
    local: &'a mut LocalStore,
    disk: &'a mut DiskStore,
    striped: Option<&'a mut PlacementStore<CloudChild>>,
    now: SimTime,
    dest: &StorageDest,
    exit: Option<Ip>,
) -> Result<DestBackend<'a>, NymManagerError> {
    match dest {
        StorageDest::Cloud {
            provider,
            account,
            credential,
        } => {
            let p = cloud
                .get_mut(provider)
                .ok_or_else(|| NymManagerError::NoSuchProvider(provider.clone()))?;
            Ok(DestBackend::Cloud(p.session(
                account,
                credential,
                exit.expect("cloud access rides an anonymizer with an exit"),
            )))
        }
        StorageDest::Local => Ok(DestBackend::Local(local)),
        StorageDest::Disk => Ok(DestBackend::Disk(disk)),
        StorageDest::Striped => {
            let s = striped
                .ok_or_else(|| NymManagerError::NoSuchProvider("striped placement".into()))?;
            // Child providers run on the shared sim clock (outage
            // deadlines), and observe only the anonymizer's exit.
            s.set_now(now);
            s.set_observed_ip(exit.expect("striped access rides an anonymizer with an exit"));
            Ok(DestBackend::Striped(s))
        }
    }
}

/// Classifies a backend failure for the manager's API: unreachability
/// (an outage, or throttling past the retry budget) is
/// [`NymManagerError::Unavailable`] — the stored state is presumed
/// intact, retry later — while everything else (denial, corruption)
/// stays a permanent [`NymManagerError::Storage`] failure.
pub(super) fn storage_err(e: BackendError) -> NymManagerError {
    match e {
        BackendError::Unavailable(s) | BackendError::Transient(s) => {
            NymManagerError::Unavailable(s)
        }
        e @ (BackendError::Denied | BackendError::Other(_)) => {
            NymManagerError::Storage(e.to_string())
        }
    }
}
