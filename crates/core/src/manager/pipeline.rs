//! The **StorePipeline** layer: staged, batched save/restore.
//!
//! The §3.5 store-nym workflow — pause → sync → compress → encrypt →
//! upload — runs here as four explicit stages over any number of
//! sessions at once:
//!
//! 1. **Capture** (needs the [`Environment`]): pause the nym's VMs,
//!    detect dirty records from the writable layers' generation
//!    counters, and stage the new archive. Sequential — it touches the
//!    shared hypervisor.
//! 2. **Chunk**: convert large dirty records to `"NYMC"` manifests.
//!    Chunk hashing is batched **across sessions** with
//!    [`nymix_store::build_manifests`], so equal-length chunks from
//!    different nyms share `sha256_x4` passes.
//! 3. **Seal**: derive/reuse the chain key, seal chunk objects
//!    (entropy-gated) and the delta or full blob. Each session owns
//!    its scratch arena, RNG and chain key, so N sessions seal on N
//!    threads with no locks and bit-deterministic output.
//! 4. **Upload**: land every staged object through
//!    [`ObjectBackend::put_many`], grouped per destination — one
//!    authenticated round trip per backend instead of one per object —
//!    then sweep retired objects.
//!
//! The pipeline also owns the **label registry**: the highest chain
//! epoch ever used per storage label, plus chunk objects orphaned by
//! destroyed sessions. Sessions own their live chains
//! (`ChainState`); the registry is what outlives them, so a
//! recreated nym can never collide with a dead nym's stale objects,
//! and a session whose label was taken over by another nym falls back
//! to a full save (a new epoch) instead of appending deltas to a base
//! it no longer owns.

use nymix_net::Ip;
use nymix_sim::{Rng, SimDuration};
use nymix_store::cas::{self, ChunkIndex, ChunkManifest};
use nymix_store::{
    seal_delta_keyed_into, seal_keyed_into, ArchiveCommitment, DeltaArchive, NymArchive,
    ObjectBackend, SealKey, SealScratch, CHUNK_RECORD_THRESHOLD, DELTA_CHAIN_LIMIT,
};

use std::collections::BTreeMap;

use super::env::{dest_backend, storage_err, DestBackend, Environment};
use super::session::{storage_label, ChainState, NymSession};
use super::{NymId, NymManagerError, SaveKind, StorageDest};

/// Record name carrying the chain epoch inside each full archive: a
/// compacting save bumps it, so deltas stranded by an older epoch are
/// never even fetched on restore.
pub(super) const EPOCH_RECORD: &str = "snapshot.epoch";

/// Storage object name of delta `index` in chain epoch `epoch`.
pub(super) fn delta_label(label: &str, epoch: u64, index: usize) -> String {
    format!("{label}#e{epoch}.{index}")
}

/// Chunk-object namespace of chain epoch `epoch` (chunks live at
/// `"{prefix}/c/{chunk_id}"`, sealed under the epoch's key with that
/// full name as AEAD data — see [`nymix_store::cas`]).
pub(super) fn chunk_prefix(label: &str, epoch: u64) -> String {
    format!("{label}#e{epoch}")
}

/// A record's logical (pre-chunking) payload length: manifests report
/// the length of the content they describe, raw records their own.
pub(super) fn record_logical_len(data: &[u8]) -> usize {
    ChunkManifest::from_bytes(data).map_or(data.len(), |m| m.total_len())
}

/// What the label registry remembers after the chains under a label
/// die: the highest epoch ever used (epoch numbers must never repeat
/// per label) and the chunk objects a destroyed session's chain left
/// behind, swept at the next compaction under that label.
#[derive(Default)]
struct LabelState {
    last_epoch: u64,
    orphaned_objects: Vec<String>,
}

/// One save request of a (possibly multi-session) pipeline run.
pub(super) struct SaveRequest<'a> {
    pub id: NymId,
    pub password: &'a str,
    pub dest: &'a StorageDest,
    pub allow_delta: bool,
}

/// One save's result.
pub(super) struct SaveOutcome {
    pub kind: SaveKind,
    pub uploaded: usize,
    pub duration: SimDuration,
    /// Logical `(anonvm, commvm, other)` payload bytes (Figure 6).
    pub breakdown: (usize, usize, usize),
}

/// Capture-stage output for one session: the staged next archive with
/// everything the later (env-free) stages need, fully owned.
struct SavePlan<'a> {
    req: SaveRequest<'a>,
    label: String,
    exit_ip: Ip,
    wire_overhead: f64,
    next: NymArchive,
    /// `(record name, previous stored bytes)` per captured record —
    /// the delta stage compares these against the new bytes, so
    /// unchanged re-captures never ship.
    dirty_old: Vec<(&'static str, Option<Vec<u8>>)>,
    anon_gen: u64,
    comm_gen: u64,
    /// `(key, epoch, delta_count)` when a usable chain was carried.
    chain: Option<(SealKey, u64, usize)>,
    /// The carried chain's Merkle commitment cache (empty when no
    /// chain carried). A delta save recomputes only dirty leaves plus
    /// the root path against it; a full save refreshes it in place so
    /// clean carried records keep their cached leaf hashes.
    commitment: ArchiveCommitment,
    chunk_index: ChunkIndex,
    /// Chunk objects of the carried chain's epoch (swept on compaction).
    prev_chunk_objects: Vec<String>,
    last_epoch: Option<u64>,
    want_delta: bool,
    /// `(name, raw bytes, manifest)` per chunk-converted record.
    chunked: Vec<(String, Vec<u8>, ChunkManifest)>,
    delta: Option<DeltaArchive>,
    breakdown: (usize, usize, usize),
}

/// Seal-stage input: everything one thread needs, owned and `Send`.
struct SealJob<'a> {
    plan: SavePlan<'a>,
    scratch: SealScratch,
    rng: Rng,
    /// Orphaned objects registered under this label (swept on
    /// compaction alongside the carried chain's).
    orphaned_objects: Vec<String>,
}

/// Seal-stage output: staged uploads plus the state flowing back into
/// the session's chain.
struct SealedSave<'a> {
    plan: SavePlan<'a>,
    scratch: SealScratch,
    rng: Rng,
    staged: Vec<(String, Vec<u8>)>,
    deletes: Vec<String>,
    uploaded: usize,
    kind: SaveKind,
    key: SealKey,
    epoch: u64,
    delta_count: usize,
    chunk_index: ChunkIndex,
    /// Commitment cache over the sealed archive, flowing back into the
    /// session's `ChainState` so the next delta save stays O(dirty).
    commitment: ArchiveCommitment,
}

/// The store pipeline: save/restore policy plus the state that must
/// outlive any single session — the label registry and the scratch
/// pool sessions draw their sealing arenas from.
pub(super) struct StorePipeline {
    /// Whether incremental saves split large records into
    /// content-addressed chunks (see [`nymix_store::cas`]). On by
    /// default; disabling it keeps record-granular NYMD deltas.
    pub(super) chunking: bool,
    labels: BTreeMap<String, LabelState>,
    /// Warm [`SealScratch`] arenas from destroyed sessions, handed to
    /// the next session created — fleet churn doesn't re-grow arenas.
    scratch_pool: Vec<SealScratch>,
}

impl StorePipeline {
    pub(super) fn new() -> Self {
        Self {
            chunking: true,
            labels: BTreeMap::new(),
            scratch_pool: Vec::new(),
        }
    }

    /// A sealing arena for a new session: a warm one from the pool if
    /// available.
    pub(super) fn acquire_scratch(&mut self) -> SealScratch {
        self.scratch_pool.pop().unwrap_or_default()
    }

    /// Returns a destroyed session's arena to the pool.
    pub(super) fn release_scratch(&mut self, scratch: SealScratch) {
        self.scratch_pool.push(scratch);
    }

    /// Registers a dying session's chains: remembers each label's
    /// epoch (it must never be reused) and the chain's chunk objects
    /// (swept at the next compaction under that label).
    pub(super) fn retire_chains(&mut self, chains: impl IntoIterator<Item = (String, ChainState)>) {
        for (label, chain) in chains {
            let prefix = chunk_prefix(&label, chain.epoch);
            let entry = self.labels.entry(label).or_default();
            if chain.epoch >= entry.last_epoch {
                entry.last_epoch = chain.epoch;
            }
            entry.orphaned_objects.extend(
                chain
                    .chunks
                    .ids()
                    .map(|id| cas::chunk_object_name(&prefix, id)),
            );
        }
    }

    /// Records that `epoch` is now in use under `label` (restores and
    /// full saves call this so epoch numbers stay globally fresh).
    pub(super) fn note_epoch(&mut self, label: &str, epoch: u64) {
        let entry = self.labels.entry(label.to_string()).or_default();
        if epoch >= entry.last_epoch {
            entry.last_epoch = epoch;
        }
    }

    pub(super) fn last_epoch(&self, label: &str) -> Option<u64> {
        self.labels
            .get(label)
            .map(|l| l.last_epoch)
            .filter(|e| *e > 0)
    }

    /// Runs the full staged pipeline over every request: capture →
    /// chunk → seal (threaded when more than one session saves) →
    /// upload. Outcomes are in request order; the simulation clock
    /// advances once, by the concurrent completion time of the batch.
    ///
    /// On a single-core host the capture/chunk/seal stages run *fused*
    /// per session instead (each session's raw records go cold-to-hot
    /// through chunking and sealing back to back, and are dropped
    /// before the next session captures) — staging only pays when the
    /// seal stage can actually spread across threads. Both schedules
    /// produce bit-identical output: every job's randomness comes from
    /// its session's own forked RNG.
    pub(super) fn save_many(
        &mut self,
        env: &mut Environment,
        sessions: &mut BTreeMap<NymId, NymSession>,
        reqs: Vec<SaveRequest<'_>>,
    ) -> Result<Vec<SaveOutcome>, NymManagerError> {
        // Validate every id before any capture runs: a capture moves
        // the session's chain into its plan, so failing mid-batch on a
        // bad id would drop the chains of every request before it.
        for req in &reqs {
            if !sessions.contains_key(&req.id) {
                return Err(NymManagerError::NoSuchNym(req.id));
            }
        }
        nymix_obs::sim_clock(env.clock.as_micros());
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(reqs.len());
        let sealed = if workers <= 1 {
            // Fused schedule: capture → chunk → delta → seal, one
            // session at a time.
            let mut sealed = Vec::with_capacity(reqs.len());
            for req in reqs {
                let mut plans = vec![self.capture(env, sessions, req)?];
                self.chunk_stage(&mut plans, false);
                build_delta(&mut plans[0]);
                self.full_fallback(env, sessions, &mut plans)?;
                let plan = plans.pop().expect("one plan");
                sealed.push(seal_one(self.seal_job(sessions, plan)));
            }
            sealed
        } else {
            // Staged schedule: capture everything (sequential — it
            // touches the shared hypervisor), batch the chunk hashing
            // across sessions, then seal on one thread per session.
            let mut plans = Vec::with_capacity(reqs.len());
            for req in reqs {
                plans.push(self.capture(env, sessions, req)?);
            }
            self.chunk_stage(&mut plans, false);
            for plan in &mut plans {
                build_delta(plan);
            }
            // Delta didn't pay off (or wasn't possible) for some
            // plans: re-capture their carried-over clean layers raw so
            // the new base is self-contained, then chunk the
            // re-captures (batched across plans again).
            self.full_fallback(env, sessions, &mut plans)?;
            let jobs: Vec<SealJob> = plans
                .into_iter()
                .map(|plan| self.seal_job(sessions, plan))
                .collect();
            seal_stage(jobs, workers, env.clock.as_micros())
        };

        // Stage 4: upload (grouped per destination) + bookkeeping.
        let mut outcomes = Vec::with_capacity(sealed.len());
        // Striped uploads ship n/k redundant bytes per sealed byte
        // (k-of-n erasure shards, plus negligible per-shard headers).
        let striped_overhead = env
            .striped
            .as_ref()
            .map_or(1.0, |s| s.redundancy_overhead());
        let mut cloud_wire_total = 0.0f64;
        for s in &sealed {
            let wire =
                (1.0 + s.plan.wire_overhead) * (s.uploaded as f64 * env.browser_scale as f64);
            match s.plan.req.dest {
                StorageDest::Cloud { .. } => cloud_wire_total += wire,
                StorageDest::Striped => cloud_wire_total += wire * striped_overhead,
                StorageDest::Local | StorageDest::Disk => {}
            }
        }
        let batched = sealed.len() > 1;
        let mut batch_duration = SimDuration::ZERO;
        let mut group: Vec<SealedSave> = Vec::new();
        let mut pending = sealed.into_iter().peekable();
        while let Some(s) = pending.next() {
            let same_target = |a: &SealedSave, b: &SealedSave| {
                a.plan.req.dest == b.plan.req.dest
                    && (matches!(a.plan.req.dest, StorageDest::Local | StorageDest::Disk)
                        || a.plan.exit_ip == b.plan.exit_ip)
            };
            let flush = match pending.peek() {
                Some(next) => !same_target(&s, next),
                None => true,
            };
            group.push(s);
            if !flush {
                continue;
            }
            // One backend open, one batch — every staged put plus every
            // sweep — for the whole group. On the journaled disk the
            // batch is a single atomic transaction: a crash mid-save
            // leaves either every nym's previous version (with its
            // chunk objects) or every new one, never a mixture.
            let dest = group[0].plan.req.dest;
            let exit = group[0].plan.exit_ip;
            let disk_before = env.disk.device_stats();
            let now = env.clock;
            let mut cloud_backoff = SimDuration::ZERO;
            {
                let mut backend = dest_backend(
                    &mut env.cloud,
                    &mut env.local,
                    &mut env.disk,
                    env.striped.as_mut(),
                    now,
                    dest,
                    Some(exit),
                )?;
                let staged: Vec<(String, Vec<u8>)> = group
                    .iter_mut()
                    .flat_map(|s| std::mem::take(&mut s.staged))
                    .collect();
                let deletes: Vec<String> = group
                    .iter_mut()
                    .flat_map(|s| std::mem::take(&mut s.deletes))
                    .collect();
                backend.apply_batch(staged, deletes).map_err(storage_err)?;
                // Transient-failure retries slept on simulated backoff;
                // charge it to this batch's wall clock.
                match &mut backend {
                    DestBackend::Cloud(session) => {
                        cloud_backoff = session.take_accrued_backoff();
                    }
                    DestBackend::Striped(s) => cloud_backoff = s.take_accrued_backoff(),
                    DestBackend::Local(_) | DestBackend::Disk(_) => {}
                }
            }
            // Disk saves cost the actual device I/O the batch incurred
            // (journal + heap writes and both fsync barriers), priced
            // by the environment's disk profile.
            let disk_io = {
                let io = env.disk.device_stats().since(&disk_before);
                env.disk_profile.io_time(
                    io.bytes_written,
                    io.bytes_read,
                    io.fsyncs,
                    io.writes + io.reads,
                )
            };
            for s in group.drain(..) {
                let duration = match s.plan.req.dest {
                    StorageDest::Cloud { .. } => {
                        // The batch's cloud uploads share the access
                        // link; a lone save sees exactly the old
                        // serial-transfer time.
                        let wire = if batched {
                            cloud_wire_total
                        } else {
                            (1.0 + s.plan.wire_overhead)
                                * (s.uploaded as f64 * env.browser_scale as f64)
                        };
                        SimDuration::from_secs_f64(Environment::transfer_secs(wire)) + cloud_backoff
                    }
                    // Striped saves ride the same access link as cloud
                    // ones, amplified by the n/k shard redundancy.
                    StorageDest::Striped => {
                        let wire = if batched {
                            cloud_wire_total
                        } else {
                            (1.0 + s.plan.wire_overhead)
                                * (s.uploaded as f64 * env.browser_scale as f64)
                                * striped_overhead
                        };
                        SimDuration::from_secs_f64(Environment::transfer_secs(wire)) + cloud_backoff
                    }
                    // One media sync flushes the whole batch.
                    StorageDest::Local => SimDuration::from_millis(300),
                    // The journaled batch commit, at modeled device speed.
                    StorageDest::Disk => disk_io,
                };
                batch_duration = batch_duration.max(duration);
                // The per-session upload span: its wall time is the
                // (tiny) bookkeeping cost; the transfer itself exists
                // only in modeled time, charged explicitly.
                let mut up_span = nymix_obs::span!(
                    "upload", "session" => s.plan.req.id.0, "objects" => s.uploaded
                );
                up_span.add_modeled_us(duration.0);
                drop(up_span);
                self.note_epoch(&s.plan.label, s.epoch);
                let session = sessions.get_mut(&s.plan.req.id).expect("captured above");
                session.scratch = s.scratch;
                session.seal_rng = s.rng;
                outcomes.push((
                    s.plan.req.id,
                    SaveOutcome {
                        kind: s.kind,
                        uploaded: s.uploaded,
                        duration,
                        breakdown: s.plan.breakdown,
                    },
                ));
                session.chains.insert(
                    s.plan.label,
                    ChainState {
                        key: s.key,
                        epoch: s.epoch,
                        delta_count: s.delta_count,
                        archive: s.plan.next,
                        chunks: s.chunk_index,
                        commitment: s.commitment,
                        anon_gen: s.plan.anon_gen,
                        comm_gen: s.plan.comm_gen,
                    },
                );
            }
        }
        env.clock += batch_duration;
        nymix_obs::sim_clock(env.clock.as_micros());
        Ok(outcomes.into_iter().map(|(_, o)| o).collect())
    }

    /// Packages a finished plan as an owned, `Send` seal job: the
    /// session's scratch arena and nonce RNG travel with it, plus —
    /// for full saves only — the orphaned objects registered under its
    /// label. A delta save must leave the orphan list in the registry
    /// untouched: sweeping happens at compaction, and draining the
    /// list on a path that never deletes would leak a destroyed nym's
    /// chunk objects on the backend forever.
    fn seal_job<'a>(
        &mut self,
        sessions: &mut BTreeMap<NymId, NymSession>,
        plan: SavePlan<'a>,
    ) -> SealJob<'a> {
        let session = sessions.get_mut(&plan.req.id).expect("captured above");
        let orphaned_objects = if plan.delta.is_none() {
            self.labels
                .get_mut(&plan.label)
                .map(|l| std::mem::take(&mut l.orphaned_objects))
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        SealJob {
            scratch: std::mem::take(&mut session.scratch),
            rng: session.seal_rng.clone(),
            plan,
            orphaned_objects,
        }
    }

    /// Stage 1: pause the VMs, read layer generations, carry the chain
    /// over (by value — the session owns it, so nothing is cloned) and
    /// stage every dirty record into the next archive.
    fn capture<'a>(
        &mut self,
        env: &mut Environment,
        sessions: &mut BTreeMap<NymId, NymSession>,
        req: SaveRequest<'a>,
    ) -> Result<SavePlan<'a>, NymManagerError> {
        let _span = nymix_obs::span!("capture", "session" => req.id.0);
        let session = sessions
            .get_mut(&req.id)
            .ok_or(NymManagerError::NoSuchNym(req.id))?;
        let label = storage_label(&session.nymbox.name, req.dest);
        let anon_vm = session.nymbox.anon_vm;
        let comm_vm = session.nymbox.comm_vm;

        // Pause both VMs while the writable layers are captured. The
        // generation read doubles as the existence check for both
        // uppers; it runs — with the VMs resumed again on failure —
        // *before* the chain is moved out of the session, so no error
        // path can strand a paused VM or drop a chain.
        env.hv.vm_mut(anon_vm)?.pause();
        env.hv.vm_mut(comm_vm)?.pause();
        let gens = (|| {
            let missing = |what: &str| NymManagerError::Storage(format!("{what} upper missing"));
            let anon_gen = env
                .hv
                .vm(anon_vm)?
                .disk()
                .upper()
                .map(nymix_fs::Layer::generation)
                .ok_or_else(|| missing("anon"))?;
            let comm_gen = env
                .hv
                .vm(comm_vm)?
                .disk()
                .upper()
                .map(nymix_fs::Layer::generation)
                .ok_or_else(|| missing("comm"))?;
            Ok((anon_gen, comm_gen))
        })();
        let (anon_gen, comm_gen) = match gens {
            Ok(g) => g,
            Err(e) => {
                env.hv.vm_mut(anon_vm)?.resume();
                env.hv.vm_mut(comm_vm)?.resume();
                return Err(e);
            }
        };

        // The chain is usable only if it is still the label's newest
        // epoch — another session full-saving under the same label
        // bumps the registry, and appending deltas to an overwritten
        // base would strand them.
        let registry_epoch = self.last_epoch(&label);
        let chain = session.chains.remove(&label);
        let chain_epoch = chain.as_ref().map(|c| c.epoch);
        let last_epoch = chain_epoch.max(registry_epoch);
        let chain = chain.filter(|c| registry_epoch.is_none_or(|e| c.epoch >= e));
        let want_delta = req.allow_delta
            && chain
                .as_ref()
                .is_some_and(|c| c.delta_count < DELTA_CHAIN_LIMIT);
        let anon_clean = want_delta && chain.as_ref().is_some_and(|c| c.anon_gen == anon_gen);
        let comm_clean = want_delta && chain.as_ref().is_some_and(|c| c.comm_gen == comm_gen);

        // Start from the chain's stored-form archive when a delta is
        // possible — clean records (chunk manifests included) carry
        // over untouched, by move. A full save rebuilds from scratch so
        // the new epoch never references the old one's chunk objects.
        let (mut next, chain_carry, commitment, chunk_index, prev_chunk_objects) = match chain {
            Some(c) if want_delta => {
                let prefix = chunk_prefix(&label, c.epoch);
                let prev: Vec<String> = c
                    .chunks
                    .ids()
                    .map(|id| cas::chunk_object_name(&prefix, id))
                    .collect();
                (
                    c.archive,
                    Some((c.key, c.epoch, c.delta_count)),
                    c.commitment,
                    c.chunks,
                    prev,
                )
            }
            Some(c) => {
                let prefix = chunk_prefix(&label, c.epoch);
                let prev = c
                    .chunks
                    .ids()
                    .map(|id| cas::chunk_object_name(&prefix, id))
                    .collect();
                // The archive rebuilds from scratch, so the old cache
                // has nothing reusable: every record lands in
                // `dirty_old` and would be rehashed anyway.
                (
                    NymArchive::new(),
                    None,
                    ArchiveCommitment::default(),
                    ChunkIndex::new(),
                    prev,
                )
            }
            None => (
                NymArchive::new(),
                None,
                ArchiveCommitment::default(),
                ChunkIndex::new(),
                Vec::new(),
            ),
        };

        // Infallible from here to the resume: the generation read
        // above proved both uppers exist, and nothing intervenes while
        // the VMs are paused.
        let mut dirty_old: Vec<(&'static str, Option<Vec<u8>>)> = Vec::new();
        if !anon_clean {
            let upper = env
                .hv
                .vm(anon_vm)?
                .disk()
                .upper()
                .expect("generation read above proved the upper exists");
            let old = next.replace_layer("anonvm.disk", upper);
            dirty_old.push(("anonvm.disk", old));
        }
        if !comm_clean {
            let upper = env
                .hv
                .vm(comm_vm)?
                .disk()
                .upper()
                .expect("generation read above proved the upper exists");
            let old = next.replace_layer("commvm.disk", upper);
            dirty_old.push(("commvm.disk", old));
        }
        env.hv.vm_mut(anon_vm)?.resume();
        env.hv.vm_mut(comm_vm)?.resume();

        let old = next.replace("anonymizer.state", session.anonymizer.save_state());
        dirty_old.push(("anonymizer.state", old));
        let old = next.replace(
            "meta",
            format!(
                "name={};model={:?};anonymizer={}",
                session.nymbox.name,
                session.nymbox.model,
                session.anonymizer.name()
            )
            .into_bytes(),
        );
        dirty_old.push(("meta", old));
        if let Some(browser) = &session.browser {
            let old = next.replace("browser.state", browser.to_bytes());
            dirty_old.push(("browser.state", old));
        }
        let cost = session.anonymizer.transfer_cost();
        let exit_ip = session.anonymizer.exit_address(env.public_ip);

        // Figure 6 accounting reports logical (pre-chunking) sizes.
        let anon_bytes = next.get("anonvm.disk").map_or(0, record_logical_len);
        let comm_bytes = next.get("commvm.disk").map_or(0, record_logical_len);
        let other_bytes = next
            .records()
            .map(|(_, d)| record_logical_len(d))
            .sum::<usize>()
            - anon_bytes
            - comm_bytes;

        Ok(SavePlan {
            req,
            label,
            exit_ip,
            wire_overhead: cost.byte_overhead,
            next,
            dirty_old,
            anon_gen,
            comm_gen,
            chain: chain_carry,
            commitment,
            chunk_index,
            prev_chunk_objects,
            last_epoch,
            want_delta,
            chunked: Vec::new(),
            delta: None,
            breakdown: (anon_bytes, comm_bytes, other_bytes),
        })
    }

    /// Stage 2: convert captured records at or above the chunk
    /// threshold into `"NYMC"` manifests. Manifest hashing is batched
    /// across every plan in the run. With `fallback` set, only plans
    /// that fell back to a full save participate (their re-captured
    /// clean layers need converting too).
    fn chunk_stage(&self, plans: &mut [SavePlan<'_>], fallback: bool) {
        if !self.chunking {
            return;
        }
        // (plan index, record name, raw bytes) for every convertible
        // record, then one batched manifest build over all of them.
        let mut raws: Vec<(usize, &'static str, Vec<u8>)> = Vec::new();
        for (pi, plan) in plans.iter_mut().enumerate() {
            // Per-session chunk span: covers this plan's record
            // extraction; the cross-session batched manifest hashing
            // below is shared work and deliberately unattributed.
            let _span = nymix_obs::span!("chunk", "session" => plan.req.id.0);
            if !plan.req.allow_delta || (fallback && plan.delta.is_some()) {
                continue;
            }
            let names: Vec<&'static str> = plan
                .dirty_old
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| {
                    plan.next
                        .get(n)
                        .is_some_and(|d| d.len() >= CHUNK_RECORD_THRESHOLD)
                        && ChunkManifest::from_bytes(plan.next.get(n).expect("checked")).is_err()
                })
                .collect();
            for name in names {
                // Swap the record bytes out rather than copying them
                // (the raw payload is needed once more, for the chunk
                // upload); the in-place replace keeps record order,
                // which the Merkle commitment depends on.
                let raw = plan
                    .next
                    .replace(name, Vec::new())
                    .expect("record present above");
                raws.push((pi, name, raw));
            }
        }
        if raws.is_empty() {
            return;
        }
        let views: Vec<&[u8]> = raws.iter().map(|(_, _, d)| d.as_slice()).collect();
        let manifests = cas::build_manifests(&views);
        for ((pi, name, raw), manifest) in raws.into_iter().zip(manifests) {
            plans[pi].next.replace(name, manifest.to_bytes());
            plans[pi].chunked.push((name.to_string(), raw, manifest));
        }
    }

    /// Re-captures clean layers raw for plans whose delta didn't pay
    /// off, so their new full base is self-contained, then chunks the
    /// re-captures.
    fn full_fallback(
        &mut self,
        env: &mut Environment,
        sessions: &mut BTreeMap<NymId, NymSession>,
        plans: &mut [SavePlan<'_>],
    ) -> Result<(), NymManagerError> {
        for plan in plans.iter_mut() {
            if !plan.want_delta || plan.delta.is_some() {
                continue;
            }
            plan.chain = None; // Compaction: a fresh epoch, a fresh key.
            let session = sessions.get_mut(&plan.req.id).expect("captured above");
            let (anon_vm, comm_vm) = (session.nymbox.anon_vm, session.nymbox.comm_vm);
            for (name, vm) in [("anonvm.disk", anon_vm), ("commvm.disk", comm_vm)] {
                if plan.next.get(name).is_some() && plan.dirty_old.iter().any(|(n, _)| *n == name) {
                    continue;
                }
                env.hv.vm_mut(vm)?.pause();
                if env.hv.vm(vm)?.disk().upper().is_none() {
                    // Never leave the VM paused on the error path.
                    env.hv.vm_mut(vm)?.resume();
                    return Err(NymManagerError::Storage("upper missing".into()));
                }
                let upper = env.hv.vm(vm)?.disk().upper().expect("checked above");
                let old = plan.next.replace_layer(name, upper);
                env.hv.vm_mut(vm)?.resume();
                plan.dirty_old.push((name, old));
            }
        }
        self.chunk_stage(plans, true);
        Ok(())
    }
}

/// Builds the delta for a plan directly from its captured records: a
/// record is dirty iff its new stored bytes differ from the bytes the
/// chain held — no base-archive clone, no full-set re-compare. Keeps
/// the delta only when the chain can absorb one and the dirty set is
/// actually smaller than re-sealing everything.
fn build_delta(plan: &mut SavePlan<'_>) {
    if !plan.want_delta {
        return;
    }
    let dirty: Vec<(&'static str, &[u8])> = plan
        .dirty_old
        .iter()
        .filter_map(|(name, old)| {
            let new = plan.next.get(name).expect("captured record present");
            (old.as_deref() != Some(new)).then_some((*name, new))
        })
        .collect();
    // O(dirty) commitment: only records the delta ships are rehashed;
    // every clean leaf — and all interior nodes off the dirty leaves'
    // root paths — comes straight from the chain's carried cache.
    let root = plan
        .commitment
        .update(&plan.next, |name| dirty.iter().any(|(n, _)| *n == name));
    let mut delta = DeltaArchive::new(plan.next.record_count(), root);
    for (name, new) in dirty {
        delta.put(name, new.to_vec());
    }
    if delta.serialized_len() < plan.next.serialized_len() {
        plan.delta = Some(delta);
    }
}

/// Stage 3: run every seal job, on one thread per job when the run is
/// batched. Jobs are fully owned and independent — each session's
/// scratch, RNG and keys travel with its job — so scheduling cannot
/// change any output byte.
fn seal_stage<'a>(mut jobs: Vec<SealJob<'a>>, workers: usize, now_us: u64) -> Vec<SealedSave<'a>> {
    if jobs.len() <= 1 || workers <= 1 {
        return jobs.drain(..).map(seal_one).collect();
    }
    let workers = workers.min(jobs.len());
    let per = jobs.len().div_ceil(workers);
    let mut slots: Vec<Option<SealJob>> = jobs.drain(..).map(Some).collect();
    let mut results: Vec<Option<SealedSave>> =
        std::iter::repeat_with(|| None).take(slots.len()).collect();
    std::thread::scope(|scope| {
        for (job_chunk, result_chunk) in slots.chunks_mut(per).zip(results.chunks_mut(per)) {
            scope.spawn(move || {
                // Worker threads carry their own sim-clock view; seed
                // it so seal spans report the batch's modeled time.
                nymix_obs::sim_clock(now_us);
                for (job, result) in job_chunk.iter_mut().zip(result_chunk.iter_mut()) {
                    *result = Some(seal_one(job.take().expect("job present")));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job sealed"))
        .collect()
}

/// Seals one plan: chunk objects first (entropy-gated, deduplicated
/// against the epoch's index), then the delta or full blob, staging
/// every object in upload order. Full saves derive the new epoch's key
/// here — the per-save PBKDF2 runs inside the threaded stage.
fn seal_one(job: SealJob<'_>) -> SealedSave<'_> {
    let _span = nymix_obs::span!("seal", "session" => job.plan.req.id.0);
    let SealJob {
        mut plan,
        mut scratch,
        mut rng,
        orphaned_objects,
    } = job;
    let mut staged = Vec::new();
    let mut deletes = Vec::new();
    let mut uploaded = 0usize;
    let mut chunk_index = std::mem::take(&mut plan.chunk_index);
    let delta = plan.delta.take();

    let (kind, key, epoch, delta_count) = match delta {
        Some(delta) => {
            let (key, epoch, prev_count) = plan.chain.take().expect("delta implies carried chain");
            let prefix = chunk_prefix(&plan.label, epoch);
            for (_, raw, manifest) in &plan.chunked {
                uploaded += cas::seal_new_chunks_into(
                    raw,
                    manifest,
                    &mut chunk_index,
                    &key,
                    &prefix,
                    &mut rng,
                    &mut scratch,
                    &mut staged,
                );
            }
            let index = prev_count + 1;
            let obj_label = delta_label(&plan.label, epoch, index);
            let mut sealed = Vec::new();
            seal_delta_keyed_into(
                &delta,
                &key,
                &obj_label,
                &mut rng,
                &mut scratch,
                &mut sealed,
            );
            uploaded += sealed.len();
            staged.push((obj_label, sealed));
            // The previous version retired: sweep chunks no live
            // manifest references.
            let live: Vec<ChunkManifest> = plan
                .next
                .records()
                .filter_map(|(_, d)| ChunkManifest::from_bytes(d).ok())
                .collect();
            for dead in chunk_index.mark_and_sweep(&live) {
                deletes.push(cas::chunk_object_name(&prefix, &dead));
            }
            (SaveKind::Delta, key, epoch, index)
        }
        None => {
            let epoch = plan.last_epoch.map_or(1, |e| e + 1);
            plan.next.put(EPOCH_RECORD, epoch.to_le_bytes().to_vec());
            // Refresh the commitment cache over the new base so the
            // next delta save starts O(dirty). Clean carried records
            // (including the fallback path's) keep their cached leaf
            // hashes; everything this save re-captured, plus the epoch
            // record, is rehashed.
            let dirty_old = &plan.dirty_old;
            plan.commitment.update(&plan.next, |name| {
                name == EPOCH_RECORD || dirty_old.iter().any(|(n, _)| *n == name)
            });
            let key = SealKey::derive(plan.req.password, &plan.label, &mut rng);
            let prefix = chunk_prefix(&plan.label, epoch);
            chunk_index = ChunkIndex::new();
            for (_, raw, manifest) in &plan.chunked {
                uploaded += cas::seal_new_chunks_into(
                    raw,
                    manifest,
                    &mut chunk_index,
                    &key,
                    &prefix,
                    &mut rng,
                    &mut scratch,
                    &mut staged,
                );
            }
            let mut sealed = Vec::new();
            seal_keyed_into(
                &plan.next,
                &key,
                &plan.label,
                &mut rng,
                &mut scratch,
                &mut sealed,
            );
            uploaded += sealed.len();
            staged.push((plan.label.clone(), sealed));
            // Compaction retires everything under the previous epoch:
            // its delta objects, the carried chain's chunk objects, and
            // whatever destroyed sessions left orphaned on this label.
            if let Some(old) = plan.last_epoch {
                for i in 1..=DELTA_CHAIN_LIMIT {
                    deletes.push(delta_label(&plan.label, old, i));
                }
            }
            deletes.extend(std::mem::take(&mut plan.prev_chunk_objects));
            deletes.extend(orphaned_objects);
            (SaveKind::Full, key, epoch, 0)
        }
    };
    let commitment = std::mem::take(&mut plan.commitment);
    SealedSave {
        plan,
        scratch,
        rng,
        staged,
        deletes,
        uploaded,
        kind,
        key,
        epoch,
        delta_count,
        chunk_index,
        commitment,
    }
}
