//! The **NymSession** layer: everything owned by exactly one nym.
//!
//! A [`NymSession`] is the hard ownership boundary around one
//! pseudonym: its nymbox (VM pair + network attachment), its private
//! anonymizer instance, its browser state, its snapshot chains, its
//! own [`SealScratch`] arena (checked out of the store pipeline's
//! scratch pool) and its own nonce RNG (forked from the world RNG at
//! instantiation, so one session's nonce stream never perturbs
//! another's). The rules:
//!
//! * **No cross-nym state lives in a session.** Anything shared —
//!   hypervisor, fabric, clock, storage endpoints — belongs to
//!   [`Environment`] and is borrowed for the
//!   duration of one operation.
//! * **Sessions are independently sealable.** Because each session
//!   owns its scratch, RNG, chain keys and chunk index, the store
//!   pipeline can seal N sessions' saves on N threads with no locks
//!   and deterministic output (see [`super::pipeline`]).
//! * **Chains die with the session; epochs don't.** Destroying a nym
//!   drops its sessions' chains, but the pipeline's label registry
//!   remembers the highest epoch (and orphaned chunk objects) per
//!   storage label so a recreated nym can never collide with stale
//!   objects.

use nymix_anon::tor::TorState;
use nymix_anon::{Anonymizer, AnonymizerKind};
use nymix_net::firewall::{Action, Direction, Firewall, Rule};
use nymix_net::{Ip, Mac, NodeKind};
use nymix_sim::{Rng, SimDuration};
use nymix_store::cas::ChunkIndex;
use nymix_store::{ArchiveCommitment, NymArchive, SealKey, SealScratch};
use nymix_vmm::VmConfig;
use nymix_workload::browser::BrowserState;
use nymix_workload::{BrowserSession, Site};

use std::collections::BTreeMap;

use super::env::{deterministic_blob, Environment};
use super::NymManagerError;
use crate::nymbox::{Nymbox, UsageModel};
use crate::timing::{calib as tcal, StartupBreakdown};

/// Per-storage-label snapshot-chain bookkeeping: what the last sealed
/// full logical state was, which layer generations it captured, and
/// the chain key deltas are sealed under. Owned by the session whose
/// nym the chain snapshots — never shared.
pub(super) struct ChainState {
    /// KDF output for this chain epoch; deltas reuse it (fresh nonce,
    /// own label as AEAD data) so an incremental save skips PBKDF2.
    pub(super) key: SealKey,
    pub(super) epoch: u64,
    pub(super) delta_count: usize,
    /// The archive as of the latest save on this chain, in **stored
    /// form**: records at or above
    /// [`nymix_store::CHUNK_RECORD_THRESHOLD`] hold their `"NYMC"`
    /// chunk manifest, the payload living in per-chunk objects beside
    /// the chain. Diffing stored forms is what makes a sub-record
    /// write ship a new manifest plus O(1) chunks.
    pub(super) archive: NymArchive,
    /// Refcounts of the chunk objects this epoch's live manifests
    /// reference; retired versions are swept by refcount, retired
    /// epochs by mark-and-sweep.
    pub(super) chunks: ChunkIndex,
    /// Merkle commitment over `archive`'s stored-form records, with
    /// every leaf hash and interior node cached. Carrying it across
    /// saves is what makes a delta save's commitment O(dirty): only
    /// records that actually changed are rehashed, the root path is
    /// recomputed incrementally, and everything else is a cache hit.
    /// Derivable state — rebuilt from the archive on restore, never
    /// serialized.
    pub(super) commitment: ArchiveCommitment,
    pub(super) anon_gen: u64,
    pub(super) comm_gen: u64,
}

/// Disk layers and anonymizer state recovered from storage, handed to
/// [`NymSession::instantiate`] when re-creating a stored nym.
pub(super) struct RestoredState {
    pub(super) anon_upper: nymix_fs::Layer,
    pub(super) comm_upper: nymix_fs::Layer,
    pub(super) anonymizer_state: Option<Vec<u8>>,
}

/// One live nym: the per-nym half of the manager's state.
pub struct NymSession {
    pub(super) nymbox: Nymbox,
    pub(super) anonymizer: Box<dyn Anonymizer>,
    pub(super) browser: Option<BrowserState>,
    /// Snapshot chains by storage label. Holding the last stored-form
    /// archive in memory is what lets a save skip serializing clean
    /// layers and seal only the delta.
    pub(super) chains: BTreeMap<String, ChainState>,
    /// This session's sealing arena, checked out of the pipeline's
    /// scratch pool at instantiation and returned on destroy. Owning
    /// it per session is what lets fleet saves seal concurrently.
    pub(super) scratch: SealScratch,
    /// Ciphertext working copy for restores, reused alongside the arena.
    pub(super) unseal_work: Vec<u8>,
    /// Nonce/salt RNG, forked from the world RNG per session so
    /// concurrent seals stay deterministic and order-independent.
    pub(super) seal_rng: Rng,
}

impl NymSession {
    /// Builds the nymbox (two VMs, §4.2-homogeneous network wiring,
    /// §5.1 egress policy) and the session around it. `scratch` comes
    /// from the pipeline's pool.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn instantiate(
        env: &mut Environment,
        n: u64,
        name: &str,
        kind: AnonymizerKind,
        model: UsageModel,
        mut anonymizer: Box<dyn Anonymizer>,
        restored: Option<RestoredState>,
        cold: bool,
        scratch: SealScratch,
    ) -> Result<(Self, StartupBreakdown), NymManagerError> {
        // VMs.
        let anon_vm = env.hv.create_vm(VmConfig::anonvm())?;
        let comm_vm = match env.hv.create_vm(VmConfig::commvm()) {
            Ok(id) => id,
            Err(e) => {
                // Roll back the half-built nymbox.
                let _ = env.hv.destroy_vm(anon_vm);
                return Err(e.into());
            }
        };
        env.hv.boot(anon_vm)?;
        env.hv.boot(comm_vm)?;

        // Restore saved disk layers and anonymizer state if present.
        if let Some(state) = restored {
            let vm = env.hv.vm_mut(anon_vm)?;
            let _ = vm.take_disk_upper();
            assert!(vm.push_disk_upper(state.anon_upper));
            let vm = env.hv.vm_mut(comm_vm)?;
            let _ = vm.take_disk_upper();
            assert!(vm.push_disk_upper(state.comm_upper));
            if let Some(blob) = state.anonymizer_state {
                anonymizer.restore_state(&blob);
            }
        }

        // Network wiring: AnonVM --(virtual wire)-- CommVM --(uplink)--
        // hypervisor NAT. Addresses are identical for every nymbox
        // (§4.2 homogeneity).
        let anon_node = env.fabric.add_node(&format!("anonvm-{n}"), NodeKind::Host);
        let anon_if = env
            .fabric
            .add_iface(anon_node, Mac::ANONVM_FIXED, Ip::ANONVM_FIXED);
        let comm_node = env.fabric.add_node(&format!("commvm-{n}"), NodeKind::Nat);
        let comm_wire = env
            .fabric
            .add_iface(comm_node, Mac::COMMVM_FIXED, Ip::COMMVM_WIRE);
        let comm_up = env
            .fabric
            .add_iface(comm_node, Mac::COMMVM_FIXED, Ip::parse("10.0.3.2"));
        let hyp_leg = env.fabric.add_iface(
            env.hyp_node,
            Mac::host_nic(1000 + n as u32),
            Ip::parse("10.0.3.1"),
        );
        env.fabric.connect(anon_node, anon_if, comm_node, comm_wire);
        env.fabric
            .connect(comm_node, comm_up, env.hyp_node, hyp_leg);
        env.fabric
            .add_route(anon_node, Ip::parse("0.0.0.0"), 0, anon_if);
        env.fabric
            .add_route(comm_node, Ip::parse("10.0.2.0"), 24, comm_wire);
        env.fabric
            .add_route(comm_node, Ip::parse("0.0.0.0"), 0, comm_up);

        // CommVM egress policy: wire + uplink gateway + public Internet
        // only. Private space (the user's LAN, other VMs) is
        // unreachable — the §5.1 matrix.
        let mut fw = Firewall::default_drop();
        fw.push(Rule {
            direction: Direction::In,
            src: Some((Ip::parse("10.0.2.0"), 24)),
            dst: None,
            proto: None,
            dst_port: None,
            action: Action::Allow,
        });
        fw.push(Rule {
            direction: Direction::In,
            src: None,
            dst: Some((Ip::parse("10.0.3.2"), 32)),
            proto: None,
            dst_port: None,
            action: Action::Allow,
        });
        for (net, len) in [
            (Ip::parse("192.168.0.0"), 16u8),
            (Ip::parse("172.16.0.0"), 12),
            (Ip::parse("10.0.2.0"), 24),
        ] {
            fw.push(Rule {
                direction: Direction::Out,
                src: None,
                dst: Some((net, len)),
                proto: None,
                dst_port: None,
                action: if net == Ip::parse("10.0.2.0") {
                    Action::Allow // Its own wire.
                } else {
                    Action::Drop
                },
            });
        }
        fw.push(Rule {
            direction: Direction::Out,
            src: None,
            dst: Some((Ip::parse("10.0.0.0"), 8)),
            proto: None,
            dst_port: None,
            action: Action::Drop,
        });
        fw.push(Rule::allow_all(Direction::Out));
        // Out rules above are evaluated before the default drop; the
        // 10/8 drop must come after the wire allow but before allow-all
        // — the push order above encodes exactly that.
        env.fabric.set_firewall(comm_node, fw);

        // Startup timing.
        let breakdown = StartupBreakdown {
            ephemeral_fetch: SimDuration::ZERO,
            boot_vm: tcal::ANONVM_BOOT,
            start_anonymizer: anonymizer.startup_time(cold),
            load_page: SimDuration::ZERO,
        };
        env.clock += breakdown.boot_vm + breakdown.start_anonymizer;

        let seal_rng = env.rng.fork(n);
        Ok((
            Self {
                nymbox: Nymbox {
                    name: name.to_string(),
                    model,
                    anonymizer: kind,
                    anon_vm,
                    comm_vm,
                    anon_node,
                    comm_node,
                    restored: false, // restore_nym overwrites after fetch
                },
                anonymizer,
                browser: None,
                chains: BTreeMap::new(),
                scratch,
                unseal_work: Vec::new(),
                seal_rng,
            },
            breakdown,
        ))
    }

    /// Visits `site` in this nym's browser. Returns the page-load time
    /// (network via the anonymizer + render).
    pub(super) fn visit_site(
        &mut self,
        env: &mut Environment,
        site: Site,
    ) -> Result<SimDuration, NymManagerError> {
        let cost = self.anonymizer.transfer_cost();
        let profile = site.profile();

        // Network: the page rides the shared access link, inflated by
        // the anonymizer and throttled by its cap (if any).
        let start = env.clock;
        let wire = cost.wire_bytes(profile.page_weight as f64);
        let network = env.run_access_flow(wire) + cost.connect_latency;
        let load = network + tcal::PAGE_RENDER;
        env.clock = start + load;

        // Client-side state: the browser writes cache/cookies into the
        // AnonVM and dirties guest memory.
        let comm_vm = self.nymbox.comm_vm;
        let vm = env.hv.vm_mut(self.nymbox.anon_vm)?;
        // Rendering overwrites a slice of previously-pristine shared
        // pages too, slightly reducing what KSM can merge (the
        // before/after gap in Figure 3's shared-pages series).
        vm.memory_mut().dirty_shared_pages(512);
        let state = self.browser.take().unwrap_or_else(|| {
            BrowserState::fresh(Rng::seed_from(env.rng.next_u64()), env.browser_scale)
        });
        let mut session = BrowserSession::resume(vm, state);
        session.visit(site);
        self.browser = Some(session.suspend());

        // The CommVM's anonymizer also accretes disk state (consensus
        // cache, descriptors, logs) — the other ~15% of a saved nym's
        // payload (§5.3).
        let scale = env.browser_scale as usize;
        let comm = env.hv.vm_mut(comm_vm)?;
        let consensus = nymix_fs::Path::new("/var/lib/tor/cached-consensus");
        if !comm.disk().exists(&consensus) {
            comm.disk_mut()
                .write(&consensus, deterministic_blob(0xC0_45, 2_500_000 / scale))
                .map_err(|e| NymManagerError::Storage(e.to_string()))?;
        }
        comm.disk_mut()
            .append(
                &nymix_fs::Path::new("/var/lib/tor/cached-descriptors"),
                &deterministic_blob(0xDE_5C, 180_000 / scale),
            )
            .map_err(|e| NymManagerError::Storage(e.to_string()))?;
        Ok(load)
    }

    /// Injects an evercookie-style stain into this nym's browser (§3.3
    /// attack model; used by the amnesia tests).
    pub(super) fn inject_stain(
        &mut self,
        env: &mut Environment,
        marker: &str,
    ) -> Result<(), NymManagerError> {
        let vm = env.hv.vm_mut(self.nymbox.anon_vm)?;
        let state = self.browser.take().unwrap_or_else(|| {
            BrowserState::fresh(Rng::seed_from(env.rng.next_u64()), env.browser_scale)
        });
        let mut session = BrowserSession::resume(vm, state);
        session.inject_stain(marker);
        self.browser = Some(session.suspend());
        Ok(())
    }

    /// Whether a stain marker is visible in this nym's AnonVM.
    pub(super) fn has_stain(
        &mut self,
        env: &mut Environment,
        marker: &str,
    ) -> Result<bool, NymManagerError> {
        let vm = env.hv.vm_mut(self.nymbox.anon_vm)?;
        let state = self
            .browser
            .take()
            .unwrap_or_else(|| BrowserState::fresh(Rng::seed_from(0), env.browser_scale));
        let session = BrowserSession::resume(vm, state);
        let stained = session.has_stain(marker);
        self.browser = Some(session.suspend());
        Ok(stained)
    }

    /// Applies the §3.5 deterministic-guard extension: derive guard
    /// choice from the storage location and password so the ephemeral
    /// fetch nym converges on the same entry relays.
    pub(super) fn seed_guards_deterministically(
        &mut self,
        env: &Environment,
        storage_location: &str,
        password: &str,
    ) -> TorState {
        let state = TorState::deterministic(&env.directory, storage_location, password);
        self.anonymizer.restore_state(&state.to_bytes());
        state
    }
}

/// The storage-object label of a nym at a destination — the namespace
/// the whole chain (base, deltas, chunk objects) hangs off.
pub(super) fn storage_label(name: &str, dest: &super::StorageDest) -> String {
    match dest {
        super::StorageDest::Cloud {
            provider, account, ..
        } => {
            format!("nym:{name}@{provider}/{account}")
        }
        super::StorageDest::Local => format!("nym:{name}@local"),
        super::StorageDest::Disk => format!("nym:{name}@disk"),
        super::StorageDest::Striped => format!("nym:{name}@striped"),
    }
}
