//! Multi-provider survival scenarios: whole save/restore round trips
//! through [`StorageDest::Striped`] while placement children die,
//! throttle, come back stale, or lie. Every test here is named
//! `scenario_*` so CI's scenario-matrix job can run exactly this
//! module in release profile.

use super::tests::manager;
use super::*;
use fleet::FleetSaveRequest;
use nymix_workload::Site;

const PROVIDERS: [(&str, &str, &str); 5] = [
    ("prov0", "acct0", "tok0"),
    ("prov1", "acct1", "tok1"),
    ("prov2", "acct2", "tok2"),
    ("prov3", "acct3", "tok3"),
    ("prov4", "acct4", "tok4"),
];

fn striped_manager(k: usize, n: usize) -> NymManager {
    let mut m = manager();
    m.register_striped(k, &PROVIDERS[..n]);
    m
}

/// One persistent nym with browsing state and a two-save chain (full +
/// delta) on the striped destination; `fault` runs between the two
/// saves — mid-chain, so the chain's objects span the fault.
fn saved_nym_chain(m: &mut NymManager, fault: impl FnOnce(&mut NymManager)) -> NymId {
    let (id, _) = m
        .create_nym("walker", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.visit_site(id, Site::Twitter).unwrap();
    m.inject_stain(id, "round-1").unwrap();
    m.save_nym(id, "pw", &StorageDest::Striped).unwrap();
    m.inject_stain(id, "round-2").unwrap();
    fault(m);
    let (kind, _, _) = m
        .save_nym_incremental(id, "pw", &StorageDest::Striped)
        .unwrap();
    assert_eq!(kind, SaveKind::Delta, "chain continued across the fault");
    id
}

/// Restores the chain nym and checks the state round-tripped exactly:
/// both stain markers and the browser's credential survive.
fn assert_restored_intact(m: &mut NymManager) -> NymId {
    let (id, _) = m
        .restore_nym(
            "walker",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Striped,
        )
        .unwrap();
    assert!(m.nymbox(id).unwrap().restored);
    assert!(m.has_stain(id, "round-1").unwrap());
    assert!(m.has_stain(id, "round-2").unwrap());
    let vm = m.hypervisor().vm(m.nymbox(id).unwrap().anon_vm).unwrap();
    assert!(vm.disk().exists(&nymix_fs::Path::new(
        "/home/user/.config/chromium/logins/twitter.com"
    )));
    id
}

#[test]
fn scenario_provider_outage_mid_chain_survived_2_of_3() {
    let mut m = striped_manager(2, 3);
    // prov2 dies between the base save and the delta save: the delta
    // lands on a 2-of-3 quorum and the whole degraded batch is queued
    // for repair.
    let id = saved_nym_chain(&mut m, |m| {
        m.striped_provider_mut("prov2").unwrap().outage();
    });
    assert!(m.striped_store().unwrap().pending_repairs() > 0);
    m.destroy_nym(id).unwrap();

    // Restore with the provider still down: every chain object decodes
    // from the two survivors.
    let id = assert_restored_intact(&mut m);
    m.destroy_nym(id).unwrap();

    // The provider returns; one repair pass re-materializes its shards
    // and every child holds a full shard set again.
    m.striped_provider_mut("prov2").unwrap().heal();
    let report = m.repair_striped().unwrap();
    assert!(report.shards_rebuilt > 0);
    assert_eq!(report.shards_still_missing, 0);
    let store = m.striped_store().unwrap();
    assert_eq!(store.pending_repairs(), 0);
    let mut m = m;
    let counts = m.env.striped.as_mut().unwrap().shard_counts().unwrap();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "unequal shard counts after repair: {counts:?}"
    );
    assert_restored_intact(&mut m);
}

#[test]
fn scenario_stale_provider_excluded_on_restore() {
    let mut m = striped_manager(2, 3);
    // prov0 snapshots its state mid-chain and serves that snapshot
    // from then on — hash-valid but version-stale shards. The restore
    // must reconstruct the *newest* version: stale shards group apart
    // by object hash and can never mix into a decode.
    let id = saved_nym_chain(&mut m, |m| {
        m.striped_provider_mut("prov0").unwrap().serve_stale();
    });
    m.destroy_nym(id).unwrap();
    let id = assert_restored_intact(&mut m);
    m.destroy_nym(id).unwrap();
    // Healed, the live (post-snapshot) objects are intact — prov0 kept
    // accepting writes while lying on reads.
    m.striped_provider_mut("prov0").unwrap().heal();
    assert_restored_intact(&mut m);
}

#[test]
fn scenario_byzantine_provider_lies_and_is_excluded() {
    let mut m = striped_manager(2, 3);
    let id = saved_nym_chain(&mut m, |_| {});
    m.destroy_nym(id).unwrap();
    // prov1 turns byzantine after the chain is stored: right-length
    // garbage for every read. Shard hashes exclude it before the
    // decoder ever sees the bytes.
    m.striped_provider_mut("prov1").unwrap().serve_garbage();
    let id = assert_restored_intact(&mut m);
    m.destroy_nym(id).unwrap();
    // Every lying read queued the child for refresh.
    assert!(m.striped_store().unwrap().pending_repairs() > 0);
    m.striped_provider_mut("prov1").unwrap().heal();
    let report = m.repair_striped().unwrap();
    assert_eq!(report.shards_still_missing, 0);
    assert_eq!(m.striped_store().unwrap().pending_repairs(), 0);
}

#[test]
fn scenario_throttled_provider_during_batched_fleet_save() {
    let mut m = striped_manager(2, 3);
    let fleet = NymFleet::spawn(
        &mut m,
        "crowd",
        2,
        AnonymizerKind::Tor,
        UsageModel::Persistent,
    )
    .unwrap();
    let ids = fleet.ids().to_vec();
    for id in &ids {
        m.inject_stain(*id, "fleet-round").unwrap();
    }
    // prov1 throttles every write, outlasting the retry budget: the
    // batched fleet save still lands on the other two children.
    m.striped_provider_mut("prov1").unwrap().throttle();
    let reqs: Vec<FleetSaveRequest> = ids
        .iter()
        .map(|id| FleetSaveRequest {
            id: *id,
            password: "pw",
            dest: &StorageDest::Striped,
        })
        .collect();
    let outcomes = m.save_nyms_incremental(&reqs).unwrap();
    assert_eq!(outcomes.len(), 2);
    assert!(m.striped_store().unwrap().pending_repairs() > 0);
    fleet.destroy_all(&mut m).unwrap();

    // Both nyms restore (reads are unaffected by a write throttle).
    for name in ["crowd-0", "crowd-1"] {
        let (rid, _) = m
            .restore_nym(
                name,
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Striped,
            )
            .unwrap();
        assert!(m.has_stain(rid, "fleet-round").unwrap());
        m.destroy_nym(rid).unwrap();
    }

    m.striped_provider_mut("prov1").unwrap().heal();
    let report = m.repair_striped().unwrap();
    assert_eq!(report.shards_still_missing, 0);
    let counts = m.env.striped.as_mut().unwrap().shard_counts().unwrap();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn scenario_losing_n_minus_k_plus_1_providers_fails_closed() {
    let mut m = striped_manager(2, 3);
    let id = saved_nym_chain(&mut m, |_| {});
    m.destroy_nym(id).unwrap();
    // Two of three children down: below quorum. The restore fails
    // Unavailable — never NothingStored (which would claim the nym was
    // never saved) and never partial state.
    m.striped_provider_mut("prov0").unwrap().outage();
    m.striped_provider_mut("prov2").unwrap().outage();
    let err = m
        .restore_nym(
            "walker",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &StorageDest::Striped,
        )
        .unwrap_err();
    assert!(matches!(err, NymManagerError::Unavailable(_)), "{err:?}");
    // One provider recovers — quorum is back, the nym restores whole.
    m.striped_provider_mut("prov0").unwrap().heal();
    assert_restored_intact(&mut m);
}

#[test]
fn scenario_save_below_quorum_fails_closed() {
    let mut m = striped_manager(2, 3);
    let (id, _) = m
        .create_nym("walker", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.striped_provider_mut("prov0").unwrap().outage();
    m.striped_provider_mut("prov1").unwrap().outage();
    let err = m.save_nym(id, "pw", &StorageDest::Striped).unwrap_err();
    assert!(matches!(err, NymManagerError::Unavailable(_)), "{err:?}");
}

#[test]
fn scenario_mirrored_1_of_2_survives_either_provider() {
    // k = 1 degenerates to plain mirroring: either child alone can
    // serve the whole chain.
    let mut m = striped_manager(1, 2);
    let id = saved_nym_chain(&mut m, |_| {});
    m.destroy_nym(id).unwrap();
    for down in ["prov0", "prov1"] {
        m.striped_provider_mut(down).unwrap().outage();
        let id = assert_restored_intact(&mut m);
        m.destroy_nym(id).unwrap();
        m.striped_provider_mut(down).unwrap().heal();
    }
}

#[test]
fn scenario_providers_observe_only_the_exit_address() {
    // The deniability story survives striping: every placement child
    // logs only the anonymizer's exit, never the user's address.
    let mut m = striped_manager(2, 3);
    let id = saved_nym_chain(&mut m, |_| {});
    m.destroy_nym(id).unwrap();
    assert_restored_intact(&mut m);
    let user_ip = m.public_ip();
    for (name, _, _) in &PROVIDERS[..3] {
        let log = m.striped_provider(name).unwrap().access_log();
        assert!(!log.is_empty(), "{name} saw no traffic");
        assert!(log.iter().all(|e| e.observed_ip != user_ip));
    }
}

#[test]
fn scenario_unavailable_vs_missing_is_classified_per_backend() {
    // Satellite contract: a required object the backend *answered* is
    // gone → MissingObject (closed); an unreachable backend →
    // Unavailable (state presumed intact). Cloud outage side:
    let mut m = manager();
    m.register_cloud("drive", "anon", "tok");
    let dest = StorageDest::Cloud {
        provider: "drive".into(),
        account: "anon".into(),
        credential: "tok".into(),
    };
    let (id, _) = m
        .create_nym("cloudy", AnonymizerKind::Tor, UsageModel::Persistent)
        .unwrap();
    m.save_nym(id, "pw", &dest).unwrap();
    m.destroy_nym(id).unwrap();
    m.env.cloud.get_mut("drive").unwrap().outage();
    let err = m
        .restore_nym(
            "cloudy",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &dest,
        )
        .unwrap_err();
    assert!(matches!(err, NymManagerError::Unavailable(_)), "{err:?}");
    // Healed, a *genuinely absent* label is still NothingStored — the
    // healthy-absence answer Unavailable must never shadow.
    m.env.cloud.get_mut("drive").unwrap().heal();
    let err = m
        .restore_nym(
            "ghost",
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &dest,
        )
        .unwrap_err();
    assert!(matches!(err, NymManagerError::NothingStored), "{err:?}");
}
