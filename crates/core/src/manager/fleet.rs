//! The **fleet** layer: many nyms, one deterministic schedule.
//!
//! The paper's architecture is many independent nyms per user; this
//! module is what runs them *together*. Two pieces:
//!
//! * [`NymManager::save_nyms_incremental`] — the batched store-nym
//!   entry point. All requested sessions move through the store
//!   pipeline's stages as one run: dirty-capture per session, chunk
//!   hashing batched across sessions, sealing on one thread per
//!   session (each session owns its scratch, RNG and chain keys, so
//!   the threads share nothing and the output is bit-identical to a
//!   serial run), and one `put_many` upload per destination. The
//!   simulation clock advances once, by the *concurrent* completion
//!   time of the batch — N nyms saving together cost the wall time of
//!   the slowest transfer, not the sum.
//!
//! * [`NymFleet`] — a deterministic round-robin driver over a set of
//!   sessions. Every round visits (or saves) each nym in creation
//!   order; all randomness flows from the manager's world RNG and the
//!   sessions' forked nonce RNGs, so a fleet run is reproducible
//!   byte-for-byte from the manager's seed regardless of how many
//!   threads the seal stage used.
//!
//! Determinism rule: fleet operations never consult wall-clock time or
//! OS scheduling. Thread-level parallelism exists only in the seal
//! stage, whose jobs are data-independent; results are reassembled in
//! request order before anything touches shared state.

use nymix_anon::AnonymizerKind;
use nymix_sim::SimDuration;
use nymix_workload::Site;

use super::pipeline::SaveRequest;
use super::{NymId, NymManager, NymManagerError, SaveKind, StorageDest};
use crate::nymbox::UsageModel;
use crate::timing::StartupBreakdown;

/// One nym's slot in a batched fleet save.
pub struct FleetSaveRequest<'a> {
    /// The nym to save.
    pub id: NymId,
    /// Its sealing password.
    pub password: &'a str,
    /// Where its chain lives.
    pub dest: &'a StorageDest,
}

impl NymManager {
    /// Incremental store-nym over any number of sessions at once — the
    /// batched counterpart of [`NymManager::save_nym_incremental`],
    /// returning per-request `(kind, uploaded bytes, duration)` in
    /// request order.
    ///
    /// Each session keeps its own chain semantics (delta when its
    /// chain can absorb one, full compaction otherwise); the batch
    /// shares the pipeline: cross-session `sha256_x4` chunk hashing,
    /// one seal thread per session, one backend round trip per
    /// destination. The clock advances by the batch's concurrent
    /// completion time.
    pub fn save_nyms_incremental(
        &mut self,
        reqs: &[FleetSaveRequest<'_>],
    ) -> Result<Vec<(SaveKind, usize, SimDuration)>, NymManagerError> {
        let requests: Vec<SaveRequest<'_>> = reqs
            .iter()
            .map(|r| SaveRequest {
                id: r.id,
                password: r.password,
                dest: r.dest,
                allow_delta: true,
            })
            .collect();
        let outcomes = self
            .pipeline
            .save_many(&mut self.env, &mut self.sessions, requests)?;
        if let Some(last) = outcomes.last() {
            self.last_save_breakdown = Some(last.breakdown);
        }
        Ok(outcomes
            .into_iter()
            .map(|o| (o.kind, o.uploaded, o.duration))
            .collect())
    }
}

/// A deterministic driver for N concurrent sessions: spawn them
/// together, interleave their browsing round-robin over sim time, and
/// snapshot them through the batched pipeline.
pub struct NymFleet {
    ids: Vec<NymId>,
    names: Vec<String>,
}

impl NymFleet {
    /// Spawns `count` nyms named `{prefix}-{i}` in creation order.
    /// Fails on the first admission refusal (fleet size is bounded by
    /// host RAM — see [`NymManager::with_host_ram`]).
    pub fn spawn(
        manager: &mut NymManager,
        prefix: &str,
        count: usize,
        kind: AnonymizerKind,
        model: UsageModel,
    ) -> Result<Self, NymManagerError> {
        let mut ids = Vec::with_capacity(count);
        let mut names = Vec::with_capacity(count);
        for i in 0..count {
            let name = format!("{prefix}-{i}");
            let (id, _) = manager.create_nym(&name, kind, model)?;
            ids.push(id);
            names.push(name);
        }
        Ok(Self { ids, names })
    }

    /// The fleet's nym ids, in creation order.
    pub fn ids(&self) -> &[NymId] {
        &self.ids
    }

    /// The fleet's nym names, in creation order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// One browsing round: every session visits `site_for(its index)`,
    /// in creation order. Returns the page-load times.
    pub fn visit_round(
        &self,
        manager: &mut NymManager,
        mut site_for: impl FnMut(usize) -> Site,
    ) -> Result<Vec<SimDuration>, NymManagerError> {
        self.ids
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let mut span = nymix_obs::span!("browse", "session" => id.0);
                let duration = manager.visit_site(*id, site_for(i))?;
                span.add_modeled_us(duration.0);
                nymix_obs::sim_clock(manager.env.clock.as_micros());
                Ok(duration)
            })
            .collect()
    }

    /// One snapshot round through the batched pipeline: every session
    /// saves to `dest_for(its index)` under `password`.
    pub fn save_round(
        &self,
        manager: &mut NymManager,
        password: &str,
        dest_for: impl Fn(usize) -> StorageDest,
    ) -> Result<Vec<(SaveKind, usize, SimDuration)>, NymManagerError> {
        let dests: Vec<StorageDest> = (0..self.ids.len()).map(dest_for).collect();
        let reqs: Vec<FleetSaveRequest<'_>> = self
            .ids
            .iter()
            .zip(&dests)
            .map(|(id, dest)| FleetSaveRequest {
                id: *id,
                password,
                dest,
            })
            .collect();
        manager.save_nyms_incremental(&reqs)
    }

    /// Destroys every session (amnesia for the whole fleet). Chains
    /// die with their sessions; epochs survive in the label registry.
    pub fn destroy_all(self, manager: &mut NymManager) -> Result<(), NymManagerError> {
        for id in self.ids {
            manager.destroy_nym(id)?;
        }
        Ok(())
    }

    /// Restores every nym of a destroyed fleet from storage, in
    /// creation order, rebuilding the fleet handle.
    pub fn restore_all(
        manager: &mut NymManager,
        names: &[String],
        kind: AnonymizerKind,
        model: UsageModel,
        password: &str,
        dest_for: impl Fn(usize) -> StorageDest,
    ) -> Result<(Self, Vec<StartupBreakdown>), NymManagerError> {
        let mut ids = Vec::with_capacity(names.len());
        let mut breakdowns = Vec::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            let mut span = nymix_obs::span!("restore", "session" => i);
            let (id, b) = manager.restore_nym(name, kind, model, password, &dest_for(i))?;
            span.add_modeled_us(b.total().0);
            nymix_obs::sim_clock(manager.env.clock.as_micros());
            drop(span);
            ids.push(id);
            breakdowns.push(b);
        }
        Ok((
            Self {
                ids,
                names: names.to_vec(),
            },
            breakdowns,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::manager;
    use super::*;
    use crate::timing::StartupBreakdown;
    use nymix_anon::AnonymizerKind;
    use nymix_workload::Site;

    /// A shared cloud account three nyms store through (labels still
    /// differ per nym name — the account is what the adversary controls).
    fn shared_dest() -> StorageDest {
        StorageDest::Cloud {
            provider: "drive".into(),
            account: "shared-acct".into(),
            credential: "tok".into(),
        }
    }

    /// Objects currently stored under the shared account, by name.
    fn account_objects(m: &NymManager, filter: &str) -> Vec<(String, Vec<u8>)> {
        m.cloud_provider("drive")
            .expect("registered")
            .subpoena("shared-acct")
            .into_iter()
            .filter(|(n, _)| n.contains(filter))
            .map(|(n, d)| (n.to_string(), d.to_vec()))
            .collect()
    }

    fn overwrite_object(m: &mut NymManager, name: &str, data: Vec<u8>) {
        let exit = nymix_net::Ip::parse("198.18.0.9");
        m.env
            .cloud
            .get_mut("drive")
            .expect("registered")
            .put("shared-acct", "tok", name, data, exit)
            .expect("adversarial overwrite");
    }

    /// Spawns a 3-nym fleet at low browser scale (so disk records chunk),
    /// browses distinct sites, stains each nym with its own marker, and
    /// runs two interleaved batched save rounds over the shared account.
    fn stained_fleet(seed: u64) -> (NymManager, Vec<String>) {
        let mut m = NymManager::new(seed, 8);
        m.register_cloud("drive", "shared-acct", "tok");
        let fleet = NymFleet::spawn(&mut m, "f", 3, AnonymizerKind::Tor, UsageModel::Persistent)
            .expect("capacity for 3 nymboxes");
        let sites = [Site::Twitter, Site::Bbc, Site::Facebook];
        fleet.visit_round(&mut m, |i| sites[i]).expect("live fleet");
        let kinds = fleet
            .save_round(&mut m, "pw", |_| shared_dest())
            .expect("first fleet save");
        assert!(kinds.iter().all(|(k, _, _)| *k == SaveKind::Full));
        for (i, id) in fleet.ids().iter().enumerate() {
            m.inject_stain(*id, &format!("mark-{i}")).unwrap();
        }
        let kinds = fleet
            .save_round(&mut m, "pw", |_| shared_dest())
            .expect("second fleet save");
        assert!(kinds.iter().all(|(k, _, _)| *k == SaveKind::Delta));
        let names = fleet.names().to_vec();
        fleet.destroy_all(&mut m).expect("fleet teardown");
        (m, names)
    }

    fn restore_one(
        m: &mut NymManager,
        name: &str,
    ) -> Result<(NymId, StartupBreakdown), NymManagerError> {
        m.restore_nym(
            name,
            AnonymizerKind::Tor,
            UsageModel::Persistent,
            "pw",
            &shared_dest(),
        )
    }

    #[test]
    fn fleet_interleaved_saves_restore_isolated() {
        let (mut m, names) = stained_fleet(501);
        // Untampered: every nym restores with exactly its own stain.
        for (i, name) in names.iter().enumerate() {
            let (id, breakdown) = restore_one(&mut m, name).expect("clean restore");
            assert!(breakdown.ephemeral_fetch > SimDuration::ZERO);
            assert!(m.has_stain(id, &format!("mark-{i}")).unwrap(), "{name}");
            for other in 0..names.len() {
                if other != i {
                    assert!(
                        !m.has_stain(id, &format!("mark-{other}")).unwrap(),
                        "{name} sees mark-{other}"
                    );
                }
            }
            m.destroy_nym(id).unwrap();
        }
        // The shared provider never saw the user's address across both
        // interleaved rounds and the restores.
        let user_ip = m.public_ip();
        for entry in m.cloud_provider("drive").unwrap().access_log() {
            assert_ne!(entry.observed_ip, user_ip, "provider saw the user");
        }
    }

    #[test]
    fn cross_nym_base_blob_cannot_satisfy_another_restore() {
        let (mut m, names) = stained_fleet(502);
        // The shared account serves nym 0's (valid!) base blob under nym
        // 1's label: every byte authenticates under the chain key, but
        // against the wrong label — restore must refuse.
        let label0 = format!("nym:{}@drive/shared-acct", names[0]);
        let label1 = format!("nym:{}@drive/shared-acct", names[1]);
        let base0 = account_objects(&m, &label0)
            .into_iter()
            .find(|(n, _)| *n == label0)
            .expect("nym 0 base present")
            .1;
        overwrite_object(&mut m, &label1, base0);
        assert!(matches!(
            restore_one(&mut m, &names[1]),
            Err(NymManagerError::Storage(_))
        ));
        // Nym 0 itself is unaffected.
        let (id, _) = restore_one(&mut m, &names[0]).expect("nym 0 intact");
        assert!(m.has_stain(id, "mark-0").unwrap());
    }

    #[test]
    fn cross_nym_chunks_cannot_satisfy_another_restore() {
        let (mut m, names) = stained_fleet(503);
        // Transplant one of nym 0's chunk objects into one of nym 1's
        // chunk slots. Both blobs are individually valid ciphertext, but
        // each chunk is sealed with its own full object name — which
        // embeds the nym's label — as AEAD data, so the transplant fails
        // authentication at the manager level.
        let chunks0 = account_objects(&m, &format!("nym:{}@drive/shared-acct#", names[0]));
        let chunks1 = account_objects(&m, &format!("nym:{}@drive/shared-acct#", names[1]));
        let donor = chunks0
            .iter()
            .find(|(n, _)| n.contains("/c/"))
            .expect("nym 0 stored chunks");
        let victim = chunks1
            .iter()
            .find(|(n, _)| n.contains("/c/"))
            .expect("nym 1 stored chunks");
        overwrite_object(&mut m, &victim.0.clone(), donor.1.clone());
        assert!(matches!(
            restore_one(&mut m, &names[1]),
            Err(NymManagerError::Storage(_))
        ));
        // And a delta transplant: nym 0's delta blob in nym 1's slot.
        let (mut m, names) = stained_fleet(504);
        let delta0 = account_objects(&m, &format!("nym:{}@drive/shared-acct#e1.1", names[0]))
            .pop()
            .expect("nym 0 delta present");
        let slot1 = format!("nym:{}@drive/shared-acct#e1.1", names[1]);
        overwrite_object(&mut m, &slot1, delta0.1);
        assert!(matches!(
            restore_one(&mut m, &names[1]),
            Err(NymManagerError::Storage(_))
        ));
    }

    #[test]
    fn batched_fleet_save_matches_serial_outcomes() {
        // The same fleet saved through the batched pipeline and through
        // serial save_nym_incremental calls must produce the same save
        // kinds and restorable state.
        let mut m = NymManager::new(505, 64);
        let fleet = NymFleet::spawn(&mut m, "s", 3, AnonymizerKind::Tor, UsageModel::Persistent)
            .expect("capacity");
        fleet.visit_round(&mut m, |_| Site::Bbc).unwrap();
        let batched = fleet
            .save_round(&mut m, "pw", |_| StorageDest::Local)
            .unwrap();
        assert!(batched.iter().all(|(k, _, _)| *k == SaveKind::Full));

        // Serial deltas against the chains the batched save established.
        for (i, id) in fleet.ids().iter().enumerate() {
            m.inject_stain(*id, &format!("serial-{i}")).unwrap();
            let (kind, _, _) = m
                .save_nym_incremental(*id, "pw", &StorageDest::Local)
                .unwrap();
            assert_eq!(kind, SaveKind::Delta);
        }
        // And batched deltas against serially-extended chains.
        for (i, id) in fleet.ids().iter().enumerate() {
            m.inject_stain(*id, &format!("batch-{i}")).unwrap();
        }
        let reqs: Vec<FleetSaveRequest<'_>> = fleet
            .ids()
            .iter()
            .map(|id| FleetSaveRequest {
                id: *id,
                password: "pw",
                dest: &StorageDest::Local,
            })
            .collect();
        let outcomes = m.save_nyms_incremental(&reqs).unwrap();
        assert!(outcomes.iter().all(|(k, _, _)| *k == SaveKind::Delta));

        let names = fleet.names().to_vec();
        fleet.destroy_all(&mut m).unwrap();
        for (i, name) in names.iter().enumerate() {
            let (id, _) = m
                .restore_nym(
                    name,
                    AnonymizerKind::Tor,
                    UsageModel::Persistent,
                    "pw",
                    &StorageDest::Local,
                )
                .expect("restore after mixed serial/batched chain");
            assert!(m.has_stain(id, &format!("serial-{i}")).unwrap());
            assert!(m.has_stain(id, &format!("batch-{i}")).unwrap());
            m.destroy_nym(id).unwrap();
        }
    }

    #[test]
    fn same_label_takeover_forces_compaction() {
        // Two live nyms with the same name fight over one storage label.
        // Whoever saves after the other's full save must fall back to a
        // full save on a fresh epoch — never append deltas to a base it no
        // longer owns.
        let mut m = manager();
        let (a, _) = m
            .create_nym("twin", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        let (b, _) = m
            .create_nym("twin", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(a, Site::Bbc).unwrap();
        let (kind, _, _) = m
            .save_nym_incremental(a, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Full); // epoch 1
        let (kind, _, _) = m
            .save_nym_incremental(b, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Full); // epoch 2: b sees a's registry entry
                                          // a's chain is stale now — its next save must compact, not delta.
        m.inject_stain(a, "stale-chain").unwrap();
        let (kind, _, _) = m
            .save_nym_incremental(a, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Full); // epoch 3
                                          // The label restores to a's latest state (last full save wins).
        m.destroy_nym(a).unwrap();
        m.destroy_nym(b).unwrap();
        let (id, _) = m
            .restore_nym(
                "twin",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local,
            )
            .unwrap();
        assert!(m.has_stain(id, "stale-chain").unwrap());
    }
}
