//! The Nym Manager.
//!
//! "Nymix's most crucial component is its Nym Manager, which manages
//! nyms and separates all client-side browsing and other activities
//! into separate virtual machines or nymboxes for each nym" (§3.1).
//!
//! The manager is a thin facade over three layers with hard ownership
//! boundaries:
//!
//! * [`mod@env`] — the **Environment**: the shared simulated world
//!   (hypervisor, fabric, flows, DNS, relay directory, clock, storage
//!   endpoints). Exactly one per manager; never holds per-nym state.
//! * [`session`] — one **NymSession** per live nym: nymbox, private
//!   anonymizer, browser state, snapshot chains, its own sealing
//!   scratch and nonce RNG. No `&mut` on one session can alias
//!   another, which is what lets fleets of nyms operate concurrently.
//! * [`pipeline`] — the **StorePipeline**: the staged §3.5 store-nym
//!   workflow (dirty-detect → chunk → seal → upload) over any number
//!   of sessions at once, plus the label registry and scratch pool
//!   that outlive individual sessions.
//!
//! [`fleet`] adds the multi-nym scheduler: deterministic interleaving
//! of N sessions over sim time, with batched saves that seal on one
//! thread per session and land through one backend round trip per
//! destination.
//!
//! The public API implements the §3.5 workflow verbatim: *start a
//! fresh nym*, *store nym* (pause → sync → compress → encrypt → upload
//! via the nym's own CommVM), and *load an existing nym* (ephemeral
//! fetch nym → download → decrypt → resume).

pub mod env;
pub mod fleet;
pub mod pipeline;
pub mod restore;
pub mod session;

use std::collections::BTreeMap;

use nymix_anon::tor::{TorDirectory, TorState};
use nymix_anon::{Anonymizer, AnonymizerKind};
use nymix_net::dns::DnsDb;
use nymix_net::{Fabric, Ip, NodeId};
use nymix_sim::{DiskProfile, SimDuration, SimTime};
use nymix_store::{
    CloudChild, CloudProvider, DiskStore, FaultPlan, LocalStore, PlacementStore, SimDisk,
};
use nymix_vmm::{Hypervisor, HypervisorError};
use nymix_workload::browser::BrowserState;
use nymix_workload::Site;

use crate::nymbox::{Nymbox, UsageModel};
use crate::timing::{calib as tcal, StartupBreakdown};

use env::Environment;
use pipeline::{SaveRequest, StorePipeline};
use restore::fetch_chain;
use session::{storage_label, ChainState, NymSession, RestoredState};

pub use fleet::NymFleet;

/// Identifies a nym within a manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NymId(pub u64);

/// Where quasi-persistent state is kept (§3.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageDest {
    /// Anonymous cloud storage: deniable, needs an ephemeral fetch nym.
    Cloud {
        /// Provider name (must be registered).
        provider: String,
        /// Pseudonymous account id.
        account: String,
        /// Account credential.
        credential: String,
    },
    /// Local partition / USB drive: faster, not deniable.
    Local,
    /// The crash-consistent journaled disk: like [`StorageDest::Local`]
    /// but backed by [`nymix_store::DiskStore`], so stored nyms survive
    /// power loss at any instant and every save batch lands atomically.
    /// The device image can be detached with [`NymManager::take_disk`]
    /// and re-attached to a later manager with
    /// [`NymManager::attach_disk`].
    Disk,
    /// The multi-provider placement store configured with
    /// [`NymManager::register_striped`]: every object is striped
    /// across N cloud providers as k-of-n erasure shards, so saves
    /// tolerate provider outages and restores reconstruct from any k
    /// honest providers (byzantine shards are excluded by hash). Like
    /// [`StorageDest::Cloud`], access rides an anonymizer — every
    /// provider observes only the exit address.
    Striped,
}

/// Errors from Nym Manager operations.
#[derive(Debug)]
pub enum NymManagerError {
    /// The hypervisor refused (usually memory admission).
    Hypervisor(HypervisorError),
    /// Unknown nym id.
    NoSuchNym(NymId),
    /// Unknown cloud provider.
    NoSuchProvider(String),
    /// Storage/crypto failure on save or restore.
    Storage(String),
    /// A required stored object is authoritatively **absent** — the
    /// backend answered, and the answer was "gone" (e.g. a chunk a
    /// manifest references was garbage-collected away). Retrying
    /// cannot help; the stored state is incomplete. Distinct from
    /// [`NymManagerError::Unavailable`], where the object may be fine
    /// but the backend couldn't be reached.
    MissingObject(String),
    /// The storage backend was unreachable or overloaded (provider
    /// outage, throttling past the retry budget, too few placement
    /// children reachable). The stored state is presumed intact —
    /// retrying once the backend recovers may succeed, which is
    /// exactly what [`NymManagerError::MissingObject`] rules out.
    Unavailable(String),
    /// The nym has no stored state to restore.
    NothingStored,
}

impl core::fmt::Display for NymManagerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NymManagerError::Hypervisor(e) => write!(f, "hypervisor: {e}"),
            NymManagerError::NoSuchNym(id) => write!(f, "no such nym: {id:?}"),
            NymManagerError::NoSuchProvider(p) => write!(f, "no such provider: {p}"),
            NymManagerError::Storage(s) => write!(f, "storage: {s}"),
            NymManagerError::MissingObject(s) => write!(f, "stored object missing: {s}"),
            NymManagerError::Unavailable(s) => write!(f, "storage unavailable: {s}"),
            NymManagerError::NothingStored => write!(f, "no stored state for nym"),
        }
    }
}

impl std::error::Error for NymManagerError {}

impl From<HypervisorError> for NymManagerError {
    fn from(e: HypervisorError) -> Self {
        NymManagerError::Hypervisor(e)
    }
}

/// Whether a store-nym operation sealed the full archive or only the
/// dirty-record delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveKind {
    /// The whole record set was sealed (and a new chain epoch began).
    Full,
    /// Only records dirty since the previous snapshot were sealed.
    Delta,
}

/// The Nym Manager: facade over the environment, the per-nym sessions
/// and the store pipeline.
pub struct NymManager {
    env: Environment,
    sessions: BTreeMap<NymId, NymSession>,
    next_nym: u64,
    pipeline: StorePipeline,
    /// Per-record sizes of the most recent save: (anonvm, commvm,
    /// other) payload bytes — Figure 6's "AnonVM content accounting
    /// for 85% of the pseudonym size" breakdown.
    last_save_breakdown: Option<(usize, usize, usize)>,
}

impl NymManager {
    /// Boots Nymix on the paper's testbed (minimal base image for
    /// speed; `browser_scale` divides browser byte volumes — use 1 for
    /// full fidelity, 16–64 for fast runs).
    pub fn new(seed: u64, browser_scale: u64) -> Self {
        Self::with_host_ram(
            seed,
            browser_scale,
            nymix_vmm::hypervisor::calib::HOST_RAM_MIB,
        )
    }

    /// [`NymManager::new`] on a host with `host_ram_mib` MiB of RAM —
    /// the admission model is unchanged, so a 64 GiB host runs fleets
    /// the paper's 16 GiB testbed would refuse (each nymbox costs
    /// ~706 MiB).
    pub fn with_host_ram(seed: u64, browser_scale: u64, host_ram_mib: u32) -> Self {
        Self {
            env: Environment::new(seed, browser_scale, host_ram_mib),
            sessions: BTreeMap::new(),
            next_nym: 1,
            pipeline: StorePipeline::new(),
            last_save_breakdown: None,
        }
    }

    /// Enables or disables content-addressed chunking of large records
    /// on the incremental save path (on by default). Restores always
    /// resolve chunked records regardless, so toggling never strands
    /// stored state.
    pub fn set_chunking(&mut self, enabled: bool) {
        self.pipeline.chunking = enabled;
    }

    /// Whether incremental saves chunk large records.
    pub fn chunking(&self) -> bool {
        self.pipeline.chunking
    }

    /// Registers a cloud provider (e.g. "dropbox") with one account.
    /// Registering the same provider again adds the account to it — a
    /// fleet of nyms keeps one pseudonymous account each on a shared
    /// provider (previously this silently replaced the provider,
    /// wiping its accounts and access log).
    pub fn register_cloud(&mut self, provider: &str, account: &str, credential: &str) {
        self.env
            .cloud
            .entry(provider.to_string())
            .or_insert_with(|| CloudProvider::new(provider))
            .create_account(account, credential);
    }

    /// Configures [`StorageDest::Striped`]: a placement store that
    /// stripes every object across one freshly-created provider per
    /// `(provider, account, credential)` entry as k-of-n erasure
    /// shards (`k = 1` mirrors). Replaces any previous striped store.
    /// The placement children are owned by the store — they are
    /// separate providers from the [`NymManager::register_cloud`]
    /// registry, so a scenario can fault one without touching plain
    /// cloud destinations.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= children.len() <= 16`.
    pub fn register_striped(&mut self, k: usize, children: &[(&str, &str, &str)]) {
        let children = children
            .iter()
            .map(|(provider, account, credential)| {
                let mut p = CloudProvider::new(provider);
                p.create_account(account, credential);
                CloudChild::new(p, account, credential)
            })
            .collect();
        self.env.striped = Some(PlacementStore::new(children, k));
    }

    /// The striped placement store, if configured.
    pub fn striped_store(&self) -> Option<&PlacementStore<CloudChild>> {
        self.env.striped.as_ref()
    }

    /// A striped child's provider by name (for fault injection and
    /// access-log inspection in scenarios).
    pub fn striped_provider(&self, name: &str) -> Option<&CloudProvider> {
        self.env.striped.as_ref()?.provider(name)
    }

    /// Mutable access to a striped child's provider — arm outages,
    /// throttles and byzantine modes here.
    pub fn striped_provider_mut(&mut self, name: &str) -> Option<&mut CloudProvider> {
        self.env.striped.as_mut()?.provider_mut(name)
    }

    /// Runs one repair pass on the striped store: flushes deletes that
    /// couldn't reach a child and re-materializes missing shards from
    /// surviving ones. `None` if no striped store is configured.
    pub fn repair_striped(&mut self) -> Option<nymix_store::RepairReport> {
        let clock = self.env.clock;
        let striped = self.env.striped.as_mut()?;
        striped.set_now(clock);
        Some(striped.repair())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.env.clock
    }

    /// The hypervisor (for memory/CPU accounting).
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.env.hv
    }

    /// Mutable hypervisor access (ablation knobs like KSM).
    pub fn hypervisor_mut(&mut self) -> &mut Hypervisor {
        &mut self.env.hv
    }

    /// The packet fabric (for validation probes).
    pub fn fabric(&self) -> &Fabric {
        &self.env.fabric
    }

    /// Mutable fabric access (validation probes mutate trace state).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.env.fabric
    }

    /// A registered cloud provider.
    pub fn cloud_provider(&self, name: &str) -> Option<&CloudProvider> {
        self.env.cloud.get(name)
    }

    /// The local store.
    pub fn local_store(&self) -> &LocalStore {
        &self.env.local
    }

    /// The crash-consistent disk store behind [`StorageDest::Disk`].
    pub fn disk_store(&self) -> &DiskStore {
        &self.env.disk
    }

    /// Attaches a surviving device image as the [`StorageDest::Disk`]
    /// backend, replaying or discarding whatever one batch was in
    /// flight when the device last lost power. The previous disk store
    /// (and anything on it) is dropped. Fails closed — without
    /// attaching — if the image's committed region is corrupt.
    pub fn attach_disk(&mut self, image: SimDisk) -> Result<(), NymManagerError> {
        self.env.disk =
            DiskStore::open(image).map_err(|e| NymManagerError::Storage(e.to_string()))?;
        Ok(())
    }

    /// Detaches the disk backend's device image — everything durable at
    /// this instant, exactly as a power cut would leave it — replacing
    /// it with a fresh empty device. Reattach with
    /// [`NymManager::attach_disk`] (on this or any later manager) to
    /// recover the stored nyms.
    pub fn take_disk(&mut self) -> SimDisk {
        std::mem::replace(&mut self.env.disk, DiskStore::new()).into_disk()
    }

    /// Simulates power loss on the disk backend: returns the device
    /// image as the cut would leave it — durable state plus whichever
    /// unflushed writes `mode` says landed — for
    /// [`NymManager::attach_disk`] recovery on this or a fresh manager.
    /// The running store is untouched, so one failed save can be
    /// crash-tested under every [`nymix_store::CrashMode`].
    pub fn crash_disk(&self, mode: nymix_store::CrashMode) -> SimDisk {
        self.env.disk.crash(mode)
    }

    /// Arms deterministic fault injection on the disk backend: the
    /// device dies at the `n`th write/fsync from now (see
    /// [`nymix_store::FaultPlan`]).
    pub fn set_disk_fault_plan(&mut self, plan: FaultPlan) {
        self.env.disk.set_fault_plan(plan);
    }

    /// Sets the latency profile disk saves are charged with (default:
    /// [`DiskProfile::ssd`]).
    pub fn set_disk_profile(&mut self, profile: DiskProfile) {
        self.env.disk_profile = profile;
    }

    /// Live nym ids.
    pub fn nym_ids(&self) -> Vec<NymId> {
        self.sessions.keys().copied().collect()
    }

    /// A live nymbox.
    pub fn nymbox(&self, id: NymId) -> Result<&Nymbox, NymManagerError> {
        self.sessions
            .get(&id)
            .map(|s| &s.nymbox)
            .ok_or(NymManagerError::NoSuchNym(id))
    }

    /// The anonymizer running in a nym's CommVM.
    pub fn anonymizer(&self, id: NymId) -> Result<&dyn Anonymizer, NymManagerError> {
        self.sessions
            .get(&id)
            .map(|s| s.anonymizer.as_ref())
            .ok_or(NymManagerError::NoSuchNym(id))
    }

    /// Starts a fresh nym (§3.5 workflow: "start a fresh nym").
    ///
    /// Returns the nym id and the startup breakdown (boot + anonymizer
    /// phases; page load is measured by [`NymManager::visit_site`]).
    pub fn create_nym(
        &mut self,
        name: &str,
        kind: AnonymizerKind,
        model: UsageModel,
    ) -> Result<(NymId, StartupBreakdown), NymManagerError> {
        let anonymizer = self.env.build_anonymizer(kind);
        self.instantiate(name, kind, model, anonymizer, None, true)
    }

    fn instantiate(
        &mut self,
        name: &str,
        kind: AnonymizerKind,
        model: UsageModel,
        anonymizer: Box<dyn Anonymizer>,
        restored: Option<RestoredState>,
        cold: bool,
    ) -> Result<(NymId, StartupBreakdown), NymManagerError> {
        let scratch = self.pipeline.acquire_scratch();
        let n = self.next_nym;
        let (session, breakdown) = NymSession::instantiate(
            &mut self.env,
            n,
            name,
            kind,
            model,
            anonymizer,
            restored,
            cold,
            scratch,
        )?;
        let id = NymId(n);
        self.next_nym += 1;
        self.sessions.insert(id, session);
        Ok((id, breakdown))
    }

    /// Visits `site` in the nym's browser. Returns the page-load time
    /// (network via the anonymizer + render).
    pub fn visit_site(&mut self, id: NymId, site: Site) -> Result<SimDuration, NymManagerError> {
        let env = &mut self.env;
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(NymManagerError::NoSuchNym(id))?;
        session.visit_site(env, site)
    }

    /// Injects an evercookie-style stain into the nym's browser (§3.3
    /// attack model; used by the amnesia tests).
    pub fn inject_stain(&mut self, id: NymId, marker: &str) -> Result<(), NymManagerError> {
        let env = &mut self.env;
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(NymManagerError::NoSuchNym(id))?;
        session.inject_stain(env, marker)
    }

    /// Whether a stain marker is visible in the nym's AnonVM.
    pub fn has_stain(&mut self, id: NymId, marker: &str) -> Result<bool, NymManagerError> {
        let env = &mut self.env;
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(NymManagerError::NoSuchNym(id))?;
        session.has_stain(env, marker)
    }

    /// Stores a nym (§3.5 "store nym"): pause, sync, compress, encrypt,
    /// upload through the nym's own CommVM. Returns the sealed size and
    /// the wall-clock cost. Always seals the full archive (starting a
    /// fresh chain epoch); see [`NymManager::save_nym_incremental`] for
    /// the delta path.
    pub fn save_nym(
        &mut self,
        id: NymId,
        password: &str,
        dest: &StorageDest,
    ) -> Result<(usize, SimDuration), NymManagerError> {
        let (_, size, duration) = self.save_nym_with(id, password, dest, false)?;
        Ok((size, duration))
    }

    /// Incremental store-nym: when a snapshot chain exists for this
    /// nym and destination, seals **only the records dirty since the
    /// last save** as a [`nymix_store::DeltaArchive`] — dirty disk
    /// records are detected from the writable layers' generation
    /// counters without serializing clean state, the chain's
    /// [`nymix_store::SealKey`] skips the per-save PBKDF2, and the
    /// delta commits to the Merkle root of the full record set so
    /// restore fails closed on tampering.
    ///
    /// Falls back to a full save (compaction) when no usable chain
    /// exists, after [`nymix_store::DELTA_CHAIN_LIMIT`] chained deltas,
    /// or when the serialized delta would be no smaller than the full
    /// archive (a delta would not pay for itself).
    pub fn save_nym_incremental(
        &mut self,
        id: NymId,
        password: &str,
        dest: &StorageDest,
    ) -> Result<(SaveKind, usize, SimDuration), NymManagerError> {
        self.save_nym_with(id, password, dest, true)
    }

    fn save_nym_with(
        &mut self,
        id: NymId,
        password: &str,
        dest: &StorageDest,
        allow_delta: bool,
    ) -> Result<(SaveKind, usize, SimDuration), NymManagerError> {
        let outcomes = self.pipeline.save_many(
            &mut self.env,
            &mut self.sessions,
            vec![SaveRequest {
                id,
                password,
                dest,
                allow_delta,
            }],
        )?;
        let outcome = outcomes
            .into_iter()
            .next()
            .expect("one request, one outcome");
        self.last_save_breakdown = Some(outcome.breakdown);
        Ok((outcome.kind, outcome.uploaded, outcome.duration))
    }

    /// Loads a stored nym (§3.5 "load an existing nym").
    ///
    /// For cloud storage this spins up an ephemeral fetch nym first
    /// ("Nymix starts an ephemeral nym for the purpose of gathering the
    /// nym's state anonymously"), whose cost appears as the
    /// `ephemeral_fetch` phase.
    pub fn restore_nym(
        &mut self,
        name: &str,
        kind: AnonymizerKind,
        model: UsageModel,
        password: &str,
        dest: &StorageDest,
    ) -> Result<(NymId, StartupBreakdown), NymManagerError> {
        let label = storage_label(name, dest);
        // Cloud restores ride an ephemeral fetch nym (boot + cold
        // anonymizer); its exit address and transfer cost cover every
        // object in the chain, base and deltas alike.
        let (fetch_exit, fetch_cost, fetch_boot) = match dest {
            StorageDest::Cloud { .. } | StorageDest::Striped => {
                let fetch_anonymizer = self.env.build_anonymizer(kind);
                let boot = tcal::ANONVM_BOOT + fetch_anonymizer.startup_time(true);
                (
                    Some(fetch_anonymizer.exit_address(self.env.public_ip)),
                    Some(fetch_anonymizer.transfer_cost()),
                    boot,
                )
            }
            StorageDest::Local | StorageDest::Disk => (None, None, SimDuration::ZERO),
        };

        // The restoring session doesn't exist yet, so the fetch runs on
        // a pool scratch that then becomes the new session's arena.
        let mut scratch = self.pipeline.acquire_scratch();
        let mut work = Vec::new();
        let fetched = match fetch_chain(
            &mut self.env,
            &label,
            password,
            dest,
            fetch_exit,
            &mut work,
            &mut scratch,
        ) {
            Ok(f) => f,
            Err(e) => {
                self.pipeline.release_scratch(scratch);
                return Err(e);
            }
        };

        let ephemeral_fetch = match fetch_cost {
            Some(cost) => {
                let dl_secs = Environment::transfer_secs(
                    cost.wire_bytes(fetched.fetched_bytes as f64 * self.env.browser_scale as f64),
                );
                fetch_boot + SimDuration::from_secs_f64(dl_secs) + tcal::RESTORE_UNPACK
            }
            None => tcal::RESTORE_UNPACK,
        };
        self.env.clock += ephemeral_fetch;

        let mut archive = fetched.archive;
        let anon_upper = archive
            .get_layer("anonvm.disk")
            .map_err(|e| NymManagerError::Storage(e.to_string()))?;
        let comm_upper = archive
            .get_layer("commvm.disk")
            .map_err(|e| NymManagerError::Storage(e.to_string()))?;
        let anonymizer_state = archive.get("anonymizer.state").map(|b| b.to_vec());
        let browser = archive
            .get("browser.state")
            .and_then(BrowserState::from_bytes);

        let anonymizer = self.env.build_anonymizer(kind);
        let scratch_for_session = scratch;
        let n = self.next_nym;
        let (mut session, mut breakdown) = NymSession::instantiate(
            &mut self.env,
            n,
            name,
            kind,
            model,
            anonymizer,
            Some(RestoredState {
                anon_upper,
                comm_upper,
                anonymizer_state,
            }),
            false, // Warm start: guards and consensus restored.
            scratch_for_session,
        )?;
        session.unseal_work = work;
        session.browser = browser;
        session.nymbox.restored = true;

        // Continue the chain where the restored state left it, so the
        // next incremental save appends a delta instead of re-sealing
        // everything. The resolved records swap back to their stored
        // (manifest) form first — the chain's base is the stored form.
        if let Some(epoch) = fetched.epoch {
            let anon_gen = self
                .env
                .hv
                .vm(session.nymbox.anon_vm)?
                .disk()
                .upper()
                .map(nymix_fs::Layer::generation)
                .unwrap_or(0);
            let comm_gen = self
                .env
                .hv
                .vm(session.nymbox.comm_vm)?
                .disk()
                .upper()
                .map(nymix_fs::Layer::generation)
                .unwrap_or(0);
            for (record_name, stored) in fetched.stored_overrides {
                archive.replace(&record_name, stored);
            }
            self.pipeline.note_epoch(&label, epoch);
            session.chains.insert(
                label,
                ChainState {
                    key: fetched.key,
                    epoch,
                    delta_count: fetched.delta_count,
                    archive,
                    chunks: fetched.chunk_index,
                    commitment: fetched.commitment,
                    anon_gen,
                    comm_gen,
                },
            );
        }

        let id = NymId(n);
        self.next_nym += 1;
        self.sessions.insert(id, session);
        breakdown.ephemeral_fetch = ephemeral_fetch;
        Ok((id, breakdown))
    }

    /// Destroys a nym: both VMs are securely wiped; "turning off a
    /// pseudonym results in amnesia" (§3.4). The session's snapshot
    /// chains die with it, but the pipeline's label registry keeps
    /// their epoch numbers (and sweeps their chunk objects at the next
    /// compaction), so a recreated nym can never collide with stale
    /// stored objects.
    pub fn destroy_nym(&mut self, id: NymId) -> Result<(), NymManagerError> {
        let session = self
            .sessions
            .remove(&id)
            .ok_or(NymManagerError::NoSuchNym(id))?;
        self.env.hv.destroy_vm(session.nymbox.anon_vm)?;
        self.env.hv.destroy_vm(session.nymbox.comm_vm)?;
        self.pipeline.retire_chains(session.chains);
        self.pipeline.release_scratch(session.scratch);
        Ok(())
    }

    /// Uncompressed per-record sizes of the most recent [`Self::save_nym`]:
    /// `(anonvm_bytes, commvm_bytes, other_bytes)`.
    pub fn last_save_breakdown(&self) -> Option<(usize, usize, usize)> {
        self.last_save_breakdown
    }

    /// The browser byte-scale divisor this manager runs with.
    pub fn browser_scale(&self) -> u64 {
        self.env.browser_scale
    }

    /// The user's public IP (what incognito mode leaks).
    pub fn public_ip(&self) -> Ip {
        self.env.public_ip
    }

    /// The intranet host's address (the §5.1 "must not reach" target).
    pub fn intranet_ip(&self) -> Ip {
        self.env.lan_gateway_ip
    }

    /// Fabric node of the intranet host.
    pub fn intranet_node(&self) -> NodeId {
        self.env.intranet_node
    }

    /// Fabric node of the Internet.
    pub fn internet_node(&self) -> NodeId {
        self.env.internet_node
    }

    /// Fabric node of the hypervisor.
    pub fn hypervisor_node(&self) -> NodeId {
        self.env.hyp_node
    }

    /// The DNS database.
    pub fn dns(&self) -> &DnsDb {
        &self.env.dns
    }

    /// The relay directory (for guard analysis).
    pub fn directory(&self) -> &TorDirectory {
        &self.env.directory
    }

    /// Applies the §3.5 deterministic-guard extension to a nym: derive
    /// guard choice from the storage location and password so the
    /// ephemeral fetch nym converges on the same entry relays.
    pub fn seed_guards_deterministically(
        &mut self,
        id: NymId,
        storage_location: &str,
        password: &str,
    ) -> Result<TorState, NymManagerError> {
        let env = &self.env;
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(NymManagerError::NoSuchNym(id))?;
        Ok(session.seed_guards_deterministically(env, storage_location, password))
    }
}

#[cfg(test)]
mod scenarios;
#[cfg(test)]
mod tests;
