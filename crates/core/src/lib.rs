//! Nymix: an anonymity-centric operating system architecture.
//!
//! This crate is the paper's primary contribution: the **Nym Manager**,
//! which gives users "explicit, first-class control over pseudonyms
//! representing the multiple roles or personas they may use online"
//! (§3.1). Each pseudonym (*nym*) runs in a **nymbox** — an AnonVM for
//! browsing plus a CommVM for its private anonymizer instance — wired
//! so that the only path from browser to Internet runs through the
//! anonymizer, and the only cross-nym file path runs through the
//! sanitizing SaniVM.
//!
//! Modules:
//!
//! * [`nymbox`] — a nymbox: VM pair, usage model, network attachment.
//! * [`manager`] — the Nym Manager: create/save/restore/destroy nyms,
//!   full topology wiring, startup timing (Figure 7). Layered as
//!   [`manager::env`] (the shared simulated world),
//!   [`manager::session`] (per-nym state with hard ownership
//!   boundaries), [`manager::pipeline`] (the staged, batched store
//!   pipeline) and [`manager::fleet`] (multi-nym scheduling).
//! * [`timing`] — startup phase breakdowns and calibration.
//! * [`sanivm`] — the sanitized file-transfer path (§3.6/§4.3).
//! * [`installed_os`] — booting the machine's installed OS as a nym
//!   (§3.7, Table 1).
//! * [`intersection`] — Buddies-style anonymity-set tracking (§7).
//! * [`validation`] — the §5.1 leak-validation harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod installed_os;
pub mod intersection;
pub mod manager;
pub mod nymbox;
pub mod sanivm;
pub mod timing;
pub mod validation;

pub use installed_os::{InstalledOs, OsKind, RepairOutcome};
pub use manager::fleet::FleetSaveRequest;
pub use manager::{NymFleet, NymId, NymManager, NymManagerError, SaveKind, StorageDest};
pub use nymbox::{Nymbox, UsageModel};
pub use sanivm::SaniVm;
pub use timing::StartupBreakdown;
pub use validation::{
    validate_idle_traffic, validate_isolation, IdleTrafficReport, IsolationReport,
};
