//! Intersection-attack tracking and Buddies-style anonymity metrics.
//!
//! §7: "An adversary performs an intersection attack by tracking the
//! online set of participants and discovering a set of linkable, yet
//! anonymous messages. The adversary constructs an intersection of
//! users that were online at the same time as those linkable messages.
//! With sufficiently many ... messages, the adversary will be able to
//! discover the owner... To enhance Nymix's ability to resist
//! intersection attacks, we plan to integrate Buddies, \[which\] offers
//! users anonymity metrics and safe guards a user from falling below a
//! desirable anonymity threshold."
//!
//! [`IntersectionAdversary`] is the attacker's ledger; [`BuddiesPolicy`]
//! is the defence: it refuses to post when the user's *possinymity set*
//! (candidate owners of the pseudonym) would shrink below a floor.

use std::collections::BTreeSet;

/// A user in the anonymity system (e.g. a Tor client on a network the
/// adversary can observe).
pub type UserId = u32;

/// The adversary's view: per linkable message, who was online.
#[derive(Debug, Clone, Default)]
pub struct IntersectionAdversary {
    /// The candidate set so far (None = no observation yet).
    candidates: Option<BTreeSet<UserId>>,
    observations: u32,
}

impl IntersectionAdversary {
    /// A fresh adversary with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a linkable pseudonym message appeared while
    /// `online` users were connected.
    pub fn observe_message(&mut self, online: &BTreeSet<UserId>) {
        self.observations += 1;
        self.candidates = Some(match self.candidates.take() {
            None => online.clone(),
            Some(prev) => prev.intersection(online).copied().collect(),
        });
    }

    /// Number of observations recorded.
    pub fn observations(&self) -> u32 {
        self.observations
    }

    /// The current candidate (possinymity) set size; `usize::MAX`
    /// before any observation.
    pub fn candidate_count(&self) -> usize {
        self.candidates.as_ref().map_or(usize::MAX, BTreeSet::len)
    }

    /// Whether the adversary has uniquely identified the owner.
    pub fn deanonymized(&self) -> Option<UserId> {
        match &self.candidates {
            Some(set) if set.len() == 1 => set.iter().next().copied(),
            _ => None,
        }
    }
}

/// The Buddies defence: track the would-be candidate set and refuse
/// messages that would shrink it below the floor.
#[derive(Debug, Clone)]
pub struct BuddiesPolicy {
    floor: usize,
    shadow: IntersectionAdversary,
    posted: u32,
    suppressed: u32,
}

impl BuddiesPolicy {
    /// A policy refusing to let the candidate set drop below `floor`.
    pub fn new(floor: usize) -> Self {
        Self {
            floor,
            shadow: IntersectionAdversary::new(),
            posted: 0,
            suppressed: 0,
        }
    }

    /// The user asks to post while `online` users are connected.
    /// Returns whether the post is allowed; allowed posts update the
    /// shadow adversary.
    pub fn try_post(&mut self, online: &BTreeSet<UserId>) -> bool {
        // What would the adversary's set become?
        let mut hypothetical = self.shadow.clone();
        hypothetical.observe_message(online);
        if hypothetical.candidate_count() < self.floor {
            self.suppressed += 1;
            return false;
        }
        self.shadow = hypothetical;
        self.posted += 1;
        true
    }

    /// Current anonymity metric shown to the user.
    pub fn anonymity_set_size(&self) -> usize {
        self.shadow.candidate_count()
    }

    /// Messages posted / suppressed.
    pub fn counters(&self) -> (u32, u32) {
        (self.posted, self.suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn online(ids: &[UserId]) -> BTreeSet<UserId> {
        ids.iter().copied().collect()
    }

    #[test]
    fn repeated_observations_shrink_the_set() {
        let mut adv = IntersectionAdversary::new();
        adv.observe_message(&online(&[1, 2, 3, 4, 5]));
        assert_eq!(adv.candidate_count(), 5);
        adv.observe_message(&online(&[1, 2, 3]));
        assert_eq!(adv.candidate_count(), 3);
        adv.observe_message(&online(&[2, 3, 9]));
        assert_eq!(adv.candidate_count(), 2);
        assert_eq!(adv.deanonymized(), None);
        adv.observe_message(&online(&[3, 7]));
        assert_eq!(adv.deanonymized(), Some(3));
        assert_eq!(adv.observations(), 4);
    }

    #[test]
    fn amnesiac_guard_churn_speeds_up_the_attack() {
        // §3.5's argument, demonstrated: with guard churn, each session
        // exposes an independent online sample; with a pinned guard the
        // adversary (observing that guard) sees the same stable
        // population every time and learns little.
        let sessions: Vec<BTreeSet<UserId>> = vec![
            online(&[3, 10, 11, 12]),
            online(&[3, 20, 21, 22]),
            online(&[3, 30, 31, 32]),
        ];
        let mut churny = IntersectionAdversary::new();
        for s in &sessions {
            churny.observe_message(s);
        }
        assert_eq!(churny.deanonymized(), Some(3));

        let stable_population = online(&[3, 10, 11, 12]);
        let mut pinned = IntersectionAdversary::new();
        for _ in 0..3 {
            pinned.observe_message(&stable_population);
        }
        assert_eq!(pinned.candidate_count(), 4);
        assert_eq!(pinned.deanonymized(), None);
    }

    #[test]
    fn buddies_floor_suppresses_risky_posts() {
        let mut policy = BuddiesPolicy::new(3);
        assert!(policy.try_post(&online(&[1, 2, 3, 4, 5])));
        assert_eq!(policy.anonymity_set_size(), 5);
        // This post would shrink the set to 2 (< 3): refused.
        assert!(!policy.try_post(&online(&[1, 2, 8])));
        assert_eq!(policy.anonymity_set_size(), 5, "refusal leaks nothing");
        // A compatible window is fine.
        assert!(policy.try_post(&online(&[1, 2, 3, 4])));
        assert_eq!(policy.anonymity_set_size(), 4);
        assert_eq!(policy.counters(), (2, 1));
    }

    #[test]
    fn empty_online_set_always_refused_above_floor_one() {
        let mut policy = BuddiesPolicy::new(2);
        assert!(!policy.try_post(&BTreeSet::new()));
    }
}
