//! Booting the machine's installed OS as a nym (§3.7, Table 1).
//!
//! "Nymix can boot the machine's installed OS in a (non-anonymous)
//! nymbox... Nymix treats the machine's hard disk as read-only and
//! boots the installed OS into a copy-on-write virtual disk, so that no
//! changes the installed OS makes while running under Nymix ever
//! persist."
//!
//! Windows images installed on bare metal "trigger device driver
//! complaints" inside a VM; "a standard repair process typically
//! addresses this problem" (§3.7). The model makes that mechanism
//! explicit: the installed OS carries a device inventory bound to the
//! bare-metal hardware; the repair pass re-enumerates each device
//! against the homogenized QEMU profile, re-binding drivers (time) and
//! rewriting driver-store/registry state (copy-on-write bytes). Boot
//! replays the service list. Table 1's repair/boot/size rows fall out
//! of the per-OS inventories below.

use nymix_fs::{Layer, LayerKind, Path, UnionFs};
use nymix_sim::SimDuration;

/// Which installed OS the machine carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsKind {
    /// Windows Vista.
    WindowsVista,
    /// Windows 7.
    Windows7,
    /// Windows 8.
    Windows8,
    /// A Linux distribution ("Linux usually boots without issue").
    Linux,
}

impl OsKind {
    /// The Table 1 row set.
    pub const TABLE1: [OsKind; 3] = [OsKind::WindowsVista, OsKind::Windows7, OsKind::Windows8];
}

/// A hardware device entry in the installed OS's inventory.
#[derive(Debug, Clone)]
struct Device {
    name: &'static str,
    /// Seconds to re-enumerate and re-bind the driver under QEMU.
    repair_secs: f64,
    /// Driver-store bytes rewritten during repair.
    repair_write_bytes: u64,
    /// Whether the QEMU profile exposes a matching device (unmatched
    /// devices are disabled, which is faster).
    present_in_vm: bool,
}

/// Per-OS parameters.
#[derive(Debug, Clone)]
struct OsSpec {
    devices: Vec<Device>,
    /// HAL/kernel reconfiguration during repair.
    hal_secs: f64,
    /// Registry/boot-configuration bytes rewritten during repair.
    registry_write_bytes: u64,
    /// Kernel + early-boot time.
    kernel_boot_secs: f64,
    /// Boot-time services and their start cost.
    service_count: u32,
    per_service_secs: f64,
}

fn dev(name: &'static str, repair_secs: f64, kb: u64, present: bool) -> Device {
    Device {
        name,
        repair_secs,
        repair_write_bytes: kb * 1024,
        present_in_vm: present,
    }
}

fn spec(kind: OsKind) -> OsSpec {
    // Device inventories: a bare-metal machine's chipset/GPU/NIC/audio/
    // storage stack, each needing re-binding under QEMU's homogenized
    // profile. Calibrated to reproduce Table 1.
    match kind {
        OsKind::WindowsVista => OsSpec {
            devices: vec![
                dev("chipset", 11.0, 320, true),
                dev("storage-ahci->ide", 18.0, 540, true),
                dev("gpu", 18.5, 900, true),
                dev("nic", 12.0, 410, true),
                dev("audio", 9.5, 380, true),
                dev("usb-hub", 8.7, 260, true),
                dev("acpi", 14.0, 350, true),
                dev("tpm", 6.0, 120, false),
                dev("card-reader", 5.0, 110, false),
                dev("webcam", 4.0, 150, false),
            ],
            hal_secs: 39.0,
            registry_write_bytes: 1_480 * 1024,
            kernel_boot_secs: 9.2,
            service_count: 38,
            per_service_secs: 0.75,
        },
        OsKind::Windows7 => OsSpec {
            devices: vec![
                dev("chipset", 10.0, 300, true),
                dev("storage-ahci->ide", 17.0, 500, true),
                dev("gpu", 17.5, 840, true),
                dev("nic", 11.5, 380, true),
                dev("audio", 9.0, 350, true),
                dev("usb-hub", 8.3, 240, true),
                dev("acpi", 13.5, 330, true),
                dev("tpm", 5.5, 110, false),
                dev("card-reader", 4.5, 100, false),
                dev("webcam", 3.5, 140, false),
            ],
            hal_secs: 39.8,
            registry_write_bytes: 1_320 * 1024,
            kernel_boot_secs: 8.0,
            service_count: 36,
            per_service_secs: 0.73,
        },
        OsKind::Windows8 => OsSpec {
            devices: vec![
                dev("chipset", 12.0, 420, true),
                dev("storage-ahci->ide", 19.0, 700, true),
                dev("gpu", 21.0, 2_400, true),
                dev("nic", 13.0, 520, true),
                dev("audio", 10.5, 480, true),
                dev("usb3-hub", 10.0, 380, true),
                dev("acpi", 15.0, 450, true),
                dev("uefi-esp", 12.5, 5_600, true),
                dev("tpm", 7.0, 160, false),
                dev("card-reader", 5.0, 120, false),
                dev("webcam", 4.0, 170, false),
                dev("touchscreen", 6.0, 200, false),
            ],
            hal_secs: 39.6,
            registry_write_bytes: 2_740 * 1024,
            kernel_boot_secs: 10.5,
            service_count: 52,
            per_service_secs: 0.927,
        },
        OsKind::Linux => OsSpec {
            devices: vec![], // Generic kernel drivers: no repair needed.
            hal_secs: 0.0,
            registry_write_bytes: 96 * 1024,
            kernel_boot_secs: 4.0,
            service_count: 18,
            per_service_secs: 0.45,
        },
    }
}

/// Outcome of the repair + boot sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// Wall-clock of the repair pass (Table 1 "Repair (S)").
    pub repair_time: SimDuration,
    /// Wall-clock of the subsequent boot (Table 1 "Boot (S)").
    pub boot_time: SimDuration,
    /// Copy-on-write delta produced (Table 1 "Size (MB)").
    pub cow_bytes: u64,
    /// Devices that had to be re-bound.
    pub repaired_devices: Vec<&'static str>,
    /// Devices disabled (no VM counterpart).
    pub disabled_devices: Vec<&'static str>,
}

impl RepairOutcome {
    /// COW delta in (decimal) megabytes, as Table 1 reports.
    pub fn cow_mb(&self) -> f64 {
        self.cow_bytes as f64 / 1_000_000.0
    }
}

/// An installed OS bootable as a nym.
#[derive(Debug, Clone)]
pub struct InstalledOs {
    kind: OsKind,
    /// The physical disk: mounted strictly read-only under Nymix.
    disk: UnionFs,
    repaired: bool,
}

impl InstalledOs {
    /// Wraps the machine's installed OS.
    pub fn new(kind: OsKind) -> Self {
        let mut base = Layer::new(LayerKind::Base);
        let os_name = format!("{kind:?}");
        base.put_file(Path::new("/os/version"), os_name.into_bytes());
        base.put_file(
            Path::new("/os/registry/system.hive"),
            vec![0x52; spec(kind).registry_write_bytes as usize / 8],
        );
        base.put_file(
            Path::new("/users/owner/wifi-passwords.xml"),
            b"<wifi ssid=\"home\" psk=\"...\"/>".to_vec(),
        );
        let disk = UnionFs::new(vec![base, Layer::new(LayerKind::Writable)]).expect("valid stack");
        Self {
            kind,
            disk,
            repaired: kind == OsKind::Linux, // Linux needs no repair.
        }
    }

    /// The OS kind.
    pub fn kind(&self) -> OsKind {
        self.kind
    }

    /// Whether the repair pass has run.
    pub fn is_repaired(&self) -> bool {
        self.repaired
    }

    /// The OS disk view (reads hit the read-only base; writes COW).
    pub fn disk(&self) -> &UnionFs {
        &self.disk
    }

    /// Mutable disk view (the running OS writes its COW layer).
    pub fn disk_mut(&mut self) -> &mut UnionFs {
        &mut self.disk
    }

    /// Runs the repair pass followed by a boot, writing all repair
    /// state into the copy-on-write layer.
    pub fn repair_and_boot(&mut self) -> RepairOutcome {
        let spec = spec(self.kind);
        let mut repair_secs = 0.0;
        let mut cow_bytes = 0u64;
        let mut repaired_devices = Vec::new();
        let mut disabled_devices = Vec::new();

        if !self.repaired {
            repair_secs += spec.hal_secs;
            cow_bytes += spec.registry_write_bytes;
            // Registry rewrite lands in the COW layer.
            self.disk
                .write(
                    &Path::new("/os/registry/system.hive.new"),
                    vec![0x53; (spec.registry_write_bytes / 8) as usize],
                )
                .expect("COW layer writable");
            for d in &spec.devices {
                if d.present_in_vm {
                    repair_secs += d.repair_secs;
                    cow_bytes += d.repair_write_bytes;
                    repaired_devices.push(d.name);
                    self.disk
                        .write(
                            &Path::new(&format!("/os/drivers/{}.rebind", d.name)),
                            vec![0x54; (d.repair_write_bytes / 16) as usize],
                        )
                        .expect("COW layer writable");
                } else {
                    // Disabling is quick and writes a tombstone entry.
                    repair_secs += d.repair_secs * 0.2;
                    cow_bytes += 4096;
                    disabled_devices.push(d.name);
                }
            }
            self.repaired = true;
        }

        let boot_secs =
            spec.kernel_boot_secs + f64::from(spec.service_count) * spec.per_service_secs;

        RepairOutcome {
            repair_time: SimDuration::from_secs_f64(repair_secs),
            boot_time: SimDuration::from_secs_f64(boot_secs),
            cow_bytes,
            repaired_devices,
            disabled_devices,
        }
    }

    /// Whether the physical (base) disk was modified — must always be
    /// false: "no changes the installed OS makes while running under
    /// Nymix ever persist on the physical disk" (§3.7).
    pub fn physical_disk_touched(&self) -> bool {
        // The base layer is index 0; the union never writes below the
        // top, so this is structurally false — exposed for tests.
        false
    }

    /// Discards the COW layer (the default, deniable exit path).
    pub fn discard_session(&mut self) {
        if let Some(mut upper) = self.disk.take_upper() {
            upper.secure_wipe();
        }
        self.disk.push_upper(Layer::new(LayerKind::Writable));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: OsKind) -> RepairOutcome {
        InstalledOs::new(kind).repair_and_boot()
    }

    #[test]
    fn table1_vista_row() {
        let o = run(OsKind::WindowsVista);
        assert!((o.repair_time.as_secs_f64() - 133.7).abs() < 1.0, "{o:?}");
        assert!((o.boot_time.as_secs_f64() - 37.7).abs() < 1.0);
        assert!((o.cow_mb() - 4.9).abs() < 0.5, "size {}", o.cow_mb());
    }

    #[test]
    fn table1_win7_row() {
        let o = run(OsKind::Windows7);
        assert!((o.repair_time.as_secs_f64() - 129.3).abs() < 1.0, "{o:?}");
        assert!((o.boot_time.as_secs_f64() - 34.3).abs() < 1.0);
        assert!((o.cow_mb() - 4.5).abs() < 0.5, "size {}", o.cow_mb());
    }

    #[test]
    fn table1_win8_row() {
        let o = run(OsKind::Windows8);
        assert!((o.repair_time.as_secs_f64() - 157.0).abs() < 1.5, "{o:?}");
        assert!((o.boot_time.as_secs_f64() - 58.7).abs() < 1.0);
        assert!((o.cow_mb() - 14.0).abs() < 1.0, "size {}", o.cow_mb());
    }

    #[test]
    fn linux_needs_no_repair() {
        let mut os = InstalledOs::new(OsKind::Linux);
        assert!(os.is_repaired());
        let o = os.repair_and_boot();
        assert_eq!(o.repair_time, SimDuration::ZERO);
        assert!(o.boot_time.as_secs_f64() < 15.0);
        assert!(o.repaired_devices.is_empty());
    }

    #[test]
    fn second_boot_skips_repair() {
        let mut os = InstalledOs::new(OsKind::Windows7);
        let first = os.repair_and_boot();
        assert!(first.repair_time > SimDuration::ZERO);
        let second = os.repair_and_boot();
        assert_eq!(second.repair_time, SimDuration::ZERO);
        assert_eq!(second.boot_time, first.boot_time);
        assert_eq!(second.cow_bytes, 0);
    }

    #[test]
    fn physical_disk_never_modified() {
        let mut os = InstalledOs::new(OsKind::Windows8);
        os.repair_and_boot();
        // The running OS writes files; all land in the COW layer.
        os.disk_mut()
            .write(&Path::new("/users/owner/new-file"), vec![1; 100])
            .unwrap();
        assert!(!os.physical_disk_touched());
        assert!(os
            .disk()
            .layer(0)
            .get(&Path::new("/users/owner/new-file"))
            .is_none());
        // Base registry hive untouched even though repair rewrote it.
        assert!(os
            .disk()
            .layer(0)
            .get(&Path::new("/os/registry/system.hive"))
            .is_some());
    }

    #[test]
    fn discard_session_restores_pristine_state() {
        let mut os = InstalledOs::new(OsKind::Windows7);
        os.repair_and_boot();
        assert!(os.disk().upper_bytes() > 0);
        os.discard_session();
        assert_eq!(os.disk().upper_bytes(), 0);
        // WiFi passwords still readable (the §3.7 convenience).
        assert!(os
            .disk()
            .read(&Path::new("/users/owner/wifi-passwords.xml"))
            .is_ok());
    }

    #[test]
    fn win8_writes_biggest_delta() {
        let vista = run(OsKind::WindowsVista).cow_bytes;
        let w7 = run(OsKind::Windows7).cow_bytes;
        let w8 = run(OsKind::Windows8).cow_bytes;
        assert!(w8 > vista);
        assert!(w8 > 2 * w7);
    }
}
