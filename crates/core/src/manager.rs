//! The Nym Manager.
//!
//! "Nymix's most crucial component is its Nym Manager, which manages
//! nyms and separates all client-side browsing and other activities
//! into separate virtual machines or nymboxes for each nym" (§3.1).
//!
//! The manager owns the whole machine model: the hypervisor (VMs,
//! memory, CPU), the packet fabric (isolation), the fluid flow network
//! (timing), the relay directory, DNS, cloud providers, and local
//! storage. Its operations implement the §3.5 workflow verbatim:
//! *start a fresh nym*, *store nym* (pause → sync → compress → encrypt
//! → upload via the nym's own CommVM), and *load an existing nym*
//! (ephemeral fetch nym → download → decrypt → resume).

use std::collections::BTreeMap;

use nymix_anon::tor::{TorClient, TorDirectory, TorState};
use nymix_anon::{Anonymizer, AnonymizerKind, DissentNet, Incognito, Sweet};
use nymix_net::dns::DnsDb;
use nymix_net::firewall::{Action, Direction, Firewall, Rule};
use nymix_net::flow::calib as netcal;
use nymix_net::{Fabric, FlowNet, Ip, LinkId, Mac, NodeId, NodeKind};
use nymix_sim::{Rng, SimDuration, SimTime};
use nymix_store::cas::{self, ChunkIndex, ChunkManifest};
use nymix_store::cloud::CloudSession;
use nymix_store::{
    blob_salt, seal_delta_keyed_into, seal_keyed_into, unseal_keyed_raw_into, CloudProvider,
    DeltaArchive, LocalStore, NymArchive, ObjectBackend, SealKey, SealScratch,
    CHUNK_RECORD_THRESHOLD, DELTA_CHAIN_LIMIT,
};
use nymix_vmm::{Hypervisor, HypervisorError, VmConfig};
use nymix_workload::browser::BrowserState;
use nymix_workload::{BrowserSession, Site};

use crate::nymbox::{Nymbox, UsageModel};
use crate::timing::{calib as tcal, StartupBreakdown};

/// Identifies a nym within a manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NymId(pub u64);

/// Where quasi-persistent state is kept (§3.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageDest {
    /// Anonymous cloud storage: deniable, needs an ephemeral fetch nym.
    Cloud {
        /// Provider name (must be registered).
        provider: String,
        /// Pseudonymous account id.
        account: String,
        /// Account credential.
        credential: String,
    },
    /// Local partition / USB drive: faster, not deniable.
    Local,
}

/// Errors from Nym Manager operations.
#[derive(Debug)]
pub enum NymManagerError {
    /// The hypervisor refused (usually memory admission).
    Hypervisor(HypervisorError),
    /// Unknown nym id.
    NoSuchNym(NymId),
    /// Unknown cloud provider.
    NoSuchProvider(String),
    /// Storage/crypto failure on save or restore.
    Storage(String),
    /// The nym has no stored state to restore.
    NothingStored,
}

impl core::fmt::Display for NymManagerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NymManagerError::Hypervisor(e) => write!(f, "hypervisor: {e}"),
            NymManagerError::NoSuchNym(id) => write!(f, "no such nym: {id:?}"),
            NymManagerError::NoSuchProvider(p) => write!(f, "no such provider: {p}"),
            NymManagerError::Storage(s) => write!(f, "storage: {s}"),
            NymManagerError::NothingStored => write!(f, "no stored state for nym"),
        }
    }
}

impl std::error::Error for NymManagerError {}

impl From<HypervisorError> for NymManagerError {
    fn from(e: HypervisorError) -> Self {
        NymManagerError::Hypervisor(e)
    }
}

struct NymEntry {
    nymbox: Nymbox,
    anonymizer: Box<dyn Anonymizer>,
    browser: Option<BrowserState>,
}

/// Whether a store-nym operation sealed the full archive or only the
/// dirty-record delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveKind {
    /// The whole record set was sealed (and a new chain epoch began).
    Full,
    /// Only records dirty since the previous snapshot were sealed.
    Delta,
}

/// Record name carrying the chain epoch inside each full archive: a
/// compacting save bumps it, so deltas stranded by an older epoch are
/// never even fetched on restore.
const EPOCH_RECORD: &str = "snapshot.epoch";

/// Per-storage-label snapshot-chain bookkeeping: what the last sealed
/// full logical state was, which nym and layer generations it captured,
/// and the chain key deltas are sealed under.
struct ChainState {
    /// KDF output for this chain epoch; deltas reuse it (fresh nonce,
    /// own label as AEAD data) so an incremental save skips PBKDF2.
    key: SealKey,
    epoch: u64,
    delta_count: usize,
    /// The archive as of the latest save on this chain, in **stored
    /// form**: records at or above [`CHUNK_RECORD_THRESHOLD`] hold
    /// their `"NYMC"` chunk manifest, the payload living in per-chunk
    /// objects beside the chain. Diffing stored forms is what makes a
    /// sub-record write ship a new manifest plus O(1) chunks.
    archive: NymArchive,
    /// Refcounts of the chunk objects this epoch's live manifests
    /// reference; retired versions are swept by refcount, retired
    /// epochs by mark-and-sweep.
    chunks: ChunkIndex,
    /// The live nym the generation baselines below belong to.
    source: NymId,
    anon_gen: u64,
    comm_gen: u64,
}

/// Storage object name of delta `index` in chain epoch `epoch`.
fn delta_label(label: &str, epoch: u64, index: usize) -> String {
    format!("{label}#e{epoch}.{index}")
}

/// Chunk-object namespace of chain epoch `epoch` (chunks live at
/// `"{prefix}/c/{chunk_id}"`, sealed under the epoch's key with that
/// full name as AEAD data — see [`nymix_store::cas`]).
fn chunk_prefix(label: &str, epoch: u64) -> String {
    format!("{label}#e{epoch}")
}

/// A record's logical (pre-chunking) payload length: manifests report
/// the length of the content they describe, raw records their own.
fn record_logical_len(data: &[u8]) -> usize {
    ChunkManifest::from_bytes(data).map_or(data.len(), |m| m.total_len())
}

/// The storage destination presented as a flat [`ObjectBackend`]: a
/// credentialed cloud session observing the anonymizer's exit address,
/// or the local partition. Everything the save/restore pipeline ships —
/// base archives, deltas, chunk objects — moves through this one
/// interface.
enum DestBackend<'a> {
    Cloud(CloudSession<'a>),
    Local(&'a mut LocalStore),
}

impl ObjectBackend for DestBackend<'_> {
    fn put(&mut self, name: &str, data: Vec<u8>) -> Result<(), nymix_store::BackendError> {
        match self {
            DestBackend::Cloud(s) => s.put(name, data),
            DestBackend::Local(s) => ObjectBackend::put(*s, name, data),
        }
    }

    fn get(&mut self, name: &str) -> Result<Option<&[u8]>, nymix_store::BackendError> {
        match self {
            DestBackend::Cloud(s) => s.get(name),
            DestBackend::Local(s) => ObjectBackend::get(*s, name),
        }
    }

    fn delete(&mut self, name: &str) -> Result<bool, nymix_store::BackendError> {
        match self {
            DestBackend::Cloud(s) => s.delete(name),
            DestBackend::Local(s) => ObjectBackend::delete(*s, name),
        }
    }

    fn list(&mut self, out: &mut Vec<String>) -> Result<(), nymix_store::BackendError> {
        match self {
            DestBackend::Cloud(s) => s.list(out),
            DestBackend::Local(s) => ObjectBackend::list(*s, out),
        }
    }
}

/// The Nym Manager and its machine model.
pub struct NymManager {
    hv: Hypervisor,
    fabric: Fabric,
    flows: FlowNet,
    access_link: LinkId,
    dns: DnsDb,
    directory: TorDirectory,
    rng: Rng,
    clock: SimTime,
    nyms: BTreeMap<NymId, NymEntry>,
    next_nym: u64,
    cloud: BTreeMap<String, CloudProvider>,
    local: LocalStore,
    browser_scale: u64,
    /// Per-record sizes of the most recent save: (anonvm, commvm,
    /// other) payload bytes — Figure 6's "AnonVM content accounting
    /// for 85% of the pseudonym size" breakdown.
    last_save_breakdown: Option<(usize, usize, usize)>,
    /// Reusable sealing arena: store-nym runs on every save and
    /// restore-nym on every load, so the serialize/compress (and
    /// decrypt/decompress) working memory persists across both.
    seal_scratch: SealScratch,
    /// Ciphertext working copy for restores, reused alongside the arena.
    unseal_work: Vec<u8>,
    /// Snapshot chains by storage label (the incremental store-nym
    /// state). Holding the last full archive in memory is what lets a
    /// save skip serializing clean layers and seal only the delta.
    chains: BTreeMap<String, ChainState>,
    /// Whether incremental saves split large records into
    /// content-addressed chunks (see [`nymix_store::cas`]). On by
    /// default; disabling it keeps record-granular NYMD deltas, which
    /// is what the dedup-savings comparisons measure against.
    chunking: bool,
    // Fabric landmarks.
    hyp_node: NodeId,
    internet_node: NodeId,
    intranet_node: NodeId,
    public_ip: Ip,
    lan_gateway_ip: Ip,
}

impl NymManager {
    /// Boots Nymix on the paper's testbed (minimal base image for
    /// speed; `browser_scale` divides browser byte volumes — use 1 for
    /// full fidelity, 16–64 for fast runs).
    pub fn new(seed: u64, browser_scale: u64) -> Self {
        let mut fabric = Fabric::new();
        let public_ip = Ip::parse("203.0.113.9");
        let lan_gateway_ip = Ip::parse("192.168.1.1");

        // The hypervisor host: NAT from nymboxes to the access link,
        // plus a leg on the local intranet.
        let hyp_node = fabric.add_node("hypervisor", NodeKind::Nat);
        let hyp_wan = fabric.add_iface(hyp_node, Mac::host_nic(1), public_ip);
        let hyp_lan = fabric.add_iface(hyp_node, Mac::host_nic(2), Ip::parse("192.168.1.100"));

        // The wide-area Internet: owns every evaluation-site address.
        let internet_node = fabric.add_node("internet", NodeKind::Internet);
        let inet_iface =
            fabric.add_iface(internet_node, Mac::host_nic(3), Ip::parse("198.51.100.1"));
        let dns = DnsDb::with_eval_sites();
        for (i, name) in [
            "gmail.com",
            "twitter.com",
            "youtube.com",
            "blog.torproject.org",
            "bbc.co.uk",
            "facebook.com",
            "slashdot.org",
            "espn.com",
            "kernel.deterlab.net",
            "cloud.dropbox.example",
            "cloud.drive.example",
        ]
        .iter()
        .enumerate()
        {
            let ip = dns.resolve(name).expect("eval site registered");
            fabric.add_iface(internet_node, Mac::host_nic(100 + i as u32), ip);
        }
        // Tor relays live on the internet node too (198.18.0.0/15).
        for i in 0..4u32 {
            fabric.add_iface(
                internet_node,
                Mac::host_nic(200 + i),
                Ip([198, 18, 0, i as u8]),
            );
        }
        fabric.connect(hyp_node, hyp_wan, internet_node, inet_iface);
        fabric.add_route(internet_node, Ip::parse("0.0.0.0"), 0, inet_iface);

        // The local intranet (what CommVMs must NOT reach, §5.1).
        let intranet_node = fabric.add_node("intranet-fileserver", NodeKind::Host);
        let intr_iface = fabric.add_iface(intranet_node, Mac::host_nic(4), lan_gateway_ip);
        fabric.connect(hyp_node, hyp_lan, intranet_node, intr_iface);
        fabric.add_route(intranet_node, Ip::parse("0.0.0.0"), 0, intr_iface);

        // Hypervisor routing: LAN to the LAN leg, everything else WAN.
        fabric.add_route(hyp_node, Ip::parse("0.0.0.0"), 0, hyp_wan);
        fabric.add_route(hyp_node, Ip::parse("192.168.1.0"), 24, hyp_lan);

        // Fluid network: the shaped 10 Mbit/s access link.
        let mut flows = FlowNet::new();
        let access_link = flows.add_link(netcal::ACCESS_LINK_BPS, netcal::ACCESS_ONE_WAY);

        let mut rng = Rng::seed_from(seed);
        let directory = TorDirectory::generate(rng.next_u64(), 120);

        // Boot-time DHCP: the only LAN traffic an idle Nymix host emits
        // (§5.1: "The Nymix hypervisor emitted only traffic for DHCP and
        // anonymizer traffic").
        let dhcp =
            nymix_net::fabric::Packet::udp(Ip::parse("192.168.1.100"), lan_gateway_ip, 67, 300);
        let _ = fabric.send(hyp_node, dhcp);

        Self {
            hv: Hypervisor::paper_testbed_minimal(),
            fabric,
            flows,
            access_link,
            dns,
            directory,
            rng,
            clock: SimTime::ZERO,
            nyms: BTreeMap::new(),
            next_nym: 1,
            cloud: BTreeMap::new(),
            local: LocalStore::new(),
            browser_scale,
            last_save_breakdown: None,
            seal_scratch: SealScratch::new(),
            unseal_work: Vec::new(),
            chains: BTreeMap::new(),
            chunking: true,
            hyp_node,
            internet_node,
            intranet_node,
            public_ip,
            lan_gateway_ip,
        }
    }

    /// Enables or disables content-addressed chunking of large records
    /// on the incremental save path (on by default). Restores always
    /// resolve chunked records regardless, so toggling never strands
    /// stored state.
    pub fn set_chunking(&mut self, enabled: bool) {
        self.chunking = enabled;
    }

    /// Whether incremental saves chunk large records.
    pub fn chunking(&self) -> bool {
        self.chunking
    }

    /// Registers a cloud provider (e.g. "dropbox") with one account.
    pub fn register_cloud(&mut self, provider: &str, account: &str, credential: &str) {
        let mut p = CloudProvider::new(provider);
        p.create_account(account, credential);
        self.cloud.insert(provider.to_string(), p);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The hypervisor (for memory/CPU accounting).
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// Mutable hypervisor access (ablation knobs like KSM).
    pub fn hypervisor_mut(&mut self) -> &mut Hypervisor {
        &mut self.hv
    }

    /// The packet fabric (for validation probes).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Mutable fabric access (validation probes mutate trace state).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// A registered cloud provider.
    pub fn cloud_provider(&self, name: &str) -> Option<&CloudProvider> {
        self.cloud.get(name)
    }

    /// The local store.
    pub fn local_store(&self) -> &LocalStore {
        &self.local
    }

    /// Live nym ids.
    pub fn nym_ids(&self) -> Vec<NymId> {
        self.nyms.keys().copied().collect()
    }

    /// A live nymbox.
    pub fn nymbox(&self, id: NymId) -> Result<&Nymbox, NymManagerError> {
        self.nyms
            .get(&id)
            .map(|e| &e.nymbox)
            .ok_or(NymManagerError::NoSuchNym(id))
    }

    /// The anonymizer running in a nym's CommVM.
    pub fn anonymizer(&self, id: NymId) -> Result<&dyn Anonymizer, NymManagerError> {
        self.nyms
            .get(&id)
            .map(|e| e.anonymizer.as_ref())
            .ok_or(NymManagerError::NoSuchNym(id))
    }

    fn build_anonymizer(&mut self, kind: AnonymizerKind) -> Box<dyn Anonymizer> {
        match kind {
            AnonymizerKind::Tor => {
                let mut tor = TorClient::bootstrap(&self.directory, &mut self.rng);
                // The startup phases include the circuit build; give the
                // client its live circuit so exit_address is a real exit.
                let _ = tor.build_circuit(&self.directory, &mut self.rng);
                Box::new(tor)
            }
            AnonymizerKind::Dissent => Box::new(DissentNet::new(8, 3, 512, self.rng.next_u64())),
            AnonymizerKind::Incognito => Box::new(Incognito::new()),
            AnonymizerKind::Sweet => Box::new(Sweet::new()),
        }
    }

    /// Starts a fresh nym (§3.5 workflow: "start a fresh nym").
    ///
    /// Returns the nym id and the startup breakdown (boot + anonymizer
    /// phases; page load is measured by [`NymManager::visit_site`]).
    pub fn create_nym(
        &mut self,
        name: &str,
        kind: AnonymizerKind,
        model: UsageModel,
    ) -> Result<(NymId, StartupBreakdown), NymManagerError> {
        let anonymizer = self.build_anonymizer(kind);
        self.instantiate(name, kind, model, anonymizer, None, true)
    }

    fn instantiate(
        &mut self,
        name: &str,
        kind: AnonymizerKind,
        model: UsageModel,
        mut anonymizer: Box<dyn Anonymizer>,
        restored: Option<RestoredState>,
        cold: bool,
    ) -> Result<(NymId, StartupBreakdown), NymManagerError> {
        // VMs.
        let anon_vm = self.hv.create_vm(VmConfig::anonvm())?;
        let comm_vm = match self.hv.create_vm(VmConfig::commvm()) {
            Ok(id) => id,
            Err(e) => {
                // Roll back the half-built nymbox.
                let _ = self.hv.destroy_vm(anon_vm);
                return Err(e.into());
            }
        };
        self.hv.boot(anon_vm)?;
        self.hv.boot(comm_vm)?;

        // Restore saved disk layers and anonymizer state if present.
        if let Some(state) = restored {
            let vm = self.hv.vm_mut(anon_vm)?;
            let _ = vm.take_disk_upper();
            assert!(vm.push_disk_upper(state.anon_upper));
            let vm = self.hv.vm_mut(comm_vm)?;
            let _ = vm.take_disk_upper();
            assert!(vm.push_disk_upper(state.comm_upper));
            if let Some(blob) = state.anonymizer_state {
                anonymizer.restore_state(&blob);
            }
        }

        // Network wiring: AnonVM --(virtual wire)-- CommVM --(uplink)--
        // hypervisor NAT. Addresses are identical for every nymbox
        // (§4.2 homogeneity).
        let n = self.next_nym;
        let anon_node = self.fabric.add_node(&format!("anonvm-{n}"), NodeKind::Host);
        let anon_if = self
            .fabric
            .add_iface(anon_node, Mac::ANONVM_FIXED, Ip::ANONVM_FIXED);
        let comm_node = self.fabric.add_node(&format!("commvm-{n}"), NodeKind::Nat);
        let comm_wire = self
            .fabric
            .add_iface(comm_node, Mac::COMMVM_FIXED, Ip::COMMVM_WIRE);
        let comm_up = self
            .fabric
            .add_iface(comm_node, Mac::COMMVM_FIXED, Ip::parse("10.0.3.2"));
        let hyp_leg = self.fabric.add_iface(
            self.hyp_node,
            Mac::host_nic(1000 + n as u32),
            Ip::parse("10.0.3.1"),
        );
        self.fabric
            .connect(anon_node, anon_if, comm_node, comm_wire);
        self.fabric
            .connect(comm_node, comm_up, self.hyp_node, hyp_leg);
        self.fabric
            .add_route(anon_node, Ip::parse("0.0.0.0"), 0, anon_if);
        self.fabric
            .add_route(comm_node, Ip::parse("10.0.2.0"), 24, comm_wire);
        self.fabric
            .add_route(comm_node, Ip::parse("0.0.0.0"), 0, comm_up);

        // CommVM egress policy: wire + uplink gateway + public Internet
        // only. Private space (the user's LAN, other VMs) is
        // unreachable — the §5.1 matrix.
        let mut fw = Firewall::default_drop();
        fw.push(Rule {
            direction: Direction::In,
            src: Some((Ip::parse("10.0.2.0"), 24)),
            dst: None,
            proto: None,
            dst_port: None,
            action: Action::Allow,
        });
        fw.push(Rule {
            direction: Direction::In,
            src: None,
            dst: Some((Ip::parse("10.0.3.2"), 32)),
            proto: None,
            dst_port: None,
            action: Action::Allow,
        });
        for (net, len) in [
            (Ip::parse("192.168.0.0"), 16u8),
            (Ip::parse("172.16.0.0"), 12),
            (Ip::parse("10.0.2.0"), 24),
        ] {
            fw.push(Rule {
                direction: Direction::Out,
                src: None,
                dst: Some((net, len)),
                proto: None,
                dst_port: None,
                action: if net == Ip::parse("10.0.2.0") {
                    Action::Allow // Its own wire.
                } else {
                    Action::Drop
                },
            });
        }
        fw.push(Rule {
            direction: Direction::Out,
            src: None,
            dst: Some((Ip::parse("10.0.0.0"), 8)),
            proto: None,
            dst_port: None,
            action: Action::Drop,
        });
        fw.push(Rule::allow_all(Direction::Out));
        // Out rules above are evaluated before the default drop; the
        // 10/8 drop must come after the wire allow but before allow-all
        // — the push order above encodes exactly that.
        self.fabric.set_firewall(comm_node, fw);

        // Startup timing.
        let breakdown = StartupBreakdown {
            ephemeral_fetch: SimDuration::ZERO,
            boot_vm: tcal::ANONVM_BOOT,
            start_anonymizer: anonymizer.startup_time(cold),
            load_page: SimDuration::ZERO,
        };
        self.clock += breakdown.boot_vm + breakdown.start_anonymizer;

        let id = NymId(self.next_nym);
        self.next_nym += 1;
        self.nyms.insert(
            id,
            NymEntry {
                nymbox: Nymbox {
                    name: name.to_string(),
                    model,
                    anonymizer: kind,
                    anon_vm,
                    comm_vm,
                    anon_node,
                    comm_node,
                    restored: false, // restore_nym overwrites after fetch
                },
                anonymizer,
                browser: None,
            },
        );
        Ok((id, breakdown))
    }

    /// Visits `site` in the nym's browser. Returns the page-load time
    /// (network via the anonymizer + render).
    pub fn visit_site(&mut self, id: NymId, site: Site) -> Result<SimDuration, NymManagerError> {
        let entry = self
            .nyms
            .get_mut(&id)
            .ok_or(NymManagerError::NoSuchNym(id))?;
        let cost = entry.anonymizer.transfer_cost();
        let profile = site.profile();

        // Network: the page rides the shared access link, inflated by
        // the anonymizer and throttled by its cap (if any).
        let start = self.clock;
        let wire = cost.wire_bytes(profile.page_weight as f64);
        let flow = self.flows.start_flow(start, vec![self.access_link], wire);
        let mut finish = start;
        while self.flows.flow_remaining(flow).is_some() {
            let next = self
                .flows
                .next_event()
                .expect("flow pending implies an event");
            self.flows.advance(next);
            finish = next;
        }
        if let Some(t) = self.flows.completions().get(&flow) {
            finish = *t;
        }
        let network = finish.since(start) + cost.connect_latency;
        let load = network + tcal::PAGE_RENDER;
        self.clock = start + load;

        // Client-side state: the browser writes cache/cookies into the
        // AnonVM and dirties guest memory.
        let entry_comm = entry.nymbox.comm_vm;
        let vm = self.hv.vm_mut(entry.nymbox.anon_vm)?;
        // Rendering overwrites a slice of previously-pristine shared
        // pages too, slightly reducing what KSM can merge (the
        // before/after gap in Figure 3's shared-pages series).
        vm.memory_mut().dirty_shared_pages(512);
        let state = entry.browser.take().unwrap_or_else(|| {
            BrowserState::fresh(Rng::seed_from(self.rng.next_u64()), self.browser_scale)
        });
        let mut session = BrowserSession::resume(vm, state);
        session.visit(site);
        entry.browser = Some(session.suspend());

        // The CommVM's anonymizer also accretes disk state (consensus
        // cache, descriptors, logs) — the other ~15% of a saved nym's
        // payload (§5.3).
        let scale = self.browser_scale as usize;
        let comm = self.hv.vm_mut(entry_comm)?;
        let consensus = nymix_fs::Path::new("/var/lib/tor/cached-consensus");
        if !comm.disk().exists(&consensus) {
            comm.disk_mut()
                .write(&consensus, deterministic_blob(0xC0_45, 2_500_000 / scale))
                .map_err(|e| NymManagerError::Storage(e.to_string()))?;
        }
        comm.disk_mut()
            .append(
                &nymix_fs::Path::new("/var/lib/tor/cached-descriptors"),
                &deterministic_blob(0xDE_5C, 180_000 / scale),
            )
            .map_err(|e| NymManagerError::Storage(e.to_string()))?;
        Ok(load)
    }

    /// Injects an evercookie-style stain into the nym's browser (§3.3
    /// attack model; used by the amnesia tests).
    pub fn inject_stain(&mut self, id: NymId, marker: &str) -> Result<(), NymManagerError> {
        let entry = self
            .nyms
            .get_mut(&id)
            .ok_or(NymManagerError::NoSuchNym(id))?;
        let vm = self.hv.vm_mut(entry.nymbox.anon_vm)?;
        let state = entry.browser.take().unwrap_or_else(|| {
            BrowserState::fresh(Rng::seed_from(self.rng.next_u64()), self.browser_scale)
        });
        let mut session = BrowserSession::resume(vm, state);
        session.inject_stain(marker);
        entry.browser = Some(session.suspend());
        Ok(())
    }

    /// Whether a stain marker is visible in the nym's AnonVM.
    pub fn has_stain(&mut self, id: NymId, marker: &str) -> Result<bool, NymManagerError> {
        let entry = self
            .nyms
            .get_mut(&id)
            .ok_or(NymManagerError::NoSuchNym(id))?;
        let vm = self.hv.vm_mut(entry.nymbox.anon_vm)?;
        let state = entry
            .browser
            .take()
            .unwrap_or_else(|| BrowserState::fresh(Rng::seed_from(0), self.browser_scale));
        let session = BrowserSession::resume(vm, state);
        let stained = session.has_stain(marker);
        entry.browser = Some(session.suspend());
        Ok(stained)
    }

    /// Stores a nym (§3.5 "store nym"): pause, sync, compress, encrypt,
    /// upload through the nym's own CommVM. Returns the sealed size and
    /// the wall-clock cost. Always seals the full archive (starting a
    /// fresh chain epoch); see [`NymManager::save_nym_incremental`] for
    /// the delta path.
    pub fn save_nym(
        &mut self,
        id: NymId,
        password: &str,
        dest: &StorageDest,
    ) -> Result<(usize, SimDuration), NymManagerError> {
        let (_, size, duration) = self.save_nym_with(id, password, dest, false)?;
        Ok((size, duration))
    }

    /// Incremental store-nym: when a snapshot chain exists for this
    /// nym and destination, seals **only the records dirty since the
    /// last save** as a [`DeltaArchive`] — dirty disk records are
    /// detected from the writable layers' generation counters without
    /// serializing clean state, the chain's [`SealKey`] skips the
    /// per-save PBKDF2, and the delta commits to the Merkle root of the
    /// full record set so restore fails closed on tampering.
    ///
    /// Falls back to a full save (compaction) when no usable chain
    /// exists, after [`DELTA_CHAIN_LIMIT`] chained deltas, or when the
    /// serialized delta would be no smaller than the full archive (a
    /// delta would not pay for itself).
    pub fn save_nym_incremental(
        &mut self,
        id: NymId,
        password: &str,
        dest: &StorageDest,
    ) -> Result<(SaveKind, usize, SimDuration), NymManagerError> {
        self.save_nym_with(id, password, dest, true)
    }

    fn save_nym_with(
        &mut self,
        id: NymId,
        password: &str,
        dest: &StorageDest,
        allow_delta: bool,
    ) -> Result<(SaveKind, usize, SimDuration), NymManagerError> {
        let entry = self.nyms.get(&id).ok_or(NymManagerError::NoSuchNym(id))?;
        let label = storage_label(&entry.nymbox.name, dest);
        let anon_vm = entry.nymbox.anon_vm;
        let comm_vm = entry.nymbox.comm_vm;

        // Pause both VMs while the writable layers are captured.
        self.hv.vm_mut(anon_vm)?.pause();
        self.hv.vm_mut(comm_vm)?.pause();
        let anon_gen = self
            .hv
            .vm(anon_vm)?
            .disk()
            .upper()
            .map(nymix_fs::Layer::generation)
            .ok_or_else(|| NymManagerError::Storage("anon upper missing".into()))?;
        let comm_gen = self
            .hv
            .vm(comm_vm)?
            .disk()
            .upper()
            .map(nymix_fs::Layer::generation)
            .ok_or_else(|| NymManagerError::Storage("comm upper missing".into()))?;

        // The layers' generation counters say which disk records are
        // dirty since the chain's last snapshot — clean layers are
        // neither cloned nor re-serialized when a delta is possible. A
        // chain recorded from a different (destroyed) nym can't donate
        // generations or absorb deltas, but its epoch must still
        // advance: re-using an epoch number would collide with that
        // chain's stale delta and chunk objects.
        let last_epoch = self.chains.get(&label).map(|c| c.epoch);
        let chain = self.chains.get(&label).filter(|c| c.source == id);
        let chain_info = chain.map(|c| (c.epoch, c.delta_count, c.key.clone()));
        let want_delta = allow_delta
            && chain_info
                .as_ref()
                .is_some_and(|(_, count, _)| *count < DELTA_CHAIN_LIMIT);
        let anon_clean = want_delta && chain.is_some_and(|c| c.anon_gen == anon_gen);
        let comm_clean = want_delta && chain.is_some_and(|c| c.comm_gen == comm_gen);
        let mut chunk_index = chain.map(|c| c.chunks.clone()).unwrap_or_default();

        // Start from the chain's stored-form archive when a delta is
        // possible — clean records (chunk manifests included) carry
        // over untouched. A full save rebuilds from scratch so the new
        // epoch never references the old one's chunk objects.
        let mut next = if want_delta {
            chain.map(|c| c.archive.clone()).unwrap_or_default()
        } else {
            NymArchive::new()
        };
        let mut dirty_names: Vec<&str> = Vec::new();
        if !anon_clean {
            let upper = self
                .hv
                .vm(anon_vm)?
                .disk()
                .upper()
                .ok_or_else(|| NymManagerError::Storage("anon upper missing".into()))?;
            next.put_layer("anonvm.disk", upper);
            dirty_names.push("anonvm.disk");
        }
        if !comm_clean {
            let upper = self
                .hv
                .vm(comm_vm)?
                .disk()
                .upper()
                .ok_or_else(|| NymManagerError::Storage("comm upper missing".into()))?;
            next.put_layer("commvm.disk", upper);
            dirty_names.push("commvm.disk");
        }
        self.hv.vm_mut(anon_vm)?.resume();
        self.hv.vm_mut(comm_vm)?.resume();

        let entry = self.nyms.get(&id).expect("checked above");
        next.put("anonymizer.state", entry.anonymizer.save_state());
        dirty_names.push("anonymizer.state");
        next.put(
            "meta",
            format!(
                "name={};model={:?};anonymizer={}",
                entry.nymbox.name,
                entry.nymbox.model,
                entry.anonymizer.name()
            )
            .into_bytes(),
        );
        dirty_names.push("meta");
        if let Some(browser) = &entry.browser {
            next.put("browser.state", browser.to_bytes());
            dirty_names.push("browser.state");
        }
        let cost = entry.anonymizer.transfer_cost();
        let exit_ip = entry.anonymizer.exit_address(self.public_ip);

        // Figure 6 accounting reports logical (pre-chunking) sizes.
        let anon_bytes = next.get("anonvm.disk").map_or(0, record_logical_len);
        let comm_bytes = next.get("commvm.disk").map_or(0, record_logical_len);
        let other_bytes = next
            .records()
            .map(|(_, d)| record_logical_len(d))
            .sum::<usize>()
            - anon_bytes
            - comm_bytes;
        self.last_save_breakdown = Some((anon_bytes, comm_bytes, other_bytes));

        // Freshly serialized records at or above the chunk threshold
        // become "NYMC" manifests; their payload ships as individually
        // sealed chunk objects, deduplicated against the epoch's index
        // — the sub-record delta granularity record-level NYMD lacks.
        let mut chunked: Vec<(String, Vec<u8>, ChunkManifest)> = Vec::new();
        if allow_delta && self.chunking {
            chunk_convert(&mut next, &dirty_names, &mut chunked);
        }

        // Delta when the chain can absorb one and the dirty set is
        // actually smaller than re-sealing everything; otherwise seal
        // the full archive, starting a fresh epoch (which is also how
        // chains compact after DELTA_CHAIN_LIMIT deltas).
        let mut delta = None;
        if want_delta {
            let base = &chain.expect("want_delta implies chain").archive;
            let d = DeltaArchive::diff(base, &next);
            if d.serialized_len() < next.serialized_len() {
                delta = Some(d);
            }
        }
        if want_delta && delta.is_none() {
            // Falling back to a full save: clean layers were carried
            // over in stored form, so re-capture them raw (and re-chunk
            // under the new epoch) to make the new base self-contained.
            for (name, vm) in [("anonvm.disk", anon_vm), ("commvm.disk", comm_vm)] {
                if next.get(name).is_some() && dirty_names.contains(&name) {
                    continue;
                }
                self.hv.vm_mut(vm)?.pause();
                let upper = self
                    .hv
                    .vm(vm)?
                    .disk()
                    .upper()
                    .ok_or_else(|| NymManagerError::Storage("upper missing".into()))?;
                next.put_layer(name, upper);
                self.hv.vm_mut(vm)?.resume();
                if self.chunking {
                    chunk_convert(&mut next, &[name], &mut chunked);
                }
            }
        }

        // Every live manifest in the outgoing archive, for version-
        // retirement GC after the save lands.
        let live_manifests: Vec<ChunkManifest> = next
            .records()
            .filter_map(|(_, d)| ChunkManifest::from_bytes(d).ok())
            .collect();

        // Upload through the CommVM's anonymizer. Ordering matters for
        // a restore racing the save: chunk objects land before the
        // manifest-bearing blob that references them, and garbage is
        // swept only after the new blob is in place.
        let storage_err = |e: nymix_store::BackendError| NymManagerError::Storage(e.to_string());
        let cas_err = |e: cas::CasError| NymManagerError::Storage(e.to_string());
        let mut backend = dest_backend(&mut self.cloud, &mut self.local, dest, Some(exit_ip))?;
        let mut uploaded = 0usize;
        let (kind, key, epoch, delta_count) = match delta {
            Some(delta) => {
                let (epoch, prev_count, key) = chain_info.expect("delta implies chain");
                let prefix = chunk_prefix(&label, epoch);
                for (_, raw, manifest) in &chunked {
                    uploaded += cas::upload_new_chunks(
                        raw,
                        manifest,
                        &mut chunk_index,
                        &key,
                        &prefix,
                        &mut self.rng,
                        &mut self.seal_scratch,
                        &mut backend,
                    )
                    .map_err(cas_err)?;
                }
                let index = prev_count + 1;
                let obj_label = delta_label(&label, epoch, index);
                let mut sealed = Vec::new();
                seal_delta_keyed_into(
                    &delta,
                    &key,
                    &obj_label,
                    &mut self.rng,
                    &mut self.seal_scratch,
                    &mut sealed,
                );
                uploaded += sealed.len();
                backend.put(&obj_label, sealed).map_err(storage_err)?;
                // The previous version retired: sweep chunks no live
                // manifest references.
                for dead in chunk_index.mark_and_sweep(&live_manifests) {
                    let _ = backend.delete(&cas::chunk_object_name(&prefix, &dead));
                }
                (SaveKind::Delta, key, epoch, index)
            }
            None => {
                let epoch = last_epoch.map_or(1, |e| e + 1);
                next.put(EPOCH_RECORD, epoch.to_le_bytes().to_vec());
                let key = SealKey::derive(password, &label, &mut self.rng);
                let prefix = chunk_prefix(&label, epoch);
                chunk_index = ChunkIndex::new();
                for (_, raw, manifest) in &chunked {
                    uploaded += cas::upload_new_chunks(
                        raw,
                        manifest,
                        &mut chunk_index,
                        &key,
                        &prefix,
                        &mut self.rng,
                        &mut self.seal_scratch,
                        &mut backend,
                    )
                    .map_err(cas_err)?;
                }
                let mut sealed = Vec::new();
                seal_keyed_into(
                    &next,
                    &key,
                    &label,
                    &mut self.rng,
                    &mut self.seal_scratch,
                    &mut sealed,
                );
                uploaded += sealed.len();
                backend.put(&label, sealed).map_err(storage_err)?;
                // The old epoch retired with this compaction: its delta
                // objects and chunk objects are unreachable (the new
                // base names a new epoch and key) — sweep them.
                if let Some(old) = last_epoch {
                    let old_prefix = chunk_prefix(&label, old);
                    for i in 1..=DELTA_CHAIN_LIMIT {
                        let _ = backend.delete(&delta_label(&label, old, i));
                    }
                    // self.chains is disjoint from the fields `backend`
                    // borrows, so the retired index is read only on
                    // this (rare) compaction path — delta saves never
                    // materialize it.
                    let old_chunk_ids: Vec<cas::ChunkId> = self
                        .chains
                        .get(&label)
                        .map(|c| c.chunks.ids().copied().collect())
                        .unwrap_or_default();
                    for dead in &old_chunk_ids {
                        let _ = backend.delete(&cas::chunk_object_name(&old_prefix, dead));
                    }
                }
                (SaveKind::Full, key, epoch, 0)
            }
        };
        drop(backend);

        let duration = match dest {
            StorageDest::Cloud { .. } => SimDuration::from_secs_f64(Self::transfer_secs(
                cost.wire_bytes(uploaded as f64 * self.browser_scale as f64),
            )),
            StorageDest::Local => SimDuration::from_millis(300), // USB write.
        };
        self.chains.insert(
            label,
            ChainState {
                key,
                epoch,
                delta_count,
                archive: next,
                chunks: chunk_index,
                source: id,
                anon_gen,
                comm_gen,
            },
        );
        self.clock += duration;
        Ok((kind, uploaded, duration))
    }

    /// Loads a stored nym (§3.5 "load an existing nym").
    ///
    /// For cloud storage this spins up an ephemeral fetch nym first
    /// ("Nymix starts an ephemeral nym for the purpose of gathering the
    /// nym's state anonymously"), whose cost appears as the
    /// `ephemeral_fetch` phase.
    pub fn restore_nym(
        &mut self,
        name: &str,
        kind: AnonymizerKind,
        model: UsageModel,
        password: &str,
        dest: &StorageDest,
    ) -> Result<(NymId, StartupBreakdown), NymManagerError> {
        let label = storage_label(name, dest);
        // Cloud restores ride an ephemeral fetch nym (boot + cold
        // anonymizer); its exit address and transfer cost cover every
        // object in the chain, base and deltas alike.
        let (fetch_exit, fetch_cost, fetch_boot) = match dest {
            StorageDest::Cloud { .. } => {
                let fetch_anonymizer = self.build_anonymizer(kind);
                let boot = tcal::ANONVM_BOOT + fetch_anonymizer.startup_time(true);
                (
                    Some(fetch_anonymizer.exit_address(self.public_ip)),
                    Some(fetch_anonymizer.transfer_cost()),
                    boot,
                )
            }
            StorageDest::Local => (None, None, SimDuration::ZERO),
        };
        let storage_err = |e: nymix_store::BackendError| NymManagerError::Storage(e.to_string());
        let mut fetched_bytes;
        let chain_key;
        let mut archive;
        let stored_form;
        let epoch;
        let mut delta_count = 0;
        let mut chunk_index = ChunkIndex::new();
        {
            let mut backend = dest_backend(&mut self.cloud, &mut self.local, dest, fetch_exit)?;
            let base_blob = backend
                .get(&label)
                .map_err(storage_err)?
                .map(<[u8]>::to_vec)
                .ok_or(NymManagerError::NothingStored)?;
            fetched_bytes = base_blob.len();

            // One KDF opens the whole chain: re-derive the chain key
            // from the base blob's salt, then open base + deltas keyed.
            let salt = *blob_salt(&base_blob)
                .ok_or_else(|| NymManagerError::Storage("malformed sealed nym".into()))?;
            chain_key = SealKey::from_salt(password, &label, &salt);
            archive = {
                let bytes = unseal_keyed_raw_into(
                    &base_blob,
                    &chain_key,
                    &label,
                    &mut self.unseal_work,
                    &mut self.seal_scratch,
                )
                .map_err(|e| NymManagerError::Storage(e.to_string()))?;
                NymArchive::from_bytes(bytes)
                    .map_err(|e| NymManagerError::Storage(e.to_string()))?
            };

            // Replay the delta chain: each blob is bound to its slot
            // label (no splicing), each replay is Merkle-verified
            // against the delta's full-record-set commitment — any
            // mismatch aborts the restore instead of resurrecting
            // silently-wrong state.
            epoch = archive
                .get(EPOCH_RECORD)
                .and_then(|b| <[u8; 8]>::try_from(b).ok())
                .map(u64::from_le_bytes);
            if let Some(epoch) = epoch {
                for index in 1..=DELTA_CHAIN_LIMIT {
                    let dlabel = delta_label(&label, epoch, index);
                    let delta = {
                        let Some(dblob) = backend.get(&dlabel).map_err(storage_err)? else {
                            break;
                        };
                        fetched_bytes += dblob.len();
                        let bytes = unseal_keyed_raw_into(
                            dblob,
                            &chain_key,
                            &dlabel,
                            &mut self.unseal_work,
                            &mut self.seal_scratch,
                        )
                        .map_err(|e| NymManagerError::Storage(e.to_string()))?;
                        DeltaArchive::from_bytes(bytes)
                            .map_err(|e| NymManagerError::Storage(e.to_string()))?
                    };
                    delta
                        .apply(&mut archive)
                        .map_err(|e| NymManagerError::Storage(e.to_string()))?;
                    delta_count = index;
                }
            }

            // The replayed archive — verified against the chain's
            // Merkle commitment — is the *stored* form: large records
            // hold chunk manifests. Keep it for chain continuation,
            // then resolve every manifest: fetch its chunks, verify
            // each against its name-bound seal and content hash, and
            // reassemble the record. A missing (GC'd away), tampered,
            // or transplanted chunk fails the restore closed.
            stored_form = archive.clone();
            if let Some(epoch) = epoch {
                let prefix = chunk_prefix(&label, epoch);
                let manifests: Vec<(String, ChunkManifest)> = archive
                    .records()
                    .filter_map(|(n, d)| {
                        ChunkManifest::from_bytes(d)
                            .ok()
                            .map(|m| (n.to_string(), m))
                    })
                    .collect();
                for (record_name, manifest) in manifests {
                    chunk_index.retain_manifest(&manifest);
                    let mut resolved = Vec::with_capacity(manifest.total_len());
                    fetched_bytes += cas::fetch_record_into(
                        &manifest,
                        &chain_key,
                        &prefix,
                        &mut backend,
                        &mut self.unseal_work,
                        &mut self.seal_scratch,
                        &mut resolved,
                    )
                    .map_err(|e| NymManagerError::Storage(e.to_string()))?;
                    archive.put(&record_name, resolved);
                }
            }
        }

        let ephemeral_fetch = match fetch_cost {
            Some(cost) => {
                let dl_secs = Self::transfer_secs(
                    cost.wire_bytes(fetched_bytes as f64 * self.browser_scale as f64),
                );
                fetch_boot + SimDuration::from_secs_f64(dl_secs) + tcal::RESTORE_UNPACK
            }
            None => tcal::RESTORE_UNPACK,
        };
        self.clock += ephemeral_fetch;

        let anon_upper = archive
            .get_layer("anonvm.disk")
            .map_err(|e| NymManagerError::Storage(e.to_string()))?;
        let comm_upper = archive
            .get_layer("commvm.disk")
            .map_err(|e| NymManagerError::Storage(e.to_string()))?;
        let anonymizer_state = archive.get("anonymizer.state").map(|b| b.to_vec());
        let browser = archive
            .get("browser.state")
            .and_then(BrowserState::from_bytes);

        let anonymizer = self.build_anonymizer(kind);
        let (id, mut breakdown) = self.instantiate(
            name,
            kind,
            model,
            anonymizer,
            Some(RestoredState {
                anon_upper,
                comm_upper,
                anonymizer_state,
            }),
            false, // Warm start: guards and consensus restored.
        )?;
        if let Some(b) = browser {
            self.nyms.get_mut(&id).expect("just inserted").browser = Some(b);
        }
        self.nyms
            .get_mut(&id)
            .expect("just inserted")
            .nymbox
            .restored = true;

        // Continue the chain where the restored state left it, so the
        // next incremental save appends a delta instead of re-sealing
        // everything.
        if let Some(epoch) = epoch {
            let nb = &self.nyms.get(&id).expect("just inserted").nymbox;
            let (anon_vm, comm_vm) = (nb.anon_vm, nb.comm_vm);
            let anon_gen = self
                .hv
                .vm(anon_vm)?
                .disk()
                .upper()
                .map(nymix_fs::Layer::generation)
                .unwrap_or(0);
            let comm_gen = self
                .hv
                .vm(comm_vm)?
                .disk()
                .upper()
                .map(nymix_fs::Layer::generation)
                .unwrap_or(0);
            self.chains.insert(
                label,
                ChainState {
                    key: chain_key,
                    epoch,
                    delta_count,
                    archive: stored_form,
                    chunks: chunk_index,
                    source: id,
                    anon_gen,
                    comm_gen,
                },
            );
        }
        breakdown.ephemeral_fetch = ephemeral_fetch;
        Ok((id, breakdown))
    }

    /// Destroys a nym: both VMs are securely wiped; "turning off a
    /// pseudonym results in amnesia" (§3.4).
    pub fn destroy_nym(&mut self, id: NymId) -> Result<(), NymManagerError> {
        let entry = self
            .nyms
            .remove(&id)
            .ok_or(NymManagerError::NoSuchNym(id))?;
        self.hv.destroy_vm(entry.nymbox.anon_vm)?;
        self.hv.destroy_vm(entry.nymbox.comm_vm)?;
        // The dead nym's chains can no longer donate generations or
        // absorb deltas — drop their retained archives so destroyed
        // nyms don't pin memory. The entries stay: their epoch numbers
        // remain authoritative if the label is reused.
        for chain in self.chains.values_mut() {
            if chain.source == id {
                chain.archive = NymArchive::new();
            }
        }
        Ok(())
    }

    /// Seconds to move `wire_bytes` across the access link right now
    /// (serial ops: assumes the link is otherwise idle).
    fn transfer_secs(wire_bytes: f64) -> f64 {
        wire_bytes / netcal::ACCESS_LINK_BPS + netcal::ACCESS_ONE_WAY.as_secs_f64()
    }

    /// Uncompressed per-record sizes of the most recent [`Self::save_nym`]:
    /// `(anonvm_bytes, commvm_bytes, other_bytes)`.
    pub fn last_save_breakdown(&self) -> Option<(usize, usize, usize)> {
        self.last_save_breakdown
    }

    /// The browser byte-scale divisor this manager runs with.
    pub fn browser_scale(&self) -> u64 {
        self.browser_scale
    }

    /// The user's public IP (what incognito mode leaks).
    pub fn public_ip(&self) -> Ip {
        self.public_ip
    }

    /// The intranet host's address (the §5.1 "must not reach" target).
    pub fn intranet_ip(&self) -> Ip {
        self.lan_gateway_ip
    }

    /// Fabric node of the intranet host.
    pub fn intranet_node(&self) -> NodeId {
        self.intranet_node
    }

    /// Fabric node of the Internet.
    pub fn internet_node(&self) -> NodeId {
        self.internet_node
    }

    /// Fabric node of the hypervisor.
    pub fn hypervisor_node(&self) -> NodeId {
        self.hyp_node
    }

    /// The DNS database.
    pub fn dns(&self) -> &DnsDb {
        &self.dns
    }

    /// The relay directory (for guard analysis).
    pub fn directory(&self) -> &TorDirectory {
        &self.directory
    }

    /// Applies the §3.5 deterministic-guard extension to a nym: derive
    /// guard choice from the storage location and password so the
    /// ephemeral fetch nym converges on the same entry relays.
    pub fn seed_guards_deterministically(
        &mut self,
        id: NymId,
        storage_location: &str,
        password: &str,
    ) -> Result<TorState, NymManagerError> {
        let state = TorState::deterministic(&self.directory, storage_location, password);
        let entry = self
            .nyms
            .get_mut(&id)
            .ok_or(NymManagerError::NoSuchNym(id))?;
        entry.anonymizer.restore_state(&state.to_bytes());
        Ok(state)
    }
}

struct RestoredState {
    anon_upper: nymix_fs::Layer,
    comm_upper: nymix_fs::Layer,
    anonymizer_state: Option<Vec<u8>>,
}

/// Deterministic semi-compressible filler (directory documents are
/// text-ish: ~half repeated tokens, half digest material).
fn deterministic_blob(tag: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = tag ^ 0x9e3779b97f4a7c15;
    while out.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if x & 1 == 0 {
            out.extend_from_slice(b"router relay-descriptor bandwidth=");
        }
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Converts every named record at or above [`CHUNK_RECORD_THRESHOLD`]
/// into its `"NYMC"` manifest, collecting `(name, raw bytes, manifest)`
/// for the chunk upload that must accompany the save.
fn chunk_convert(
    next: &mut NymArchive,
    names: &[&str],
    chunked: &mut Vec<(String, Vec<u8>, ChunkManifest)>,
) {
    for name in names {
        if next
            .get(name)
            .is_none_or(|d| d.len() < CHUNK_RECORD_THRESHOLD)
        {
            continue;
        }
        // Swap the record bytes out rather than copying them (the raw
        // payload is needed once more, for the chunk upload); the
        // in-place replace keeps record order, which the Merkle
        // commitment and delta replay depend on.
        let raw = next
            .replace(name, Vec::new())
            .expect("record present above");
        let manifest = ChunkManifest::build(&raw);
        next.replace(name, manifest.to_bytes());
        chunked.push((name.to_string(), raw, manifest));
    }
}

/// Opens the storage destination as an [`ObjectBackend`]: a
/// credentialed cloud session (which needs the fetching/saving
/// anonymizer's `exit` address — that is all the provider ever
/// observes) or the local partition.
fn dest_backend<'a>(
    cloud: &'a mut BTreeMap<String, CloudProvider>,
    local: &'a mut LocalStore,
    dest: &StorageDest,
    exit: Option<Ip>,
) -> Result<DestBackend<'a>, NymManagerError> {
    match dest {
        StorageDest::Cloud {
            provider,
            account,
            credential,
        } => {
            let p = cloud
                .get_mut(provider)
                .ok_or_else(|| NymManagerError::NoSuchProvider(provider.clone()))?;
            Ok(DestBackend::Cloud(p.session(
                account,
                credential,
                exit.expect("cloud access rides an anonymizer with an exit"),
            )))
        }
        StorageDest::Local => Ok(DestBackend::Local(local)),
    }
}

fn storage_label(name: &str, dest: &StorageDest) -> String {
    match dest {
        StorageDest::Cloud {
            provider, account, ..
        } => {
            format!("nym:{name}@{provider}/{account}")
        }
        StorageDest::Local => format!("nym:{name}@local"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> NymManager {
        NymManager::new(42, 64)
    }

    #[test]
    fn fresh_nym_within_paper_band() {
        let mut m = manager();
        let (id, breakdown) = m
            .create_nym("reader", AnonymizerKind::Tor, UsageModel::Ephemeral)
            .unwrap();
        let page = m.visit_site(id, Site::Twitter).unwrap();
        let total = breakdown.total() + page;
        // Abstract: "loads within 15 to 25 seconds".
        assert!((15.0..25.0).contains(&total.as_secs_f64()), "total {total}");
    }

    #[test]
    fn nymbox_is_two_vms() {
        let mut m = manager();
        let (id, _) = m
            .create_nym("n", AnonymizerKind::Tor, UsageModel::Ephemeral)
            .unwrap();
        let nb = m.nymbox(id).unwrap();
        assert_ne!(nb.anon_vm, nb.comm_vm);
        assert_eq!(m.hypervisor().vm_count(), 2);
        let anon = m.hypervisor().vm(nb.anon_vm).unwrap();
        let comm = m.hypervisor().vm(nb.comm_vm).unwrap();
        assert_eq!(anon.config().role, nymix_vmm::VmRole::Anon);
        assert_eq!(comm.config().role, nymix_vmm::VmRole::Comm);
    }

    #[test]
    fn destroy_wipes_and_frees() {
        let mut m = manager();
        let (id, _) = m
            .create_nym("n", AnonymizerKind::Tor, UsageModel::Ephemeral)
            .unwrap();
        m.visit_site(id, Site::Bbc).unwrap();
        m.destroy_nym(id).unwrap();
        assert_eq!(m.hypervisor().vm_count(), 0);
        assert!(matches!(
            m.visit_site(id, Site::Bbc),
            Err(NymManagerError::NoSuchNym(_))
        ));
    }

    #[test]
    fn stain_does_not_survive_ephemeral_nym() {
        let mut m = manager();
        let (id, _) = m
            .create_nym("n", AnonymizerKind::Tor, UsageModel::Ephemeral)
            .unwrap();
        m.inject_stain(id, "evercookie-77").unwrap();
        assert!(m.has_stain(id, "evercookie-77").unwrap());
        m.destroy_nym(id).unwrap();
        let (id2, _) = m
            .create_nym("n", AnonymizerKind::Tor, UsageModel::Ephemeral)
            .unwrap();
        assert!(!m.has_stain(id2, "evercookie-77").unwrap());
    }

    #[test]
    fn save_restore_roundtrip_via_cloud() {
        let mut m = manager();
        m.register_cloud("dropbox", "anon-4711", "tok");
        let (id, _) = m
            .create_nym("alice", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(id, Site::Twitter).unwrap();
        let dest = StorageDest::Cloud {
            provider: "dropbox".into(),
            account: "anon-4711".into(),
            credential: "tok".into(),
        };
        let (size, _dur) = m.save_nym(id, "pw", &dest).unwrap();
        assert!(size > 0);
        m.destroy_nym(id).unwrap();

        let (id2, breakdown) = m
            .restore_nym(
                "alice",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &dest,
            )
            .unwrap();
        assert!(breakdown.ephemeral_fetch > SimDuration::ZERO);
        assert!(m.nymbox(id2).unwrap().restored);
        // Credentials survived: the browser still knows twitter.com.
        let vm = m.hypervisor().vm(m.nymbox(id2).unwrap().anon_vm).unwrap();
        assert!(vm.disk().exists(&nymix_fs::Path::new(
            "/home/user/.config/chromium/logins/twitter.com"
        )));
    }

    #[test]
    fn wrong_password_fails_restore() {
        let mut m = manager();
        let (id, _) = m
            .create_nym("bob", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.save_nym(id, "right", &StorageDest::Local).unwrap();
        m.destroy_nym(id).unwrap();
        assert!(matches!(
            m.restore_nym(
                "bob",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "wrong",
                &StorageDest::Local
            ),
            Err(NymManagerError::Storage(_))
        ));
    }

    #[test]
    fn local_restore_skips_ephemeral_nym() {
        let mut m = manager();
        let (id, _) = m
            .create_nym("carol", AnonymizerKind::Tor, UsageModel::PreConfigured)
            .unwrap();
        m.save_nym(id, "pw", &StorageDest::Local).unwrap();
        m.destroy_nym(id).unwrap();
        let (_, breakdown) = m
            .restore_nym(
                "carol",
                AnonymizerKind::Tor,
                UsageModel::PreConfigured,
                "pw",
                &StorageDest::Local,
            )
            .unwrap();
        assert!(breakdown.ephemeral_fetch < SimDuration::from_secs(3));
        // Warm anonymizer start beats a cold one.
        let (_, fresh) = m
            .create_nym("fresh", AnonymizerKind::Tor, UsageModel::Ephemeral)
            .unwrap();
        assert!(breakdown.start_anonymizer < fresh.start_anonymizer);
    }

    #[test]
    fn cloud_provider_never_sees_user_ip() {
        let mut m = manager();
        m.register_cloud("drive", "acct", "tok");
        let (id, _) = m
            .create_nym("dave", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        let dest = StorageDest::Cloud {
            provider: "drive".into(),
            account: "acct".into(),
            credential: "tok".into(),
        };
        m.save_nym(id, "pw", &dest).unwrap();
        let user_ip = m.public_ip();
        let provider = m.cloud_provider("drive").unwrap();
        for entry in provider.access_log() {
            assert_ne!(entry.observed_ip, user_ip, "provider saw the user");
        }
    }

    #[test]
    fn incognito_mode_leaks_ip_to_provider() {
        // The documented trade-off: incognito's exit is the user.
        let mut m = manager();
        m.register_cloud("drive", "acct", "tok");
        let (id, _) = m
            .create_nym("erin", AnonymizerKind::Incognito, UsageModel::Persistent)
            .unwrap();
        let dest = StorageDest::Cloud {
            provider: "drive".into(),
            account: "acct".into(),
            credential: "tok".into(),
        };
        m.save_nym(id, "pw", &dest).unwrap();
        let user_ip = m.public_ip();
        assert!(m
            .cloud_provider("drive")
            .unwrap()
            .access_log()
            .iter()
            .any(|e| e.observed_ip == user_ip));
    }

    #[test]
    fn persistent_nym_grows_across_cycles() {
        let mut m = manager();
        let (mut id, _) = m
            .create_nym("grower", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        let mut sizes = Vec::new();
        for _ in 0..4 {
            m.visit_site(id, Site::Facebook).unwrap();
            let (size, _) = m.save_nym(id, "pw", &StorageDest::Local).unwrap();
            sizes.push(size);
            m.destroy_nym(id).unwrap();
            let (nid, _) = m
                .restore_nym(
                    "grower",
                    AnonymizerKind::Tor,
                    UsageModel::Persistent,
                    "pw",
                    &StorageDest::Local,
                )
                .unwrap();
            id = nid;
        }
        assert!(
            sizes.windows(2).all(|w| w[1] > w[0]),
            "persistent nym should grow: {sizes:?}"
        );
    }

    #[test]
    fn incremental_save_seals_only_the_delta() {
        let mut m = manager();
        let (id, _) = m
            .create_nym("inc", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(id, Site::Twitter).unwrap();
        // First save: no chain yet, must be full.
        let (kind, full_size, _) = m
            .save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Full);
        // A tiny change — new guard state dirties only the
        // anonymizer.state record; both disk records stay clean and are
        // neither re-serialized nor re-sealed.
        m.seed_guards_deterministically(id, "usb://nyms/inc", "pw")
            .unwrap();
        let (kind, delta_size, _) = m
            .save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Delta);
        assert!(
            delta_size * 10 < full_size,
            "delta {delta_size} not small vs full {full_size}"
        );
        // The delta rides a chained object, not the base slot.
        assert!(m.local_store().get("nym:inc@local#e1.1").is_some());
        // A stain (browser + AnonVM disk) still saves as a delta: two
        // dirty records out of five.
        m.inject_stain(id, "evercookie-9").unwrap();
        let (kind, stain_delta, _) = m
            .save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Delta);
        assert!(stain_delta < full_size);

        // Restore replays base + delta: the stain must be visible.
        m.destroy_nym(id).unwrap();
        let (id2, _) = m
            .restore_nym(
                "inc",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local,
            )
            .unwrap();
        assert!(m.has_stain(id2, "evercookie-9").unwrap());
        // Credentials from the pre-delta session survived too.
        let vm = m.hypervisor().vm(m.nymbox(id2).unwrap().anon_vm).unwrap();
        assert!(vm.disk().exists(&nymix_fs::Path::new(
            "/home/user/.config/chromium/logins/twitter.com"
        )));
        // The restored chain keeps accepting deltas where it left off.
        m.inject_stain(id2, "evercookie-10").unwrap();
        let (kind, _, _) = m
            .save_nym_incremental(id2, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Delta);
        assert!(m.local_store().get("nym:inc@local#e1.3").is_some());
    }

    #[test]
    fn clean_saves_stay_deltas_and_chains_compact() {
        let mut m = manager();
        let (id, _) = m
            .create_nym("c", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(id, Site::Bbc).unwrap();
        let mut kinds = Vec::new();
        for i in 0..=nymix_store::DELTA_CHAIN_LIMIT + 1 {
            if i > 0 {
                m.inject_stain(id, &format!("mark-{i}")).unwrap();
            }
            let (kind, _, _) = m
                .save_nym_incremental(id, "pw", &StorageDest::Local)
                .unwrap();
            kinds.push(kind);
        }
        // Full, then DELTA_CHAIN_LIMIT deltas, then compaction (full).
        let mut expected = vec![SaveKind::Full];
        expected.extend([SaveKind::Delta; nymix_store::DELTA_CHAIN_LIMIT]);
        expected.push(SaveKind::Full);
        assert_eq!(kinds, expected);
        // The compacted restore carries every mark.
        m.destroy_nym(id).unwrap();
        let (id2, _) = m
            .restore_nym(
                "c",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local,
            )
            .unwrap();
        for i in 1..=nymix_store::DELTA_CHAIN_LIMIT + 1 {
            assert!(m.has_stain(id2, &format!("mark-{i}")).unwrap(), "mark-{i}");
        }
    }

    #[test]
    fn incremental_save_via_cloud_roundtrips() {
        let mut m = manager();
        m.register_cloud("dropbox", "anon-1", "tok");
        let dest = StorageDest::Cloud {
            provider: "dropbox".into(),
            account: "anon-1".into(),
            credential: "tok".into(),
        };
        let (id, _) = m
            .create_nym("cl", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(id, Site::Twitter).unwrap();
        m.save_nym_incremental(id, "pw", &dest).unwrap();
        m.inject_stain(id, "cloud-mark").unwrap();
        let (kind, _, _) = m.save_nym_incremental(id, "pw", &dest).unwrap();
        assert_eq!(kind, SaveKind::Delta);
        m.destroy_nym(id).unwrap();
        let (id2, breakdown) = m
            .restore_nym(
                "cl",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &dest,
            )
            .unwrap();
        assert!(breakdown.ephemeral_fetch > SimDuration::ZERO);
        assert!(m.has_stain(id2, "cloud-mark").unwrap());
        // The provider never saw the user's address, deltas included.
        let user_ip = m.public_ip();
        for entry in m.cloud_provider("dropbox").unwrap().access_log() {
            assert_ne!(entry.observed_ip, user_ip);
        }
    }

    #[test]
    fn tampered_delta_fails_restore_closed() {
        let mut m = manager();
        let (id, _) = m
            .create_nym("t", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(id, Site::Bbc).unwrap();
        m.save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        m.inject_stain(id, "x").unwrap();
        let (kind, _, _) = m
            .save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Delta);
        m.destroy_nym(id).unwrap();
        // Flip one ciphertext byte in the stored delta object.
        let mut blob = m.local.get("nym:t@local#e1.1").unwrap().to_vec();
        let mid = blob.len() / 2;
        blob[mid] ^= 1;
        m.local.put("nym:t@local#e1.1", blob);
        assert!(matches!(
            m.restore_nym(
                "t",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local
            ),
            Err(NymManagerError::Storage(_))
        ));
    }

    #[test]
    fn delta_chain_slots_cannot_be_swapped() {
        let mut m = manager();
        let (id, _) = m
            .create_nym("s", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(id, Site::Bbc).unwrap();
        m.save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        for mark in ["a", "b"] {
            m.inject_stain(id, mark).unwrap();
            m.save_nym_incremental(id, "pw", &StorageDest::Local)
                .unwrap();
        }
        m.destroy_nym(id).unwrap();
        // A malicious backend swaps the two delta objects: each blob
        // still authenticates under the chain key, but against the
        // wrong slot label — restore must refuse.
        let d1 = m.local.get("nym:s@local#e1.1").unwrap().to_vec();
        let d2 = m.local.get("nym:s@local#e1.2").unwrap().to_vec();
        m.local.put("nym:s@local#e1.1", d2);
        m.local.put("nym:s@local#e1.2", d1);
        assert!(matches!(
            m.restore_nym(
                "s",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local
            ),
            Err(NymManagerError::Storage(_))
        ));
    }

    #[test]
    fn recreated_nym_does_not_collide_with_stale_chain() {
        // A destroyed nym leaves its chain objects behind; a brand-new
        // nym with the same name must start a fresh epoch so the stale
        // deltas (sealed under the old chain key) are never replayed
        // into its restores.
        let mut m = manager();
        let (id, _) = m
            .create_nym("re", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(id, Site::Bbc).unwrap();
        m.save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        m.inject_stain(id, "old-life").unwrap();
        m.save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        assert!(m.local_store().get("nym:re@local#e1.1").is_some());
        m.destroy_nym(id).unwrap();

        // Fresh nym, same name: full save must take epoch 2, not 1.
        let (id2, _) = m
            .create_nym("re", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        let (kind, _, _) = m
            .save_nym_incremental(id2, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Full);
        m.destroy_nym(id2).unwrap();
        let (id3, _) = m
            .restore_nym(
                "re",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local,
            )
            .unwrap();
        // The restored state is the fresh nym's, not the stained one.
        assert!(!m.has_stain(id3, "old-life").unwrap());
    }

    /// Chunk-object names the local store currently holds.
    fn chunk_objects(m: &NymManager) -> Vec<String> {
        m.local_store()
            .list()
            .into_iter()
            .filter(|n| n.contains("/c/"))
            .map(str::to_string)
            .collect()
    }

    /// A manager at low browser scale so disk records cross the chunk
    /// threshold, with one browser session saved incrementally.
    fn chunked_setup(seed: u64) -> (NymManager, NymId, usize) {
        let mut m = NymManager::new(seed, 8);
        let (id, _) = m
            .create_nym("ck", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(id, Site::Twitter).unwrap();
        let (kind, full_uploaded, _) = m
            .save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Full);
        (m, id, full_uploaded)
    }

    #[test]
    fn chunked_save_dedups_and_roundtrips() {
        let (mut m, id, full_uploaded) = chunked_setup(77);
        // The base shipped manifests + chunk objects.
        let after_full = chunk_objects(&m);
        assert!(!after_full.is_empty(), "large records should chunk");

        // A stain dirties the big AnonVM disk record; the delta ships
        // the new manifest plus only the chunks the write touched —
        // far fewer bytes than the base (which re-ships everything).
        m.inject_stain(id, "cas-mark").unwrap();
        let (kind, delta_uploaded, _) = m
            .save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Delta);
        assert!(
            delta_uploaded * 4 < full_uploaded,
            "chunked delta {delta_uploaded} vs full {full_uploaded}"
        );

        // Restore replays the chain and resolves every manifest.
        m.destroy_nym(id).unwrap();
        let (id2, _) = m
            .restore_nym(
                "ck",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local,
            )
            .unwrap();
        assert!(m.has_stain(id2, "cas-mark").unwrap());
        let vm = m.hypervisor().vm(m.nymbox(id2).unwrap().anon_vm).unwrap();
        assert!(vm.disk().exists(&nymix_fs::Path::new(
            "/home/user/.config/chromium/logins/twitter.com"
        )));
        // The restored chain keeps absorbing chunked deltas.
        m.inject_stain(id2, "cas-mark-2").unwrap();
        let (kind, _, _) = m
            .save_nym_incremental(id2, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Delta);
    }

    #[test]
    fn tampered_chunk_fails_restore_closed() {
        let (mut m, id, _) = chunked_setup(78);
        m.destroy_nym(id).unwrap();
        let victim = chunk_objects(&m)[0].clone();
        let mut blob = m.local.get(&victim).unwrap().to_vec();
        let mid = blob.len() / 2;
        blob[mid] ^= 1;
        m.local.put(&victim, blob);
        assert!(matches!(
            m.restore_nym(
                "ck",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local
            ),
            Err(NymManagerError::Storage(_))
        ));
    }

    #[test]
    fn swapped_chunks_fail_restore_closed() {
        let (mut m, id, _) = chunked_setup(79);
        m.destroy_nym(id).unwrap();
        // Each chunk is sealed with its own object name as AEAD data:
        // a backend serving chunk A's bytes under chunk B's name fails
        // authentication even though both blobs are individually valid.
        let names = chunk_objects(&m);
        assert!(names.len() >= 2, "need two chunks to swap");
        let a = m.local.get(&names[0]).unwrap().to_vec();
        let b = m.local.get(&names[1]).unwrap().to_vec();
        m.local.put(&names[0], b);
        m.local.put(&names[1], a);
        assert!(matches!(
            m.restore_nym(
                "ck",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local
            ),
            Err(NymManagerError::Storage(_))
        ));
    }

    #[test]
    fn gcd_away_chunk_fails_restore_closed() {
        let (mut m, id, _) = chunked_setup(80);
        m.destroy_nym(id).unwrap();
        let victim = chunk_objects(&m)[0].clone();
        assert!(m.local.delete(&victim));
        assert!(matches!(
            m.restore_nym(
                "ck",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local
            ),
            Err(NymManagerError::Storage(_))
        ));
    }

    #[test]
    fn compaction_sweeps_retired_epoch_chunks() {
        let (mut m, id, _) = chunked_setup(81);
        let epoch1: Vec<String> = chunk_objects(&m);
        assert!(epoch1.iter().all(|n| n.contains("#e1/")), "{epoch1:?}");
        // Run the chain past the delta limit so a save compacts into a
        // new epoch; epoch 1's chunk and delta objects must be swept.
        for i in 0..=DELTA_CHAIN_LIMIT {
            m.inject_stain(id, &format!("gc-{i}")).unwrap();
            m.save_nym_incremental(id, "pw", &StorageDest::Local)
                .unwrap();
        }
        let now = chunk_objects(&m);
        assert!(
            now.iter().all(|n| n.contains("#e2/")),
            "old-epoch chunks not swept: {now:?}"
        );
        assert!(m.local_store().get("nym:ck@local#e1.1").is_none());
        // The compacted chain restores with every mark intact.
        m.destroy_nym(id).unwrap();
        let (id2, _) = m
            .restore_nym(
                "ck",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local,
            )
            .unwrap();
        for i in 0..=DELTA_CHAIN_LIMIT {
            assert!(m.has_stain(id2, &format!("gc-{i}")).unwrap(), "gc-{i}");
        }
    }

    #[test]
    fn chunking_disabled_keeps_record_granular_deltas() {
        let mut m = NymManager::new(82, 8);
        m.set_chunking(false);
        assert!(!m.chunking());
        let (id, _) = m
            .create_nym("nc", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(id, Site::Twitter).unwrap();
        m.save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        assert!(chunk_objects(&m).is_empty());
        m.inject_stain(id, "plain").unwrap();
        let (kind, _, _) = m
            .save_nym_incremental(id, "pw", &StorageDest::Local)
            .unwrap();
        assert_eq!(kind, SaveKind::Delta);
        m.destroy_nym(id).unwrap();
        let (id2, _) = m
            .restore_nym(
                "nc",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &StorageDest::Local,
            )
            .unwrap();
        assert!(m.has_stain(id2, "plain").unwrap());
    }

    #[test]
    fn chunked_cloud_save_hides_user_behind_exit() {
        // Chunk uploads multiply provider operations; every one of them
        // must still show only the anonymizer's exit address.
        let mut m = NymManager::new(83, 8);
        m.register_cloud("dropbox", "anon-9", "tok");
        let dest = StorageDest::Cloud {
            provider: "dropbox".into(),
            account: "anon-9".into(),
            credential: "tok".into(),
        };
        let (id, _) = m
            .create_nym("cc", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        m.visit_site(id, Site::Twitter).unwrap();
        m.save_nym_incremental(id, "pw", &dest).unwrap();
        m.inject_stain(id, "cloud-cas").unwrap();
        m.save_nym_incremental(id, "pw", &dest).unwrap();
        m.destroy_nym(id).unwrap();
        let (id2, _) = m
            .restore_nym(
                "cc",
                AnonymizerKind::Tor,
                UsageModel::Persistent,
                "pw",
                &dest,
            )
            .unwrap();
        assert!(m.has_stain(id2, "cloud-cas").unwrap());
        let user_ip = m.public_ip();
        let provider = m.cloud_provider("dropbox").unwrap();
        assert!(provider.access_log().total_recorded() > 4);
        for entry in provider.access_log() {
            assert_ne!(entry.observed_ip, user_ip, "provider saw the user");
        }
    }

    #[test]
    fn deterministic_guard_extension() {
        let mut m = manager();
        let (a, _) = m
            .create_nym("x", AnonymizerKind::Tor, UsageModel::Persistent)
            .unwrap();
        let s1 = m
            .seed_guards_deterministically(a, "dropbox://nyms/x", "pw")
            .unwrap();
        let (b, _) = m
            .create_nym("y", AnonymizerKind::Tor, UsageModel::Ephemeral)
            .unwrap();
        let s2 = m
            .seed_guards_deterministically(b, "dropbox://nyms/x", "pw")
            .unwrap();
        assert_eq!(s1, s2, "same location+password must give same guards");
    }

    #[test]
    fn admission_eventually_refuses() {
        let mut m = manager();
        let mut created = 0;
        loop {
            match m.create_nym("n", AnonymizerKind::Incognito, UsageModel::Ephemeral) {
                Ok(_) => created += 1,
                Err(NymManagerError::Hypervisor(HypervisorError::InsufficientMemory {
                    ..
                })) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
            assert!(created < 64);
        }
        // 16 GiB host, ~706 MiB/nymbox: low twenties.
        assert!((20..24).contains(&created), "created {created}");
    }
}
