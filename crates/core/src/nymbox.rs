//! The nymbox: one pseudonym's isolated execution container.
//!
//! "Each nymbox in fact represents two virtual machines" (§3.1): the
//! AnonVM (browser, untrusted) and the CommVM (anonymizer). A nymbox
//! also carries its usage model (§3.5) and its network attachment
//! points in the fabric.

use nymix_anon::AnonymizerKind;
use nymix_net::NodeId;
use nymix_vmm::VmId;

/// The three nym usage models of §3.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsageModel {
    /// Amnesiac: all state discarded at shutdown (the default).
    Ephemeral,
    /// Stored state updated after every session — convenient, but "a
    /// stain or other exploit attack in one browsing session will
    /// persist for the lifetime of the nym".
    Persistent,
    /// Snapshot-once: every session starts from the frozen snapshot;
    /// "a malware infection affecting one browsing session will be
    /// scrubbed at the user's next session".
    PreConfigured,
}

/// A live nymbox.
#[derive(Debug, Clone)]
pub struct Nymbox {
    /// User-facing nym name.
    pub name: String,
    /// Usage model.
    pub model: UsageModel,
    /// Which anonymizer the CommVM runs.
    pub anonymizer: AnonymizerKind,
    /// The browsing VM.
    pub anon_vm: VmId,
    /// The anonymizer VM.
    pub comm_vm: VmId,
    /// Fabric node of the AnonVM.
    pub anon_node: NodeId,
    /// Fabric node of the CommVM.
    pub comm_node: NodeId,
    /// Whether this nymbox was restored from stored state.
    pub restored: bool,
}

impl Nymbox {
    /// Whether shutdown should write state back to storage.
    pub fn saves_on_close(&self) -> bool {
        self.model == UsageModel::Persistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saves_on_close_only_for_persistent() {
        let mk = |model| Nymbox {
            name: "n".into(),
            model,
            anonymizer: AnonymizerKind::Tor,
            anon_vm: VmId(1),
            comm_vm: VmId(2),
            anon_node: NodeId(0),
            comm_node: NodeId(1),
            restored: false,
        };
        assert!(!mk(UsageModel::Ephemeral).saves_on_close());
        assert!(mk(UsageModel::Persistent).saves_on_close());
        assert!(!mk(UsageModel::PreConfigured).saves_on_close());
    }
}
