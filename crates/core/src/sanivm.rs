//! The SaniVM: the only path files may take into a nymbox.
//!
//! §3.6: "Nymix never gives a nymbox direct access to files on the
//! client machine's installed OS. Instead, Nymix delegates this
//! responsibility to a dedicated, non-networked sanitation VM... Nymix
//! creates a unique directory within the SaniVM for each nym. The
//! SaniVM detects when the user moves files into this directory and
//! launches the scrubbing workflow. Once scrubbing completes, the
//! SaniVM finally copies the file into a directory visible to the
//! appropriate nym's AnonVM."
//!
//! §4.3: the hop sequence is SaniVM → hypervisor shared folder →
//! AnonVM shared folder, both VirtFS.

use nymix_fs::{FsError, Layer, LayerKind, Path, ShareMode, UnionFs, VirtfsShare};
use nymix_sanitizer::{scrub, ParanoiaLevel, ScrubReport};
use nymix_vmm::Vm;

/// The SaniVM and its mounts.
pub struct SaniVm {
    /// The SaniVM's own filesystem (scratch space + per-nym outboxes).
    fs: UnionFs,
    /// Host filesystems mounted read-only into the SaniVM.
    host_mounts: Vec<(String, UnionFs)>,
}

/// Error from a sanitized transfer.
#[derive(Debug)]
pub enum SaniError {
    /// Filesystem failure.
    Fs(FsError),
    /// Unknown host mount.
    NoSuchMount(String),
    /// Scrubbing left high-severity risks and `force` was not set.
    StillRisky(ScrubReport),
}

impl core::fmt::Display for SaniError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SaniError::Fs(e) => write!(f, "filesystem: {e}"),
            SaniError::NoSuchMount(m) => write!(f, "no such mount: {m}"),
            SaniError::StillRisky(r) => {
                write!(f, "{} risk(s) remain after scrubbing", r.risks_after.len())
            }
        }
    }
}

impl std::error::Error for SaniError {}

impl From<FsError> for SaniError {
    fn from(e: FsError) -> Self {
        SaniError::Fs(e)
    }
}

impl Default for SaniVm {
    fn default() -> Self {
        Self::new()
    }
}

impl SaniVm {
    /// Boots an empty SaniVM.
    pub fn new() -> Self {
        let fs = UnionFs::new(vec![
            nymix_fs::BaseImage::minimal().to_layer(),
            Layer::new(LayerKind::Writable),
        ])
        .expect("valid stack");
        Self {
            fs,
            host_mounts: Vec::new(),
        }
    }

    /// Mounts a host filesystem read-only under `/mnt/<name>` ("Upon
    /// boot, Nymix searches the computer for file systems unrelated to
    /// Nymix and mounts them in the SaniVM", §3.6).
    pub fn mount_host_fs(&mut self, name: &str, fs: UnionFs) {
        self.host_mounts.push((name.to_string(), fs));
    }

    /// Lists files visible on a host mount.
    pub fn browse(&self, mount: &str) -> Result<Vec<Path>, SaniError> {
        let (_, fs) = self
            .host_mounts
            .iter()
            .find(|(n, _)| n == mount)
            .ok_or_else(|| SaniError::NoSuchMount(mount.to_string()))?;
        Ok(fs.walk_files(&Path::root()))
    }

    /// The per-nym inbox directory inside the SaniVM.
    pub fn nym_inbox(nym_name: &str) -> Path {
        Path::new(&format!("/outbox/{nym_name}"))
    }

    /// Transfers one host file to a nym's AnonVM through the scrubbing
    /// workflow. Returns the scrub report and the AnonVM-side path.
    ///
    /// When `force` is false, a file whose post-scrub risk list is
    /// non-empty is *refused* — the user must escalate the paranoia
    /// level or explicitly override.
    pub fn transfer_to_nym(
        &mut self,
        mount: &str,
        host_path: &Path,
        nym_name: &str,
        anon_vm: &mut Vm,
        level: ParanoiaLevel,
        force: bool,
    ) -> Result<(ScrubReport, Path), SaniError> {
        let (_, host_fs) = self
            .host_mounts
            .iter()
            .find(|(n, _)| n == mount)
            .ok_or_else(|| SaniError::NoSuchMount(mount.to_string()))?;

        // Step 1: user drops the file into the nym's inbox (copy into
        // the SaniVM's own fs — the host stays untouched).
        let data = host_fs.read(host_path)?.to_vec();
        let inbox = Self::nym_inbox(nym_name);
        let staged = inbox.join(host_path.file_name().unwrap_or("file"));
        self.fs.write(&staged, data.clone())?;

        // Step 2: the scrubbing workflow runs automatically.
        let report = scrub(&data, level);
        if !report.clean() && !force {
            // Remove the staged copy; nothing reaches the nym.
            let _ = self.fs.unlink(&staged);
            return Err(SaniError::StillRisky(report));
        }

        // Step 3: SaniVM → hypervisor → AnonVM via chained VirtFS
        // shares (§4.3). The scrubbed output is what crosses.
        self.fs.write(&staged, report.output.clone())?;
        let mut hypervisor_fs =
            UnionFs::new(vec![Layer::new(LayerKind::Writable)]).expect("valid stack");
        let sani_to_hyp =
            VirtfsShare::new(inbox.clone(), Path::new("/shared"), ShareMode::ReadWrite);
        // copy_out moves guest (SaniVM) files back to "host" (here the
        // hypervisor's staging fs).
        let hyp_share = VirtfsShare::new(Path::new("/shared"), inbox.clone(), ShareMode::ReadWrite);
        let hyp_path = hyp_share.copy_out(&self.fs, &mut hypervisor_fs, &staged)?;
        let hyp_to_anon = VirtfsShare::new(
            Path::new("/shared"),
            Path::new("/media/incoming"),
            ShareMode::ReadOnly,
        );
        let landed = hyp_to_anon.copy_in(&hypervisor_fs, anon_vm.disk_mut(), &hyp_path)?;
        let _ = sani_to_hyp;
        Ok((report, landed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymix_sanitizer::{JpegImage, MediaFile, RiskKind};
    use nymix_vmm::{VmConfig, VmId};

    fn host_fs_with_photo() -> UnionFs {
        let mut base = Layer::new(LayerKind::Base);
        base.put_file(
            Path::new("/photos/protest.jpg"),
            MediaFile::Jpeg(JpegImage::protest_photo()).to_bytes(),
        );
        base.put_file(
            Path::new("/docs/memo.pdf"),
            MediaFile::Pdf(nymix_sanitizer::PdfDoc::memo()).to_bytes(),
        );
        UnionFs::new(vec![base]).expect("valid stack")
    }

    fn anon_vm() -> Vm {
        let mut vm = Vm::new(
            VmId(9),
            VmConfig::anonvm(),
            nymix_fs::BaseImage::minimal().to_layer(),
            Layer::new(LayerKind::Config),
        );
        vm.boot(0.05, 0.3);
        vm
    }

    #[test]
    fn browse_lists_host_files() {
        let mut sani = SaniVm::new();
        sani.mount_host_fs("installed-os", host_fs_with_photo());
        let files = sani.browse("installed-os").unwrap();
        assert_eq!(files.len(), 2);
        assert!(matches!(
            sani.browse("nope"),
            Err(SaniError::NoSuchMount(_))
        ));
    }

    #[test]
    fn risky_photo_refused_at_low_paranoia() {
        let mut sani = SaniVm::new();
        sani.mount_host_fs("os", host_fs_with_photo());
        let mut vm = anon_vm();
        let err = sani
            .transfer_to_nym(
                "os",
                &Path::new("/photos/protest.jpg"),
                "tweeter",
                &mut vm,
                ParanoiaLevel::Basic,
                false,
            )
            .unwrap_err();
        match err {
            SaniError::StillRisky(report) => {
                assert!(report
                    .risks_after
                    .iter()
                    .any(|r| r.kind == RiskKind::VisibleFaces));
            }
            other => panic!("unexpected: {other}"),
        }
        // Nothing reached the AnonVM.
        assert!(vm.disk().walk_files(&Path::new("/media")).is_empty());
    }

    #[test]
    fn paranoid_transfer_lands_clean_file() {
        let mut sani = SaniVm::new();
        sani.mount_host_fs("os", host_fs_with_photo());
        let mut vm = anon_vm();
        let (report, landed) = sani
            .transfer_to_nym(
                "os",
                &Path::new("/photos/protest.jpg"),
                "tweeter",
                &mut vm,
                ParanoiaLevel::Paranoid,
                false,
            )
            .unwrap();
        assert!(report.clean());
        assert_eq!(landed.to_string(), "/media/incoming/protest.jpg");
        let delivered = vm.disk().read(&landed).unwrap();
        // What landed is the scrubbed output, not the original.
        if let MediaFile::Jpeg(j) = MediaFile::parse(delivered) {
            assert!(j.exif.is_empty());
            assert!(j.faces.is_empty());
            assert!(j.watermark.is_none());
        } else {
            panic!("scrubbed photo should still parse as jpeg");
        }
    }

    #[test]
    fn force_overrides_refusal() {
        let mut sani = SaniVm::new();
        sani.mount_host_fs("os", host_fs_with_photo());
        let mut vm = anon_vm();
        let (report, landed) = sani
            .transfer_to_nym(
                "os",
                &Path::new("/photos/protest.jpg"),
                "tweeter",
                &mut vm,
                ParanoiaLevel::Basic,
                true,
            )
            .unwrap();
        assert!(!report.clean());
        assert!(vm.disk().exists(&landed));
    }

    #[test]
    fn host_files_never_modified() {
        let mut sani = SaniVm::new();
        let host = host_fs_with_photo();
        let before = host
            .read(&Path::new("/photos/protest.jpg"))
            .unwrap()
            .to_vec();
        sani.mount_host_fs("os", host);
        let mut vm = anon_vm();
        let _ = sani.transfer_to_nym(
            "os",
            &Path::new("/photos/protest.jpg"),
            "n",
            &mut vm,
            ParanoiaLevel::Paranoid,
            false,
        );
        let (_, host_after) = &sani.host_mounts[0];
        assert_eq!(
            host_after.read(&Path::new("/photos/protest.jpg")).unwrap(),
            before
        );
    }

    #[test]
    fn per_nym_inboxes_are_distinct() {
        assert_ne!(SaniVm::nym_inbox("a"), SaniVm::nym_inbox("b"));
    }

    #[test]
    fn document_transfer_rasterizes() {
        let mut sani = SaniVm::new();
        sani.mount_host_fs("os", host_fs_with_photo());
        let mut vm = anon_vm();
        let (report, landed) = sani
            .transfer_to_nym(
                "os",
                &Path::new("/docs/memo.pdf"),
                "leaker",
                &mut vm,
                ParanoiaLevel::Paranoid,
                false,
            )
            .unwrap();
        assert!(report.clean());
        let delivered = vm.disk().read(&landed).unwrap();
        assert!(matches!(MediaFile::parse(delivered), MediaFile::Jpeg(_)));
    }
}
