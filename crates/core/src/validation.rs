//! The §5.1 leak-validation harness.
//!
//! "We attempted to transmit Ethernet and IP packets from one AnonVM as
//! well as one CommVM to the local network, other AnonVMs and CommVMs,
//! as well as the hypervisor. All attempts failed with a no-response,
//! as if the host did not exist. The AnonVM can only communicate with a
//! functional CommVM and the CommVM could only communicate with the
//! Internet not local intranets."
//!
//! [`validate_isolation`] launches `n` nyms and runs the full probe
//! matrix, returning a machine-checkable report.

use nymix_anon::AnonymizerKind;
use nymix_net::fabric::Packet;
use nymix_net::Ip;

use crate::manager::{NymId, NymManager, NymManagerError};
use crate::nymbox::UsageModel;

/// One probe's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeResult {
    /// Description ("anonvm-1 -> intranet").
    pub label: String,
    /// Whether the packet was delivered.
    pub delivered: bool,
    /// Whether delivery was expected/required.
    pub expected_delivered: bool,
}

impl ProbeResult {
    /// Whether the probe matched the isolation contract.
    pub fn ok(&self) -> bool {
        self.delivered == self.expected_delivered
    }
}

/// The full §5.1 matrix for one configuration.
#[derive(Debug, Clone)]
pub struct IsolationReport {
    /// Every probe run.
    pub probes: Vec<ProbeResult>,
    /// Whether the AnonVM's fixed address ever appeared on the WAN side.
    pub anon_ip_leaked: bool,
    /// Whether any cleartext DNS left a CommVM toward the LAN.
    pub cleartext_dns_leaked: bool,
}

impl IsolationReport {
    /// Whether every probe matched expectations and no leak occurred.
    pub fn passed(&self) -> bool {
        self.probes.iter().all(ProbeResult::ok)
            && !self.anon_ip_leaked
            && !self.cleartext_dns_leaked
    }

    /// Failed probes, for diagnostics.
    pub fn failures(&self) -> Vec<&ProbeResult> {
        self.probes.iter().filter(|p| !p.ok()).collect()
    }
}

/// The idle-traffic analysis of §5.1: what does a freshly booted Nymix
/// host with `n` idle nyms emit?
#[derive(Debug, Clone)]
pub struct IdleTrafficReport {
    /// Frames the hypervisor transmitted, as "(dst, port)" summaries.
    pub hypervisor_emissions: Vec<String>,
    /// Frames any AnonVM transmitted beyond its own virtual wire.
    pub anonvm_external_frames: usize,
    /// Whether every hypervisor emission is DHCP or anonymizer-bound.
    pub only_dhcp_and_anonymizer: bool,
}

/// Boots Nymix with `n` idle nyms and classifies all emitted traffic
/// ("we ran Wireshark and inspected traffic entering and exiting an
/// idle Nymix client", §5.1).
pub fn validate_idle_traffic(n: usize) -> Result<IdleTrafficReport, NymManagerError> {
    let mut m = NymManager::new(0x1D7E, 64);
    for i in 0..n {
        m.create_nym(
            &format!("idle-{i}"),
            AnonymizerKind::Tor,
            UsageModel::Ephemeral,
        )?;
    }
    // No browsing: the host is idle. Inspect everything captured since
    // boot (the DHCP exchange) and since the nyms launched.
    let mut emissions = Vec::new();
    let mut ok = true;
    for e in m.fabric().tracer().sent_by("hypervisor") {
        let is_dhcp = e.packet.dst_port == 67 || e.packet.dst_port == 68;
        let is_anonymizer = e.packet.dst.in_subnet(Ip([198, 18, 0, 0]), 15);
        if !is_dhcp && !is_anonymizer {
            ok = false;
        }
        emissions.push(format!("{}:{}", e.packet.dst, e.packet.dst_port));
    }
    let anonvm_external_frames = m
        .fabric()
        .tracer()
        .entries()
        .iter()
        .filter(|e| e.from_node.starts_with("anonvm") && !e.to_node.starts_with("commvm"))
        .count();
    Ok(IdleTrafficReport {
        hypervisor_emissions: emissions,
        anonvm_external_frames,
        only_dhcp_and_anonymizer: ok,
    })
}

/// Launches `n` concurrent nyms and runs the §5.1 probe matrix.
pub fn validate_isolation(n: usize) -> Result<IsolationReport, NymManagerError> {
    let mut m = NymManager::new(0xA11CE, 64);
    let mut ids: Vec<NymId> = Vec::new();
    for i in 0..n {
        let (id, _) = m.create_nym(
            &format!("probe-{i}"),
            AnonymizerKind::Tor,
            UsageModel::Ephemeral,
        )?;
        ids.push(id);
    }
    let intranet = m.intranet_ip();
    let internet_target = m.dns().resolve("twitter.com").expect("eval site");
    let mut probes = Vec::new();

    m.fabric_mut().clear_trace();

    for (i, id) in ids.iter().enumerate() {
        let nb = m.nymbox(*id)?.clone();

        // AnonVM -> its own CommVM (the virtual wire): must deliver.
        let status = m.fabric_mut().send(
            nb.anon_node,
            Packet::tcp(Ip::ANONVM_FIXED, Ip::COMMVM_WIRE, 9050, 512),
        );
        probes.push(ProbeResult {
            label: format!("anonvm-{i} -> own commvm"),
            delivered: status.delivered(),
            expected_delivered: true,
        });

        // AnonVM -> the local intranet: must die.
        let status = m
            .fabric_mut()
            .send(nb.anon_node, Packet::icmp(Ip::ANONVM_FIXED, intranet));
        probes.push(ProbeResult {
            label: format!("anonvm-{i} -> intranet"),
            delivered: status.delivered(),
            expected_delivered: false,
        });

        // AnonVM -> hypervisor LAN leg: must die.
        let status = m.fabric_mut().send(
            nb.anon_node,
            Packet::icmp(Ip::ANONVM_FIXED, Ip::parse("192.168.1.100")),
        );
        probes.push(ProbeResult {
            label: format!("anonvm-{i} -> hypervisor"),
            delivered: status.delivered(),
            expected_delivered: false,
        });

        // CommVM -> Internet: must deliver (that's its job).
        let status = m.fabric_mut().send(
            nb.comm_node,
            Packet::tcp(Ip::parse("10.0.3.2"), internet_target, 443, 512),
        );
        probes.push(ProbeResult {
            label: format!("commvm-{i} -> internet"),
            delivered: status.delivered(),
            expected_delivered: true,
        });

        // CommVM -> intranet: must die ("could only communicate with
        // the Internet not local intranets").
        let status = m
            .fabric_mut()
            .send(nb.comm_node, Packet::icmp(Ip::parse("10.0.3.2"), intranet));
        probes.push(ProbeResult {
            label: format!("commvm-{i} -> intranet"),
            delivered: status.delivered(),
            expected_delivered: false,
        });

        // AnonVM -> another nym's CommVM uplink: structurally
        // unaddressable (all wires use identical addresses); probing the
        // uplink subnet from the AnonVM must die at its own CommVM.
        let status = m.fabric_mut().send(
            nb.anon_node,
            Packet::icmp(Ip::ANONVM_FIXED, Ip::parse("10.0.3.1")),
        );
        probes.push(ProbeResult {
            label: format!("anonvm-{i} -> nymbox uplink gateway"),
            delivered: status.delivered(),
            expected_delivered: false,
        });
    }

    // Leak analysis over everything captured during the matrix.
    let tracer = m.fabric().tracer();
    let anon_ip_leaked = tracer
        .entries()
        .iter()
        .any(|e| e.packet.src == Ip::ANONVM_FIXED && e.from_node == "hypervisor");
    let cleartext_dns_leaked = tracer.entries().iter().any(|e| {
        e.from_node.starts_with("commvm") && e.packet.dst_port == 53 && e.packet.dst == intranet
    });

    Ok(IsolationReport {
        probes,
        anon_ip_leaked,
        cleartext_dns_leaked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_nym_matrix_passes() {
        let report = validate_isolation(1).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures());
        assert_eq!(report.probes.len(), 6);
    }

    #[test]
    fn many_concurrent_nyms_stay_isolated() {
        // §5.1: "We also started many pseudonyms simultaneously in
        // order to verify the restricted communication model."
        let report = validate_isolation(5).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures());
        assert_eq!(report.probes.len(), 30);
    }

    #[test]
    fn idle_host_emits_only_dhcp() {
        let report = validate_idle_traffic(3).unwrap();
        assert!(
            report.only_dhcp_and_anonymizer,
            "unexpected emissions: {:?}",
            report.hypervisor_emissions
        );
        // Exactly the boot DHCP exchange.
        assert_eq!(report.hypervisor_emissions.len(), 1);
        assert!(report.hypervisor_emissions[0].ends_with(":67"));
        // "the AnonVM transmitted no traffic" beyond its wire.
        assert_eq!(report.anonvm_external_frames, 0);
    }

    #[test]
    fn report_accounting() {
        let report = validate_isolation(2).unwrap();
        assert!(report.failures().is_empty());
        assert!(!report.anon_ip_leaked);
        assert!(!report.cleartext_dns_leaked);
    }
}
