//! Property-based tests over the Nym Manager: arbitrary operation
//! sequences must never violate the core invariants.

use nymix::{NymId, NymManager, StorageDest, UsageModel};
use nymix_anon::AnonymizerKind;
use nymix_workload::Site;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Visit(u8),
    Save(u8),
    Destroy(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::Create),
        (0u8..4).prop_map(Op::Visit),
        (0u8..4).prop_map(Op::Save),
        (0u8..4).prop_map(Op::Destroy),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariants under arbitrary op interleavings:
    /// 1. used memory never exceeds host RAM;
    /// 2. destroying everything returns memory to the baseline;
    /// 3. the VM count is always exactly 2x the live-nym count;
    /// 4. operations on dead nyms fail cleanly (no panic).
    #[test]
    fn manager_invariants_hold(ops in proptest::collection::vec(arb_op(), 1..25), seed in any::<u64>()) {
        let mut m = NymManager::new(seed, 256);
        m.register_cloud("c", "a", "t");
        let dest = StorageDest::Cloud {
            provider: "c".into(),
            account: "a".into(),
            credential: "t".into(),
        };
        let baseline = m.hypervisor().used_memory_mib();
        let mut live: [Option<NymId>; 4] = [None; 4];
        for op in ops {
            match op {
                Op::Create(slot) => {
                    let slot = slot as usize;
                    if live[slot].is_none() {
                        if let Ok((id, _)) = m.create_nym(
                            &format!("p{slot}"),
                            AnonymizerKind::Tor,
                            UsageModel::Persistent,
                        ) {
                            live[slot] = Some(id);
                        }
                    }
                }
                Op::Visit(slot) => {
                    let slot = slot as usize;
                    match live[slot] {
                        Some(id) => { m.visit_site(id, Site::Bbc).expect("live nym visit"); }
                        None => { prop_assert!(m.visit_site(NymId(9999), Site::Bbc).is_err()); }
                    }
                }
                Op::Save(slot) => {
                    if let Some(id) = live[slot as usize] {
                        m.save_nym(id, "pw", &dest).expect("live nym save");
                    }
                }
                Op::Destroy(slot) => {
                    let slot = slot as usize;
                    if let Some(id) = live[slot].take() {
                        m.destroy_nym(id).expect("live nym destroy");
                        prop_assert!(m.destroy_nym(id).is_err(), "double destroy must fail");
                    }
                }
            }
            // Invariant 1 and 3 after every step.
            prop_assert!(m.hypervisor().used_memory_mib() <= 16_384.0);
            let live_count = live.iter().filter(|s| s.is_some()).count();
            prop_assert_eq!(m.hypervisor().vm_count(), live_count * 2);
        }
        for id in live.into_iter().flatten() {
            m.destroy_nym(id).expect("cleanup");
        }
        prop_assert_eq!(m.hypervisor().used_memory_mib(), baseline);
    }

    /// Save → restore is lossless for the browser-visible filesystem,
    /// for any site mix.
    #[test]
    fn save_restore_lossless(sites in proptest::collection::vec(0usize..8, 1..4), seed in any::<u64>()) {
        let mut m = NymManager::new(seed, 256);
        let (id, _) = m
            .create_nym("r", AnonymizerKind::Tor, UsageModel::Persistent)
            .expect("capacity");
        for s in &sites {
            m.visit_site(id, Site::VISIT_ORDER[*s]).expect("live");
        }
        let nb = m.nymbox(id).expect("live").clone();
        let before = m
            .hypervisor()
            .vm(nb.anon_vm)
            .expect("vm")
            .disk()
            .walk_files(&nymix_fs::Path::new("/home/user"));
        m.save_nym(id, "pw", &StorageDest::Local).expect("save");
        m.destroy_nym(id).expect("live");
        let (id2, _) = m
            .restore_nym("r", AnonymizerKind::Tor, UsageModel::Persistent, "pw", &StorageDest::Local)
            .expect("restore");
        let nb2 = m.nymbox(id2).expect("live").clone();
        let after = m
            .hypervisor()
            .vm(nb2.anon_vm)
            .expect("vm")
            .disk()
            .walk_files(&nymix_fs::Path::new("/home/user"));
        prop_assert_eq!(before, after);
    }
}
