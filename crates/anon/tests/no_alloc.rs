//! Pins the allocation-freedom of the anonymizer data planes: once a
//! circuit's cell buffer has grown to cell size, onion wrap/peel performs
//! no heap allocation, and DC-net pad accumulation expands every keystream
//! directly into the slot accumulator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use nymix_anon::tor::{TorClient, TorDirectory};
use nymix_sim::Rng;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// lint:allow(forbid-unsafe): GlobalAlloc is an unsafe trait; this counting shim only delegates to System
unsafe impl GlobalAlloc for CountingAlloc {
    // lint:allow(forbid-unsafe): signature dictated by the GlobalAlloc contract
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) } // lint:allow(forbid-unsafe): direct pass-through to the System allocator
    }
    // lint:allow(forbid-unsafe): signature dictated by the GlobalAlloc contract
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) } // lint:allow(forbid-unsafe): direct pass-through to the System allocator
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_in(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn onion_wrap_peel_allocation_free_post_setup() {
    let dir = TorDirectory::generate(4, 80);
    let mut rng = Rng::seed_from(11);
    let mut tor = TorClient::bootstrap(&dir, &mut rng);
    let mut circuit = tor.build_circuit(&dir, &mut rng).expect("circuit");
    let payload = vec![0x5au8; 512];
    let mut cell = Vec::with_capacity(payload.len());
    // Warm the buffer once (first growth is the "setup").
    circuit.wrap_into(&payload, &mut cell);
    let n = allocations_in(|| {
        for _ in 0..32 {
            circuit.wrap_into(&payload, &mut cell);
            circuit.peel(0, &mut cell);
            circuit.peel(1, &mut cell);
            circuit.peel(2, &mut cell);
        }
    });
    assert_eq!(n, 0, "steady-state wrap/peel must not allocate");
}

#[test]
fn dcnet_pad_accumulation_allocates_only_ciphertext_buffers() {
    use nymix_anon::DissentNet;
    let n_clients = 4;
    let m_servers = 3;
    let mut net = DissentNet::new(n_clients, m_servers, 256, 7);
    // Warm-up so `messages`-independent setup is done.
    let _ = net.run_round(&[]);
    let n = allocations_in(|| {
        std::hint::black_box(net.run_round(&[]));
    });
    // One returned Vec per participant plus the container itself; the pad
    // expansion (one ChaCha20 stream per pairwise seed, all XORed into the
    // slot accumulator) adds nothing.
    let expected_max = n_clients + m_servers + 1;
    assert!(
        n <= expected_max,
        "pad accumulation must not allocate per seed: {n} allocations for \
         {expected_max} ciphertext buffers"
    );
}
