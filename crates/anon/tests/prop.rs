//! Property-based tests for the anonymizer substrates.

use nymix_anon::dissent::DissentNet;
use nymix_anon::tor::{TorClient, TorDirectory, TorState};
use nymix_sim::Rng;
use proptest::prelude::*;

proptest! {
    /// DC-net correctness: any set of per-client messages (one per
    /// client at most) is recovered exactly; idle slots stay zero.
    #[test]
    fn dcnet_recovers_arbitrary_messages(
        seed in any::<u64>(),
        n_clients in 2usize..6,
        m_servers in 1usize..4,
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..6),
    ) {
        let slot = 32;
        let mut net = DissentNet::new(n_clients, m_servers, slot, seed);
        let sched: Vec<(usize, Vec<u8>)> = msgs
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i < n_clients)
            .collect();
        let cts = net.run_round(&sched);
        prop_assert_eq!(cts.len(), n_clients + m_servers);
        let slots = net.reveal(&cts);
        for (i, slot) in slots.iter().enumerate().take(n_clients) {
            let expect = sched.iter().find(|(o, _)| *o == i).map(|(_, m)| m.clone()).unwrap_or_default();
            prop_assert_eq!(&slot[..expect.len()], &expect[..]);
            prop_assert!(slot[expect.len()..].iter().all(|&b| b == 0), "slot {} dirty", i);
        }
    }

    /// Onion cells always unwrap to the payload after exactly three
    /// peels, and to garbage before.
    #[test]
    fn onion_layering(seed in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 1..256)) {
        let dir = TorDirectory::generate(seed, 60);
        let mut rng = Rng::seed_from(seed ^ 1);
        let mut tor = TorClient::bootstrap(&dir, &mut rng);
        let mut circuit = tor.build_circuit(&dir, &mut rng).expect("relays available");
        let mut cell = circuit.wrap(&payload);
        prop_assert_ne!(&cell, &payload);
        circuit.peel(0, &mut cell);
        circuit.peel(1, &mut cell);
        prop_assert_ne!(&cell, &payload);
        circuit.peel(2, &mut cell);
        prop_assert_eq!(&cell, &payload);
    }

    /// Guard-state serialization round-trips and rejects truncation.
    #[test]
    fn tor_state_roundtrip(seed in any::<u64>()) {
        let dir = TorDirectory::generate(seed, 40);
        let mut rng = Rng::seed_from(seed);
        let state = TorState::fresh(&dir, &mut rng);
        let blob = state.to_bytes();
        prop_assert_eq!(TorState::from_bytes(&blob).expect("parses"), state);
        for cut in 0..blob.len() {
            prop_assert!(TorState::from_bytes(&blob[..cut]).is_none());
        }
    }

    /// Deterministic guard seeding is a pure function of
    /// (location, password).
    #[test]
    fn deterministic_guards(loc in "[a-z]{1,16}", pw in "[a-z]{1,16}", seed in any::<u64>()) {
        let dir = TorDirectory::generate(seed, 50);
        let a = TorState::deterministic(&dir, &loc, &pw);
        let b = TorState::deterministic(&dir, &loc, &pw);
        prop_assert_eq!(a, b);
    }
}
