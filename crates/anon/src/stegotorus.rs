//! StegoTorus: a camouflage pluggable transport over Tor.
//!
//! §4: "The Chromium Web browser was chosen in order to support
//! circumvention software, specifically StegoTorus." StegoTorus
//! (Weinberg et al., CCS'12) disguises Tor traffic as innocuous cover
//! protocols (HTTP, Skype-like streams) so a censor's DPI cannot
//! recognize — and block — the Tor handshake.
//!
//! The model wraps any inner anonymizer: cells are chopped and
//! re-framed into cover-protocol messages (real re-framing of bytes,
//! testable), at a bandwidth and latency premium.

use nymix_net::Ip;
use nymix_sim::SimDuration;

use crate::api::{Anonymizer, AnonymizerKind, StartupPhase, TransferCost};

/// Cover protocols StegoTorus can mimic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverProtocol {
    /// HTTP request/response bodies.
    Http,
    /// A lossy audio-stream shape.
    SkypeLike,
}

impl CoverProtocol {
    /// Per-message payload capacity of the cover channel.
    pub fn chunk_payload(self) -> usize {
        match self {
            CoverProtocol::Http => 1024,
            CoverProtocol::SkypeLike => 160,
        }
    }

    /// Framing overhead per message (headers/padding).
    pub fn chunk_overhead(self) -> usize {
        match self {
            CoverProtocol::Http => 220,
            CoverProtocol::SkypeLike => 24,
        }
    }
}

/// The StegoTorus chopper: re-frames a byte stream into cover messages.
#[derive(Debug, Clone)]
pub struct Chopper {
    cover: CoverProtocol,
    seq: u32,
}

impl Chopper {
    /// A chopper for the given cover protocol.
    pub fn new(cover: CoverProtocol) -> Self {
        Self { cover, seq: 0 }
    }

    /// Chops `data` into cover messages: `seq || len || payload` inside
    /// a cover-protocol envelope.
    pub fn chop(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        let cap = self.cover.chunk_payload();
        let mut out = Vec::new();
        for chunk in data.chunks(cap.max(1)) {
            let mut msg = Vec::with_capacity(chunk.len() + 8);
            msg.extend_from_slice(&self.seq.to_le_bytes());
            self.seq = self.seq.wrapping_add(1);
            msg.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            msg.extend_from_slice(chunk);
            out.push(msg);
        }
        if out.is_empty() {
            // Even an empty write emits one cover message (traffic
            // shape maintenance).
            let mut msg = Vec::new();
            msg.extend_from_slice(&self.seq.to_le_bytes());
            self.seq = self.seq.wrapping_add(1);
            msg.extend_from_slice(&0u32.to_le_bytes());
            out.push(msg);
        }
        out
    }

    /// Reassembles chopped messages back into the byte stream.
    ///
    /// Returns `None` on malformed or out-of-order input.
    pub fn reassemble(messages: &[Vec<u8>]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        let mut expect_seq: Option<u32> = None;
        for msg in messages {
            if msg.len() < 8 {
                return None;
            }
            let seq = u32::from_le_bytes(msg[..4].try_into().ok()?);
            if let Some(e) = expect_seq {
                if seq != e {
                    return None;
                }
            }
            expect_seq = Some(seq.wrapping_add(1));
            let len = u32::from_le_bytes(msg[4..8].try_into().ok()?) as usize;
            if msg.len() != 8 + len {
                return None;
            }
            out.extend_from_slice(&msg[8..]);
        }
        Some(out)
    }
}

/// StegoTorus wrapping an inner anonymizer (normally Tor).
pub struct StegoTorus<A: Anonymizer> {
    inner: A,
    cover: CoverProtocol,
}

impl<A: Anonymizer> StegoTorus<A> {
    /// Wraps `inner` with the given cover protocol.
    pub fn new(inner: A, cover: CoverProtocol) -> Self {
        Self { inner, cover }
    }

    /// The cover protocol in use.
    pub fn cover(&self) -> CoverProtocol {
        self.cover
    }

    /// The wrapped anonymizer.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: Anonymizer> Anonymizer for StegoTorus<A> {
    fn name(&self) -> &'static str {
        "stegotorus"
    }

    fn kind(&self) -> AnonymizerKind {
        self.inner.kind()
    }

    fn startup_phases(&self, cold: bool) -> Vec<StartupPhase> {
        let mut phases = self.inner.startup_phases(cold);
        phases.push(StartupPhase::new(
            "establish cover-protocol session",
            SimDuration::from_millis(1_300),
        ));
        phases
    }

    fn transfer_cost(&self) -> TransferCost {
        let inner = self.inner.transfer_cost();
        // Chopping adds per-chunk framing: overhead/(payload+overhead)
        // of extra bytes on top of the inner cost.
        let chunk_tax = self.cover.chunk_overhead() as f64 / self.cover.chunk_payload() as f64;
        TransferCost {
            byte_overhead: (1.0 + inner.byte_overhead) * (1.0 + chunk_tax) - 1.0,
            connect_latency: inner.connect_latency + SimDuration::from_millis(180),
            rate_cap: inner.rate_cap,
        }
    }

    fn exit_address(&self, client_public: Ip) -> Ip {
        self.inner.exit_address(client_public)
    }

    fn remote_dns(&self) -> bool {
        self.inner.remote_dns()
    }

    fn save_state(&self) -> Vec<u8> {
        self.inner.save_state()
    }

    fn restore_state(&mut self, blob: &[u8]) -> bool {
        self.inner.restore_state(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incognito::Incognito;
    use crate::tor::{TorClient, TorDirectory};
    use nymix_sim::Rng;

    fn tor() -> TorClient {
        let dir = TorDirectory::generate(4, 80);
        let mut rng = Rng::seed_from(4);
        let mut t = TorClient::bootstrap(&dir, &mut rng);
        t.build_circuit(&dir, &mut rng).unwrap();
        t
    }

    #[test]
    fn chop_reassemble_roundtrip() {
        for cover in [CoverProtocol::Http, CoverProtocol::SkypeLike] {
            let mut chopper = Chopper::new(cover);
            let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
            let msgs = chopper.chop(&data);
            assert!(msgs.len() >= data.len() / cover.chunk_payload());
            assert_eq!(Chopper::reassemble(&msgs).unwrap(), data);
        }
    }

    #[test]
    fn reassembly_detects_reordering_and_tampering() {
        let mut chopper = Chopper::new(CoverProtocol::SkypeLike);
        let msgs = chopper.chop(&[7u8; 800]);
        assert!(msgs.len() > 2);
        let mut reordered = msgs.clone();
        reordered.swap(0, 1);
        assert!(Chopper::reassemble(&reordered).is_none());
        let mut truncated = msgs.clone();
        truncated[0].pop();
        assert!(Chopper::reassemble(&truncated).is_none());
    }

    #[test]
    fn empty_write_still_emits_cover_traffic() {
        let mut chopper = Chopper::new(CoverProtocol::Http);
        let msgs = chopper.chop(&[]);
        assert_eq!(msgs.len(), 1);
        assert_eq!(Chopper::reassemble(&msgs).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn cost_compounds_over_inner_transport() {
        let st = StegoTorus::new(tor(), CoverProtocol::Http);
        let plain = tor().transfer_cost();
        let wrapped = st.transfer_cost();
        assert!(wrapped.byte_overhead > plain.byte_overhead);
        assert!(wrapped.connect_latency > plain.connect_latency);
        // Still hides the source and keeps DNS remote.
        assert!(st.hides_source());
        assert!(st.remote_dns());
        assert_eq!(st.kind(), AnonymizerKind::Tor);
    }

    #[test]
    fn startup_appends_cover_session() {
        let st = StegoTorus::new(Incognito::new(), CoverProtocol::SkypeLike);
        let phases = st.startup_phases(true);
        assert!(phases.last().unwrap().label.contains("cover-protocol"));
        assert!(st.startup_time(true) > Incognito::new().startup_time(true));
    }

    #[test]
    fn state_passthrough() {
        let mut st = StegoTorus::new(tor(), CoverProtocol::Http);
        let blob = st.save_state();
        assert!(st.restore_state(&blob));
        assert!(!st.restore_state(b"garbage"));
    }
}
