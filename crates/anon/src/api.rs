//! The pluggable anonymizer interface.
//!
//! The CommVM "redirects all AnonVM traffic to the anonymizer, which in
//! turns transmits traffic through the anonymity network via the
//! CommVM's NAT-based Internet connection" (§3.3). From the Nym
//! Manager's perspective an anonymizer is: a startup procedure, a
//! per-transfer cost model, a linkability contract, and optional
//! persistent state.

use nymix_net::Ip;
use nymix_sim::SimDuration;

/// Which anonymizer a CommVM is configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnonymizerKind {
    /// Tor onion routing (§4.1): good security, good scalability.
    Tor,
    /// Dissent DC-nets (§4.1): provable traffic-analysis resistance,
    /// less scalable.
    Dissent,
    /// Lightweight VPN/NAT relaying: "low-cost anonymization with weak
    /// security" (§3.3).
    Incognito,
    /// SWEET email tunnel (§4.1): censorship circumvention, very slow.
    Sweet,
}

impl AnonymizerKind {
    /// All supported kinds (for sweeps and ablations).
    pub const ALL: [AnonymizerKind; 4] = [
        AnonymizerKind::Tor,
        AnonymizerKind::Dissent,
        AnonymizerKind::Incognito,
        AnonymizerKind::Sweet,
    ];
}

/// One labelled phase of anonymizer startup (Figure 7 decomposition).
#[derive(Debug, Clone, PartialEq)]
pub struct StartupPhase {
    /// Human-readable label ("fetch consensus", "build circuit", ...).
    pub label: String,
    /// How long the phase takes.
    pub duration: SimDuration,
}

impl StartupPhase {
    /// Creates a phase.
    pub fn new(label: &str, duration: SimDuration) -> Self {
        Self {
            label: label.to_string(),
            duration,
        }
    }
}

/// Cost model applied to a transfer riding the anonymizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferCost {
    /// Multiplicative byte overhead (cells, padding, control traffic).
    /// Tor's measured fixed cost is "approximately 12%" (§5.2).
    pub byte_overhead: f64,
    /// Extra latency per connection establishment (circuit/stream
    /// setup round trips).
    pub connect_latency: SimDuration,
    /// Hard per-flow throughput ceiling in bytes/second, if the
    /// anonymizer imposes one (`f64::INFINITY` otherwise).
    pub rate_cap: f64,
}

impl TransferCost {
    /// Inflates a payload size by the byte overhead.
    pub fn wire_bytes(&self, payload: f64) -> f64 {
        payload * (1.0 + self.byte_overhead)
    }
}

/// A pluggable anonymity/circumvention module.
pub trait Anonymizer {
    /// Short name ("tor", "dissent", ...).
    fn name(&self) -> &'static str;

    /// Which kind this is.
    fn kind(&self) -> AnonymizerKind;

    /// The startup phases from process launch to "ready to carry
    /// traffic". `cold` is true when no persistent state is available
    /// (fresh/ephemeral nym); warm starts reuse cached directory data
    /// and entry guards (§3.5).
    fn startup_phases(&self, cold: bool) -> Vec<StartupPhase>;

    /// Total startup duration (sum of phases).
    fn startup_time(&self, cold: bool) -> SimDuration {
        self.startup_phases(cold)
            .into_iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }

    /// The per-transfer cost model.
    fn transfer_cost(&self) -> TransferCost;

    /// The source address a destination server observes.
    fn exit_address(&self, client_public: Ip) -> Ip;

    /// Whether the destination can learn the client's network location.
    fn hides_source(&self) -> bool {
        self.exit_address(Ip::parse("203.0.113.9")) != Ip::parse("203.0.113.9")
    }

    /// Whether name resolution happens remotely (no cleartext DNS on
    /// the local network). Tor uses its built-in DNS port; Dissent and
    /// SWEET proxy UDP (§4.1).
    fn remote_dns(&self) -> bool;

    /// Serializes persistent state worth carrying across sessions
    /// (e.g. Tor entry guards). Empty if stateless.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores persistent state saved by [`Anonymizer::save_state`].
    /// Returns `false` if the blob is unrecognized.
    fn restore_state(&mut self, _blob: &[u8]) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_inflation() {
        let cost = TransferCost {
            byte_overhead: 0.12,
            connect_latency: SimDuration::ZERO,
            rate_cap: f64::INFINITY,
        };
        assert!((cost.wire_bytes(1000.0) - 1120.0).abs() < 1e-9);
    }

    #[test]
    fn all_kinds_enumerated() {
        assert_eq!(AnonymizerKind::ALL.len(), 4);
    }
}
