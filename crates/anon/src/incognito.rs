//! The lightweight incognito mode.
//!
//! §3.3: "A lightweight incognito mode uses simple VPN relaying to
//! provide low-cost anonymization with weak security." §4.1: "Our
//! incognito mode makes use of Linux' IPTables masquerade mode in order
//! to provide a NAT interface into the Internet."
//!
//! It still gives the AnonVM a pristine, homogenized environment and
//! amnesia — but the destination sees the user's own public address, so
//! it does **not** protect against network-level tracking. Tests assert
//! that contract explicitly.

use nymix_net::Ip;
use nymix_sim::SimDuration;

use crate::api::{Anonymizer, AnonymizerKind, StartupPhase, TransferCost};

/// The NAT-based incognito anonymizer.
#[derive(Debug, Clone, Default)]
pub struct Incognito;

impl Incognito {
    /// Creates the incognito module.
    pub fn new() -> Self {
        Self
    }
}

impl Anonymizer for Incognito {
    fn name(&self) -> &'static str {
        "incognito"
    }

    fn kind(&self) -> AnonymizerKind {
        AnonymizerKind::Incognito
    }

    fn startup_phases(&self, _cold: bool) -> Vec<StartupPhase> {
        vec![StartupPhase::new(
            "configure iptables masquerade",
            SimDuration::from_millis(400),
        )]
    }

    fn transfer_cost(&self) -> TransferCost {
        TransferCost {
            byte_overhead: 0.01, // NAT/encap bookkeeping only.
            connect_latency: SimDuration::from_millis(5),
            rate_cap: f64::INFINITY,
        }
    }

    fn exit_address(&self, client_public: Ip) -> Ip {
        client_public // The defining weakness: no source hiding.
    }

    fn remote_dns(&self) -> bool {
        false // DNS goes out the NAT like everything else.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reveals_source_by_design() {
        let inc = Incognito::new();
        let me = Ip::parse("203.0.113.9");
        assert_eq!(inc.exit_address(me), me);
        assert!(!inc.hides_source());
        assert!(!inc.remote_dns());
    }

    #[test]
    fn minimal_overhead() {
        let inc = Incognito::new();
        assert!(inc.transfer_cost().byte_overhead < 0.02);
        assert!(inc.startup_time(true).as_secs_f64() < 1.0);
        assert_eq!(inc.startup_time(true), inc.startup_time(false));
    }
}
