//! Tor: onion routing with persistent entry guards.
//!
//! A faithful structural simulation of the pieces Nymix's evaluation
//! touches:
//!
//! * a **directory** of relays with Guard/Exit flags and bandwidth
//!   weights, generated deterministically from a seed (the private
//!   DeterLab deployment of §5.2);
//! * **entry-guard selection and persistence** — "Tor normally
//!   maintains the same entry relay for several months" (§3.5); the
//!   guard set is the state quasi-persistent nyms carry, and losing it
//!   exposes users to faster intersection attacks;
//! * **3-hop circuits** with real layered ChaCha20 cell encryption
//!   (wrap at the client, one peel per relay);
//! * a **startup model** split into Figure 7's phases (consensus fetch,
//!   guard handshake, circuit build) with warm starts skipping the
//!   consensus fetch and reusing guards;
//! * the **~12% fixed byte overhead** measured in Figure 5.
//!
//! The §3.5 deterministic-guard extension is implemented by
//! [`TorState::deterministic`]: seeding guard choice from the nym's
//! storage location and password, so even the throwaway fetch nym picks
//! the same guards.

use nymix_crypto::ChaCha20;
use nymix_net::Ip;
use nymix_sim::{Rng, SimDuration};

use crate::api::{Anonymizer, AnonymizerKind, StartupPhase, TransferCost};

/// Identifies a relay in a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelayId(pub u32);

/// A Tor relay descriptor.
#[derive(Debug, Clone)]
pub struct Relay {
    /// Identity.
    pub id: RelayId,
    /// Advertised bandwidth (selection weight), bytes/second.
    pub bandwidth: f64,
    /// May serve as an entry guard.
    pub is_guard: bool,
    /// May serve as an exit.
    pub is_exit: bool,
    /// The relay's address (what destinations see for exits).
    pub address: Ip,
    /// Per-hop symmetric key (established by the simulated handshake).
    pub onion_key: [u8; 32],
}

/// A relay directory (consensus).
#[derive(Debug, Clone)]
pub struct TorDirectory {
    relays: Vec<Relay>,
}

/// Generator/serializer-side index to `u32`, checked instead of cast:
/// saturates on breach rather than silently wrapping into colliding
/// relay ids or a corrupt length prefix.
fn idx_u32(i: usize) -> u32 {
    debug_assert!(u32::try_from(i).is_ok(), "index {i} exceeds u32");
    u32::try_from(i).unwrap_or(u32::MAX)
}

impl TorDirectory {
    /// Generates a deterministic directory of `n` relays.
    ///
    /// Roughly a third are guards, a third exits, mirroring consensus
    /// flag proportions.
    pub fn generate(seed: u64, n: usize) -> Self {
        let mut rng = Rng::seed_from(seed ^ 0x7d1550fd15eed);
        let mut relays = Vec::with_capacity(n);
        for i in 0..n {
            let mut onion_key = [0u8; 32];
            rng.fill_bytes(&mut onion_key);
            relays.push(Relay {
                id: RelayId(idx_u32(i)),
                bandwidth: rng.range_f64(1e6, 20e6),
                is_guard: rng.chance(0.35),
                is_exit: rng.chance(0.30),
                address: Ip([
                    198,
                    18,
                    u8::try_from(i / 256 % 256).unwrap_or(0),
                    u8::try_from(i % 256).unwrap_or(0),
                ]),
                onion_key,
            });
        }
        // Guarantee at least one of each role.
        relays[0].is_guard = true;
        relays[n - 1].is_exit = true;
        Self { relays }
    }

    /// All relays.
    pub fn relays(&self) -> &[Relay] {
        &self.relays
    }

    /// Looks up a relay.
    pub fn relay(&self, id: RelayId) -> Option<&Relay> {
        self.relays.get(id.0 as usize)
    }

    /// Bandwidth-weighted choice among relays passing `filter`.
    pub fn weighted_pick(
        &self,
        rng: &mut Rng,
        filter: impl Fn(&Relay) -> bool,
        exclude: &[RelayId],
    ) -> Option<RelayId> {
        let candidates: Vec<&Relay> = self
            .relays
            .iter()
            .filter(|r| filter(r) && !exclude.contains(&r.id))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let total: f64 = candidates.iter().map(|r| r.bandwidth).sum();
        let mut x = rng.next_f64() * total;
        for r in &candidates {
            x -= r.bandwidth;
            if x <= 0.0 {
                return Some(r.id);
            }
        }
        Some(candidates[candidates.len() - 1].id)
    }
}

/// Persistent Tor client state: the entry guards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TorState {
    /// Chosen entry guards, in preference order.
    pub guards: Vec<RelayId>,
    /// When the guard set was chosen (microseconds of simulated time);
    /// drives the months-scale rotation of §3.5.
    pub chosen_at_us: u64,
}

const STATE_MAGIC: &[u8; 4] = b"TGS2";

/// Default guard lifetime: ~3 months ("Tor normally maintains the same
/// entry relay for several months", §3.5).
pub const GUARD_ROTATION_US: u64 = 90 * 24 * 3600 * 1_000_000;

impl TorState {
    /// Picks fresh guards at random (what a cold boot without state
    /// does — the §3.5 hazard for amnesiac systems).
    pub fn fresh(directory: &TorDirectory, rng: &mut Rng) -> Self {
        Self {
            guards: Self::pick_guards(directory, rng),
            chosen_at_us: 0,
        }
    }

    /// The §3.5 extension: derives the guard choice deterministically
    /// from the nym's storage location and password, so the ephemeral
    /// fetch nym picks the *same* guards as the nym it is fetching.
    pub fn deterministic(directory: &TorDirectory, storage_location: &str, password: &str) -> Self {
        let seed_bytes = nymix_crypto::hkdf::derive_key32(
            storage_location.as_bytes(),
            password.as_bytes(),
            b"nymix/tor/guard-seed",
        );
        let mut seed8 = [0u8; 8];
        seed8.copy_from_slice(&seed_bytes[..8]);
        let seed = u64::from_le_bytes(seed8);
        let mut rng = Rng::seed_from(seed);
        Self {
            guards: Self::pick_guards(directory, &mut rng),
            chosen_at_us: 0,
        }
    }

    /// Rotates the guard set if it is older than `period_us` at `now_us`
    /// ("and may increase this period further", §3.5). Returns whether
    /// a rotation happened.
    pub fn rotate_if_stale(
        &mut self,
        directory: &TorDirectory,
        rng: &mut Rng,
        now_us: u64,
        period_us: u64,
    ) -> bool {
        if now_us.saturating_sub(self.chosen_at_us) < period_us {
            return false;
        }
        self.guards = Self::pick_guards(directory, rng);
        self.chosen_at_us = now_us;
        true
    }

    fn pick_guards(directory: &TorDirectory, rng: &mut Rng) -> Vec<RelayId> {
        let mut guards = Vec::new();
        for _ in 0..3 {
            if let Some(id) = directory.weighted_pick(rng, |r| r.is_guard, &guards) {
                guards.push(id);
            }
        }
        guards
    }

    /// Serializes the guard set.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = STATE_MAGIC.to_vec();
        out.extend_from_slice(&self.chosen_at_us.to_le_bytes());
        out.extend_from_slice(&idx_u32(self.guards.len()).to_le_bytes());
        for g in &self.guards {
            out.extend_from_slice(&g.0.to_le_bytes());
        }
        out
    }

    /// Parses a serialized guard set.
    pub fn from_bytes(blob: &[u8]) -> Option<Self> {
        if blob.len() < 16 || &blob[..4] != STATE_MAGIC {
            return None;
        }
        let chosen_at_us = u64::from_le_bytes(blob[4..12].try_into().ok()?);
        let count = u32::from_le_bytes(blob[12..16].try_into().ok()?) as usize;
        if blob.len() != 16 + count * 4 {
            return None;
        }
        let mut guards = Vec::with_capacity(count);
        for i in 0..count {
            let off = 16 + i * 4;
            let word: [u8; 4] = blob[off..off + 4].try_into().ok()?;
            guards.push(RelayId(u32::from_le_bytes(word)));
        }
        Some(Self {
            guards,
            chosen_at_us,
        })
    }
}

/// A built circuit: guard → middle → exit with per-hop keys.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// The three hops, entry first.
    pub hops: [RelayId; 3],
    keys: [[u8; 32]; 3],
    /// Cell counter (nonce material).
    counter: u32,
    /// Reusable cell buffer for [`Circuit::wrap`], so steady-state
    /// wrapping performs no allocation.
    cell_buf: Vec<u8>,
}

/// Bytes of cell processed per combined-keystream chunk in
/// [`Circuit::wrap_into`]: all three layer streams stay in registers/L1
/// while the cell is traversed once.
const WRAP_CHUNK: usize = 256;

impl Circuit {
    /// Onion-wraps `payload` into `cell` (cleared and refilled): encrypts
    /// with the exit key first, the guard key last, so each relay peels
    /// exactly one layer.
    ///
    /// All three onion layers are applied in one pass over the cell: the
    /// cell is walked in `WRAP_CHUNK`-byte windows and each window gets
    /// all three per-hop keystreams XORed in while it is hot in cache.
    /// After circuit setup this performs no heap allocation (the caller's
    /// buffer is reused across cells).
    pub fn wrap_into(&mut self, payload: &[u8], cell: &mut Vec<u8>) {
        self.counter = self.counter.wrapping_add(1);
        let nonce = self.nonce();
        cell.clear();
        cell.extend_from_slice(payload);
        // Layer order is irrelevant to the resulting bytes (XOR commutes),
        // but each relay still peels exactly one keyed layer.
        let mut layers = [
            ChaCha20::new(&self.keys[0], &nonce, 1),
            ChaCha20::new(&self.keys[1], &nonce, 1),
            ChaCha20::new(&self.keys[2], &nonce, 1),
        ];
        for chunk in cell.chunks_mut(WRAP_CHUNK) {
            for layer in layers.iter_mut() {
                layer.xor_into(chunk);
            }
        }
    }

    /// Onion-wraps `payload`, returning the cell as a fresh `Vec`.
    ///
    /// Thin allocating wrapper over [`Circuit::wrap_into`]; bulk senders
    /// should use `wrap_into` or [`Circuit::wrap_cell`] to avoid the
    /// per-cell allocation.
    pub fn wrap(&mut self, payload: &[u8]) -> Vec<u8> {
        let mut cell = Vec::new();
        self.wrap_into(payload, &mut cell);
        cell
    }

    /// Onion-wraps `payload` into the circuit's internal reusable buffer
    /// and returns it; zero allocations once the buffer has grown to the
    /// cell size. The returned slice is valid until the next wrap.
    pub fn wrap_cell(&mut self, payload: &[u8]) -> &[u8] {
        let mut cell = std::mem::take(&mut self.cell_buf);
        self.wrap_into(payload, &mut cell);
        self.cell_buf = cell;
        &self.cell_buf
    }

    /// Peels the layer belonging to hop `hop_index` (0 = guard), in place
    /// and allocation-free.
    pub fn peel(&self, hop_index: usize, cell: &mut [u8]) {
        let nonce = self.nonce();
        ChaCha20::new(&self.keys[hop_index], &nonce, 1).xor_into(cell);
    }

    fn nonce(&self) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&self.counter.to_le_bytes());
        nonce
    }
}

/// Calibration constants for the Tor model.
pub mod calib {
    use nymix_sim::SimDuration;

    /// Fixed byte overhead (cells + control), Figure 5: "approximately
    /// 12% overhead".
    pub const BYTE_OVERHEAD: f64 = 0.12;

    /// Cold-start consensus fetch (directory download + parse).
    pub const CONSENSUS_FETCH: SimDuration = SimDuration(3_600_000);

    /// Per-hop circuit-extension handshake (CREATE/EXTEND round trip at
    /// the 80 ms testbed RTT plus crypto).
    pub const HOP_HANDSHAKE: SimDuration = SimDuration(450_000);

    /// Process launch + bootstrap bookkeeping.
    pub const PROCESS_LAUNCH: SimDuration = SimDuration(1_900_000);

    /// Guard re-validation on warm start (already have consensus +
    /// guards).
    pub const WARM_REVALIDATE: SimDuration = SimDuration(700_000);

    /// Stream attach latency per connection (BEGIN round trip).
    pub const STREAM_LATENCY: SimDuration = SimDuration(240_000);
}

/// A Tor client instance inside one nym's CommVM.
///
/// # Examples
///
/// ```
/// use nymix_anon::tor::{TorClient, TorDirectory};
/// use nymix_anon::Anonymizer;
/// use nymix_sim::Rng;
///
/// let dir = TorDirectory::generate(42, 100);
/// let mut rng = Rng::seed_from(7);
/// let mut tor = TorClient::bootstrap(&dir, &mut rng);
/// let circuit = tor.build_circuit(&dir, &mut rng).unwrap();
/// assert_eq!(circuit.hops.len(), 3);
/// assert!(tor.hides_source());
/// ```
#[derive(Debug, Clone)]
pub struct TorClient {
    state: TorState,
    /// Exit of the most recent circuit (what destinations see).
    current_exit: Option<Ip>,
    circuits_built: u32,
}

impl TorClient {
    /// Boots a fresh client: picks new guards (cold start).
    pub fn bootstrap(directory: &TorDirectory, rng: &mut Rng) -> Self {
        Self {
            state: TorState::fresh(directory, rng),
            current_exit: None,
            circuits_built: 0,
        }
    }

    /// Boots from persisted state (warm start).
    pub fn from_state(state: TorState) -> Self {
        Self {
            state,
            current_exit: None,
            circuits_built: 0,
        }
    }

    /// The client's guard set.
    pub fn state(&self) -> &TorState {
        &self.state
    }

    /// Number of circuits built so far.
    pub fn circuits_built(&self) -> u32 {
        self.circuits_built
    }

    /// Builds a circuit: primary guard, weighted middle, weighted exit.
    ///
    /// Returns `None` if the directory lacks usable relays.
    pub fn build_circuit(&mut self, directory: &TorDirectory, rng: &mut Rng) -> Option<Circuit> {
        let guard = *self.state.guards.first()?;
        let exclude = [guard];
        let exit = directory.weighted_pick(rng, |r| r.is_exit, &exclude)?;
        let exclude2 = [guard, exit];
        let middle = directory.weighted_pick(rng, |_| true, &exclude2)?;
        let hops = [guard, middle, exit];
        let keys = [
            directory.relay(guard)?.onion_key,
            directory.relay(middle)?.onion_key,
            directory.relay(exit)?.onion_key,
        ];
        self.current_exit = Some(directory.relay(exit)?.address);
        self.circuits_built += 1;
        Some(Circuit {
            hops,
            keys,
            counter: 0,
            cell_buf: Vec::new(),
        })
    }
}

impl Anonymizer for TorClient {
    fn name(&self) -> &'static str {
        "tor"
    }

    fn kind(&self) -> AnonymizerKind {
        AnonymizerKind::Tor
    }

    fn startup_phases(&self, cold: bool) -> Vec<StartupPhase> {
        let mut phases = vec![StartupPhase::new("launch tor", calib::PROCESS_LAUNCH)];
        if cold {
            phases.push(StartupPhase::new("fetch consensus", calib::CONSENSUS_FETCH));
            phases.push(StartupPhase::new("guard handshake", calib::HOP_HANDSHAKE));
        } else {
            phases.push(StartupPhase::new(
                "revalidate cached consensus/guards",
                calib::WARM_REVALIDATE,
            ));
        }
        phases.push(StartupPhase::new(
            "build circuit",
            SimDuration(calib::HOP_HANDSHAKE.0 * 3),
        ));
        phases
    }

    fn transfer_cost(&self) -> TransferCost {
        TransferCost {
            byte_overhead: calib::BYTE_OVERHEAD,
            connect_latency: calib::STREAM_LATENCY,
            rate_cap: f64::INFINITY,
        }
    }

    fn exit_address(&self, _client_public: Ip) -> Ip {
        self.current_exit.unwrap_or(Ip([198, 18, 0, 0]))
    }

    fn remote_dns(&self) -> bool {
        true // Tor's built-in DNS port (§4.1).
    }

    fn save_state(&self) -> Vec<u8> {
        self.state.to_bytes()
    }

    fn restore_state(&mut self, blob: &[u8]) -> bool {
        match TorState::from_bytes(blob) {
            Some(state) => {
                self.state = state;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TorDirectory, Rng) {
        (TorDirectory::generate(1, 200), Rng::seed_from(99))
    }

    #[test]
    fn directory_is_deterministic() {
        let a = TorDirectory::generate(5, 50);
        let b = TorDirectory::generate(5, 50);
        assert_eq!(a.relays().len(), 50);
        for (x, y) in a.relays().iter().zip(b.relays()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.bandwidth, y.bandwidth);
            assert_eq!(x.onion_key, y.onion_key);
        }
    }

    #[test]
    fn circuit_has_distinct_hops() {
        let (dir, mut rng) = setup();
        let mut tor = TorClient::bootstrap(&dir, &mut rng);
        for _ in 0..20 {
            let c = tor.build_circuit(&dir, &mut rng).unwrap();
            assert_ne!(c.hops[0], c.hops[1]);
            assert_ne!(c.hops[1], c.hops[2]);
            assert_ne!(c.hops[0], c.hops[2]);
            // Guard stays fixed across circuits (§3.5).
            assert_eq!(c.hops[0], tor.state().guards[0]);
        }
        assert_eq!(tor.circuits_built(), 20);
    }

    #[test]
    fn onion_layers_peel_in_order() {
        let (dir, mut rng) = setup();
        let mut tor = TorClient::bootstrap(&dir, &mut rng);
        let mut circuit = tor.build_circuit(&dir, &mut rng).unwrap();
        let payload = b"GET /index.html HTTP/1.1";
        let mut cell = circuit.wrap(payload);
        assert_ne!(&cell[..], &payload[..]);
        // Guard peels first; payload only appears after the exit peel.
        circuit.peel(0, &mut cell);
        assert_ne!(&cell[..], &payload[..]);
        circuit.peel(1, &mut cell);
        assert_ne!(&cell[..], &payload[..]);
        circuit.peel(2, &mut cell);
        assert_eq!(&cell[..], &payload[..]);
    }

    #[test]
    fn wrap_variants_agree() {
        // wrap / wrap_into / wrap_cell must produce identical bytes for
        // identical counter positions, including payloads straddling the
        // 256-byte combined-keystream chunk.
        let (dir, mut rng) = setup();
        let mut tor = TorClient::bootstrap(&dir, &mut rng);
        for len in [1usize, 64, 255, 256, 257, 514, 1024] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut a = tor.build_circuit(&dir, &mut rng).unwrap();
            let mut b = a.clone();
            let mut c = a.clone();
            let boxed = a.wrap(&payload);
            let mut reused = Vec::new();
            b.wrap_into(&payload, &mut reused);
            assert_eq!(boxed, reused, "wrap_into len {len}");
            assert_eq!(boxed, c.wrap_cell(&payload), "wrap_cell len {len}");
            // And the cell still peels back to the payload hop by hop.
            let mut cell = boxed;
            a.peel(0, &mut cell);
            a.peel(1, &mut cell);
            a.peel(2, &mut cell);
            assert_eq!(cell, payload, "peel len {len}");
        }
    }

    #[test]
    fn cells_differ_across_sends() {
        let (dir, mut rng) = setup();
        let mut tor = TorClient::bootstrap(&dir, &mut rng);
        let mut circuit = tor.build_circuit(&dir, &mut rng).unwrap();
        let a = circuit.wrap(b"same payload");
        let b = circuit.wrap(b"same payload");
        assert_ne!(a, b, "counter-based nonces must differ per cell");
    }

    #[test]
    fn state_roundtrip() {
        let (dir, mut rng) = setup();
        let tor = TorClient::bootstrap(&dir, &mut rng);
        let blob = tor.save_state();
        let restored = TorState::from_bytes(&blob).unwrap();
        assert_eq!(&restored, tor.state());
        // Corrupt blobs are rejected.
        assert!(TorState::from_bytes(&blob[..blob.len() - 1]).is_none());
        assert!(TorState::from_bytes(b"XXXX").is_none());
        let mut bad = blob.clone();
        bad[0] ^= 1;
        assert!(TorState::from_bytes(&bad).is_none());
    }

    #[test]
    fn warm_start_skips_consensus_fetch() {
        let (dir, mut rng) = setup();
        let tor = TorClient::bootstrap(&dir, &mut rng);
        let cold = tor.startup_time(true);
        let warm = tor.startup_time(false);
        assert!(warm < cold);
        // Figure 7 calibration: cold ≈ 7.2 s, warm ≈ 3.9 s.
        assert!((cold.as_secs_f64() - 7.2).abs() < 0.5, "cold {cold}");
        assert!((warm.as_secs_f64() - 3.95).abs() < 0.5, "warm {warm}");
    }

    #[test]
    fn deterministic_guards_match_across_instances() {
        let (dir, _) = setup();
        let a = TorState::deterministic(&dir, "dropbox://nyms/alice", "hunter2");
        let b = TorState::deterministic(&dir, "dropbox://nyms/alice", "hunter2");
        assert_eq!(a, b);
        let c = TorState::deterministic(&dir, "dropbox://nyms/alice", "other-pass");
        assert_ne!(a, c);
    }

    #[test]
    fn fresh_boots_usually_pick_different_guards() {
        let (dir, mut rng) = setup();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..10 {
            let s = TorState::fresh(&dir, &mut rng);
            distinct.insert(s.guards[0]);
        }
        // The §3.5 hazard: amnesiac boots churn guards.
        assert!(distinct.len() > 2, "guard churn expected: {distinct:?}");
    }

    #[test]
    fn guard_rotation_by_age() {
        let (dir, mut rng) = setup();
        let mut state = TorState::fresh(&dir, &mut rng);
        let original = state.guards.clone();
        // Young state does not rotate.
        assert!(!state.rotate_if_stale(&dir, &mut rng, GUARD_ROTATION_US - 1, GUARD_ROTATION_US));
        assert_eq!(state.guards, original);
        // Past the period it does, and the age resets.
        assert!(state.rotate_if_stale(&dir, &mut rng, GUARD_ROTATION_US, GUARD_ROTATION_US));
        assert_eq!(state.chosen_at_us, GUARD_ROTATION_US);
        assert!(!state.rotate_if_stale(&dir, &mut rng, GUARD_ROTATION_US + 1, GUARD_ROTATION_US));
    }

    #[test]
    fn restore_rejects_garbage() {
        let (dir, mut rng) = setup();
        let mut tor = TorClient::bootstrap(&dir, &mut rng);
        let orig = tor.state().clone();
        assert!(!tor.restore_state(b"not a state blob"));
        assert_eq!(tor.state(), &orig);
    }

    #[test]
    fn exit_address_hides_client() {
        let (dir, mut rng) = setup();
        let mut tor = TorClient::bootstrap(&dir, &mut rng);
        tor.build_circuit(&dir, &mut rng).unwrap();
        let client = Ip::parse("203.0.113.50");
        let seen = tor.exit_address(client);
        assert_ne!(seen, client);
        assert!(tor.hides_source());
        assert!(tor.remote_dns());
    }
}
