//! SWEET: serving the Web by exploiting email tunnels.
//!
//! §4.1: "we have tested ... our own implementation of SWEET" — a
//! censorship-circumvention transport that tunnels web traffic through
//! email round trips (Houmansadr et al.). Functionally it hides the
//! destination from a censor and the source from the destination (the
//! tunnel endpoint originates the real requests), at the cost of very
//! high latency and very low throughput.

use nymix_net::Ip;
use nymix_sim::SimDuration;

use crate::api::{Anonymizer, AnonymizerKind, StartupPhase, TransferCost};

/// Calibration constants for the SWEET model.
pub mod calib {
    use nymix_sim::SimDuration;

    /// Email round-trip latency per connection (queue + poll).
    pub const EMAIL_RTT: SimDuration = SimDuration(8_000_000);

    /// MIME/base64 encapsulation overhead.
    pub const BYTE_OVERHEAD: f64 = 0.45;

    /// Throughput ceiling of an email-tunnel transport.
    pub const RATE_CAP: f64 = 64_000.0; // bytes/second
}

/// The SWEET email-tunnel anonymizer.
#[derive(Debug, Clone, Default)]
pub struct Sweet;

impl Sweet {
    /// Creates the SWEET module.
    pub fn new() -> Self {
        Self
    }
}

impl Anonymizer for Sweet {
    fn name(&self) -> &'static str {
        "sweet"
    }

    fn kind(&self) -> AnonymizerKind {
        AnonymizerKind::Sweet
    }

    fn startup_phases(&self, cold: bool) -> Vec<StartupPhase> {
        let mut phases = vec![StartupPhase::new(
            "launch sweet proxy",
            SimDuration::from_millis(1_200),
        )];
        if cold {
            phases.push(StartupPhase::new(
                "authenticate mail account",
                SimDuration::from_millis(2_500),
            ));
        }
        phases.push(StartupPhase::new(
            "probe tunnel (one email RTT)",
            calib::EMAIL_RTT,
        ));
        phases
    }

    fn transfer_cost(&self) -> TransferCost {
        TransferCost {
            byte_overhead: calib::BYTE_OVERHEAD,
            connect_latency: calib::EMAIL_RTT,
            rate_cap: calib::RATE_CAP,
        }
    }

    fn exit_address(&self, _client_public: Ip) -> Ip {
        Ip([198, 19, 1, 1]) // The tunnel endpoint's address.
    }

    fn remote_dns(&self) -> bool {
        true // "both Dissent and SWEET support UDP based proxying" (§4.1).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn very_slow_but_hiding() {
        let s = Sweet::new();
        assert!(s.hides_source());
        assert!(s.remote_dns());
        assert!(s.transfer_cost().rate_cap < 100_000.0);
        assert!(s.transfer_cost().connect_latency.as_secs_f64() >= 8.0);
        assert!(s.startup_time(true) > s.startup_time(false));
    }
}
