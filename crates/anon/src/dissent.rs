//! Dissent: an anytrust DC-net.
//!
//! §3.3: Nymix "experimentally supports anonymous browsing via Dissent,
//! an anonymizer based on DC-nets that in principle offers formally
//! provable traffic analysis resistance". This module implements the
//! actual DC-net mechanics in the anytrust configuration of Wolinsky et
//! al.: N clients share a pairwise secret with each of M servers; every
//! client's per-round ciphertext is its pads XORed together (plus its
//! message in its own slot); servers XOR their own pads over the
//! aggregate; the combined XOR of *all* ciphertexts reveals exactly the
//! scheduled plaintexts — and nothing identifies which client authored
//! which slot, as long as one server is honest.
//!
//! Pads are expanded from the pairwise seeds with ChaCha20 keyed per
//! round, so the transcript is real bits, not an abstraction.

use nymix_crypto::ChaCha20;
use nymix_net::Ip;
use nymix_sim::SimDuration;

use crate::api::{Anonymizer, AnonymizerKind, StartupPhase, TransferCost};

/// Calibration constants for the Dissent model.
pub mod calib {
    use nymix_sim::SimDuration;

    /// Byte overhead: every client transmits every slot every round, so
    /// the efficiency loss is steep; control + scheduling ≈ 30% beyond
    /// the slot padding modelled explicitly.
    pub const BYTE_OVERHEAD: f64 = 0.30;

    /// Process launch.
    pub const PROCESS_LAUNCH: SimDuration = SimDuration(1_500_000);

    /// Client-server key agreement (M servers).
    pub const KEY_AGREEMENT: SimDuration = SimDuration(2_400_000);

    /// Round scheduling latency per connection.
    pub const ROUND_LATENCY: SimDuration = SimDuration(900_000);

    /// Per-flow throughput ceiling of the experimental deployment.
    pub const RATE_CAP: f64 = 600_000.0; // bytes/second
}

/// One DC-net participant's pairwise seeds with the servers.
#[derive(Debug, Clone)]
struct SeedSet {
    seeds: Vec<[u8; 32]>,
}

impl SeedSet {
    /// XORs this participant's pad for `round` into `acc`: one ChaCha20
    /// stream per pairwise seed, expanded directly into the accumulator —
    /// no per-seed keystream allocation.
    fn pad_xor_into(&self, round: u64, acc: &mut [u8]) {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&round.to_le_bytes());
        for seed in &self.seeds {
            ChaCha20::new(seed, &nonce, 0).xor_into(acc);
        }
    }
}

/// A complete DC-net: N clients, M anytrust servers, slot schedule.
///
/// # Examples
///
/// ```
/// use nymix_anon::DissentNet;
///
/// let mut net = DissentNet::new(4, 3, 64, 42);
/// let cipher = net.run_round(&[(1, b"hello dissent".to_vec())]);
/// let slots = net.reveal(&cipher);
/// assert!(slots[1].starts_with(b"hello dissent"));
/// // Other slots carry nothing.
/// assert!(slots[0].iter().all(|&b| b == 0));
/// ```
#[derive(Debug, Clone)]
pub struct DissentNet {
    clients: Vec<SeedSet>,
    servers: Vec<SeedSet>,
    slot_len: usize,
    round: u64,
}

impl DissentNet {
    /// Builds a net with `n_clients`, `m_servers`, fixed `slot_len`,
    /// deriving all pairwise seeds from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(n_clients: usize, m_servers: usize, slot_len: usize, seed: u64) -> Self {
        assert!(n_clients > 0 && m_servers > 0 && slot_len > 0);
        // Pairwise seed (i, j) = HKDF(master, "dcnet", i || j): both the
        // client i and server j derive the same value.
        let pair_seed = |i: usize, j: usize| -> [u8; 32] {
            let mut info = Vec::new();
            info.extend_from_slice(b"nymix/dcnet/pair");
            info.extend_from_slice(&(i as u64).to_le_bytes());
            info.extend_from_slice(&(j as u64).to_le_bytes());
            nymix_crypto::hkdf::derive_key32(&seed.to_le_bytes(), b"dissent-master", &info)
        };
        let clients = (0..n_clients)
            .map(|i| SeedSet {
                seeds: (0..m_servers).map(|j| pair_seed(i, j)).collect(),
            })
            .collect();
        let servers = (0..m_servers)
            .map(|j| SeedSet {
                seeds: (0..n_clients).map(|i| pair_seed(i, j)).collect(),
            })
            .collect();
        Self {
            clients,
            servers,
            slot_len,
            round: 0,
        }
    }

    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Slot length in bytes.
    pub fn slot_len(&self) -> usize {
        self.slot_len
    }

    /// Total bytes transmitted on the wire per round: every client and
    /// every server sends a full schedule (N slots).
    pub fn round_wire_bytes(&self) -> usize {
        (self.clients.len() + self.servers.len()) * self.clients.len() * self.slot_len
    }

    /// Runs one round. `messages` maps client index → plaintext (at
    /// most `slot_len` bytes; the rest of the slot is zero padding).
    /// Returns every participant's ciphertext (clients then servers).
    ///
    /// # Panics
    ///
    /// Panics if a message exceeds the slot length or a client index is
    /// out of range.
    pub fn run_round(&mut self, messages: &[(usize, Vec<u8>)]) -> Vec<Vec<u8>> {
        let n = self.clients.len();
        let schedule_len = n * self.slot_len;
        self.round += 1;
        let mut ciphertexts = Vec::with_capacity(n + self.servers.len());
        for (i, client) in self.clients.iter().enumerate() {
            // One ciphertext allocation per participant (it is returned);
            // all pad streams expand straight into it.
            let mut ct = vec![0u8; schedule_len];
            client.pad_xor_into(self.round, &mut ct);
            for (owner, msg) in messages {
                if *owner == i {
                    assert!(*owner < n, "client index out of range");
                    assert!(msg.len() <= self.slot_len, "message exceeds slot length");
                    let base = i * self.slot_len;
                    for (k, &b) in msg.iter().enumerate() {
                        ct[base + k] ^= b;
                    }
                }
            }
            ciphertexts.push(ct);
        }
        for server in &self.servers {
            let mut ct = vec![0u8; schedule_len];
            server.pad_xor_into(self.round, &mut ct);
            ciphertexts.push(ct);
        }
        ciphertexts
    }

    /// Combines all ciphertexts of a round, recovering the slot
    /// plaintexts.
    ///
    /// # Panics
    ///
    /// Panics if ciphertext lengths disagree.
    pub fn reveal(&self, ciphertexts: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let n = self.clients.len();
        let schedule_len = n * self.slot_len;
        let mut combined = vec![0u8; schedule_len];
        for ct in ciphertexts {
            assert_eq!(ct.len(), schedule_len, "ciphertext length mismatch");
            for (c, &b) in combined.iter_mut().zip(ct) {
                *c ^= b;
            }
        }
        combined.chunks(self.slot_len).map(|c| c.to_vec()).collect()
    }
}

/// Outcome of verifying one revealed slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotStatus {
    /// Nobody transmitted in this slot.
    Empty,
    /// A correctly framed message.
    Valid(Vec<u8>),
    /// The slot failed its integrity check: some participant XORed
    /// garbage into the round (a *disruption* — the attack the full
    /// Dissent protocol answers with verifiable shuffles/blame).
    Disrupted,
}

/// Bytes of slot framing overhead (length prefix + checksum).
pub const FRAME_OVERHEAD: usize = 4 + 8;

/// Frames `msg` for transmission: `len || msg || sha256(msg)[..8]`.
///
/// # Panics
///
/// Panics if the framed message exceeds `slot_len`.
pub fn frame_message(msg: &[u8], slot_len: usize) -> Vec<u8> {
    assert!(
        msg.len() + FRAME_OVERHEAD <= slot_len,
        "framed message exceeds slot"
    );
    let mut out = Vec::with_capacity(msg.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg);
    let digest = nymix_crypto::sha256(msg);
    out.extend_from_slice(&digest[..8]);
    out
}

/// Verifies one revealed slot against the framing.
pub fn check_slot(slot: &[u8]) -> SlotStatus {
    if slot.iter().all(|&b| b == 0) {
        return SlotStatus::Empty;
    }
    if slot.len() < FRAME_OVERHEAD {
        return SlotStatus::Disrupted;
    }
    let len = u32::from_le_bytes(slot[..4].try_into().expect("4 bytes")) as usize;
    if len + FRAME_OVERHEAD > slot.len() {
        return SlotStatus::Disrupted;
    }
    let msg = &slot[4..4 + len];
    let checksum = &slot[4 + len..4 + len + 8];
    let digest = nymix_crypto::sha256(msg);
    if !nymix_crypto::ct::eq(&digest[..8], checksum) || slot[4 + len + 8..].iter().any(|&b| b != 0)
    {
        return SlotStatus::Disrupted;
    }
    SlotStatus::Valid(msg.to_vec())
}

impl DissentNet {
    /// Runs a round with integrity framing; combine with
    /// [`DissentNet::reveal`] + [`check_slot`] to detect disruption.
    pub fn run_round_framed(&mut self, messages: &[(usize, Vec<u8>)]) -> Vec<Vec<u8>> {
        let framed: Vec<(usize, Vec<u8>)> = messages
            .iter()
            .map(|(owner, msg)| (*owner, frame_message(msg, self.slot_len)))
            .collect();
        self.run_round(&framed)
    }

    /// Reveals and verifies a full round.
    pub fn reveal_checked(&self, ciphertexts: &[Vec<u8>]) -> Vec<SlotStatus> {
        self.reveal(ciphertexts)
            .iter()
            .map(|slot| check_slot(slot))
            .collect()
    }
}

impl Anonymizer for DissentNet {
    fn name(&self) -> &'static str {
        "dissent"
    }

    fn kind(&self) -> AnonymizerKind {
        AnonymizerKind::Dissent
    }

    fn startup_phases(&self, cold: bool) -> Vec<StartupPhase> {
        let mut phases = vec![StartupPhase::new("launch dissent", calib::PROCESS_LAUNCH)];
        if cold {
            phases.push(StartupPhase::new(
                "anytrust key agreement",
                calib::KEY_AGREEMENT,
            ));
        } else {
            phases.push(StartupPhase::new(
                "resume session keys",
                SimDuration(calib::KEY_AGREEMENT.0 / 3),
            ));
        }
        phases.push(StartupPhase::new(
            "join round schedule",
            calib::ROUND_LATENCY,
        ));
        phases
    }

    fn transfer_cost(&self) -> TransferCost {
        TransferCost {
            byte_overhead: calib::BYTE_OVERHEAD,
            connect_latency: calib::ROUND_LATENCY,
            rate_cap: calib::RATE_CAP,
        }
    }

    fn exit_address(&self, _client_public: Ip) -> Ip {
        // Traffic exits from the anytrust servers.
        Ip([198, 19, 0, 1])
    }

    fn remote_dns(&self) -> bool {
        true // "Dissent ... does have support for UDP redirection" (§4.1).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_message_recovered() {
        let mut net = DissentNet::new(5, 3, 32, 7);
        let cts = net.run_round(&[(2, b"dissident tweet".to_vec())]);
        assert_eq!(cts.len(), 8);
        let slots = net.reveal(&cts);
        assert_eq!(&slots[2][..15], b"dissident tweet");
        assert!(slots[2][15..].iter().all(|&b| b == 0));
        for (i, slot) in slots.iter().enumerate() {
            if i != 2 {
                assert!(slot.iter().all(|&b| b == 0), "slot {i} not empty");
            }
        }
    }

    #[test]
    fn concurrent_messages_in_distinct_slots() {
        let mut net = DissentNet::new(4, 2, 16, 9);
        let cts = net.run_round(&[
            (0, b"alpha".to_vec()),
            (1, b"beta".to_vec()),
            (3, b"delta".to_vec()),
        ]);
        let slots = net.reveal(&cts);
        assert_eq!(&slots[0][..5], b"alpha");
        assert_eq!(&slots[1][..4], b"beta");
        assert!(slots[2].iter().all(|&b| b == 0));
        assert_eq!(&slots[3][..5], b"delta");
    }

    #[test]
    fn dropping_any_participant_destroys_recovery() {
        // The anytrust property's flip side: reveal requires *every*
        // participant's ciphertext; a single missing server yields
        // noise.
        let mut net = DissentNet::new(3, 2, 16, 11);
        let cts = net.run_round(&[(0, b"secret".to_vec())]);
        let partial = &cts[..cts.len() - 1];
        let mut truncated: Vec<Vec<u8>> = partial.to_vec();
        let slots_bad = net.reveal(&truncated);
        assert_ne!(&slots_bad[0][..6], b"secret");
        truncated.push(cts[cts.len() - 1].clone());
        let slots_good = net.reveal(&truncated);
        assert_eq!(&slots_good[0][..6], b"secret");
    }

    #[test]
    fn ciphertexts_are_unlinkable_to_sender() {
        // The transmitting client's ciphertext is pad ⊕ message; without
        // the pads it is indistinguishable from the idle clients' pure
        // pads. Proxy test: all ciphertexts pass a crude randomness
        // check and none equals the plaintext-embedded slot.
        let mut net = DissentNet::new(4, 3, 64, 13);
        let msg = vec![0u8; 64]; // all-zero message: ct == pad exactly
        let cts = net.run_round(&[(1, msg)]);
        for ct in &cts {
            let ones: u32 = ct.iter().map(|b| b.count_ones()).sum();
            let total = (ct.len() * 8) as f64;
            let ratio = ones as f64 / total;
            assert!((0.35..0.65).contains(&ratio), "bias {ratio}");
        }
    }

    #[test]
    fn rounds_use_fresh_pads() {
        let mut net = DissentNet::new(2, 2, 16, 17);
        let r1 = net.run_round(&[]);
        let r2 = net.run_round(&[]);
        assert_ne!(r1[0], r2[0], "pads must differ across rounds");
        // Both rounds still reveal to all-zero (no messages).
        assert!(net.reveal(&r2).iter().all(|s| s.iter().all(|&b| b == 0)));
    }

    #[test]
    fn wire_cost_scales_with_membership() {
        let net_small = DissentNet::new(4, 2, 128, 1);
        let net_big = DissentNet::new(8, 2, 128, 1);
        assert!(net_big.round_wire_bytes() > 2 * net_small.round_wire_bytes());
    }

    #[test]
    #[should_panic(expected = "exceeds slot length")]
    fn oversized_message_rejected() {
        let mut net = DissentNet::new(2, 1, 8, 3);
        net.run_round(&[(0, vec![0u8; 9])]);
    }

    #[test]
    fn framed_round_verifies() {
        let mut net = DissentNet::new(4, 2, 64, 21);
        let cts = net.run_round_framed(&[(0, b"hello".to_vec()), (2, b"world!".to_vec())]);
        let statuses = net.reveal_checked(&cts);
        assert_eq!(statuses[0], SlotStatus::Valid(b"hello".to_vec()));
        assert_eq!(statuses[1], SlotStatus::Empty);
        assert_eq!(statuses[2], SlotStatus::Valid(b"world!".to_vec()));
        assert_eq!(statuses[3], SlotStatus::Empty);
    }

    #[test]
    fn disruption_detected() {
        // A malicious client XORs garbage over someone else's slot.
        let mut net = DissentNet::new(3, 2, 64, 22);
        let mut cts = net.run_round_framed(&[(1, b"legit message".to_vec())]);
        // Client 0 disrupts slot 1 (bytes 64..128 of the schedule).
        cts[0][70] ^= 0xFF;
        let statuses = net.reveal_checked(&cts);
        assert_eq!(statuses[1], SlotStatus::Disrupted);
        // Other slots unaffected.
        assert_eq!(statuses[0], SlotStatus::Empty);
        assert_eq!(statuses[2], SlotStatus::Empty);
    }

    #[test]
    fn any_single_bitflip_never_yields_wrong_valid() {
        let mut net = DissentNet::new(2, 1, 32, 23);
        let msg = b"exact".to_vec();
        let cts = net.run_round_framed(&[(0, msg.clone())]);
        for byte in 0..32usize {
            let mut tampered = cts.clone();
            tampered[1][byte] ^= 0x01;
            let statuses = net.reveal_checked(&tampered);
            match &statuses[0] {
                SlotStatus::Valid(m) => assert_eq!(m, &msg, "byte {byte} forged a message"),
                SlotStatus::Disrupted | SlotStatus::Empty => {}
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds slot")]
    fn framing_respects_slot_budget() {
        let _ = frame_message(&[0u8; 60], 64);
    }

    #[test]
    fn anonymizer_contract() {
        let net = DissentNet::new(4, 3, 64, 5);
        assert!(net.hides_source());
        assert!(net.remote_dns());
        assert!(net.transfer_cost().rate_cap.is_finite());
        assert!(net.startup_time(true) > net.startup_time(false));
    }
}
