//! Serial anonymizer composition.
//!
//! §3.3: "In principle, anonymizers can be combined by connecting
//! CommVMs in serial, or within the same CommVM: we have built
//! experimental Nymix configurations combining Tor and Dissent to
//! achieve 'best of both worlds' anonymity."
//!
//! A [`SerialChain`] runs its stages in order: the AnonVM's traffic
//! enters the first stage and exits the Internet from the *last*
//! stage's address. Costs compose: byte overheads multiply, latencies
//! add, rate caps take the minimum; startup runs all stages.

use nymix_net::Ip;
use nymix_sim::SimDuration;

use crate::api::{Anonymizer, AnonymizerKind, StartupPhase, TransferCost};

/// A serial composition of anonymizers.
pub struct SerialChain {
    stages: Vec<Box<dyn Anonymizer>>,
}

impl SerialChain {
    /// Builds a chain from `stages`, first stage innermost (closest to
    /// the AnonVM).
    ///
    /// # Panics
    ///
    /// Panics on an empty chain.
    pub fn new(stages: Vec<Box<dyn Anonymizer>>) -> Self {
        assert!(!stages.is_empty(), "chain needs at least one stage");
        Self { stages }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages.
    pub fn stages(&self) -> &[Box<dyn Anonymizer>] {
        &self.stages
    }
}

impl Anonymizer for SerialChain {
    fn name(&self) -> &'static str {
        "serial-chain"
    }

    fn kind(&self) -> AnonymizerKind {
        // Reported as the outermost stage's kind: that is whose network
        // behaviour the wide area observes.
        self.stages.last().expect("non-empty").kind()
    }

    fn startup_phases(&self, cold: bool) -> Vec<StartupPhase> {
        let mut phases = Vec::new();
        for (i, stage) in self.stages.iter().enumerate() {
            for p in stage.startup_phases(cold) {
                phases.push(StartupPhase::new(
                    &format!("stage{}[{}]: {}", i, stage.name(), p.label),
                    p.duration,
                ));
            }
        }
        phases
    }

    fn transfer_cost(&self) -> TransferCost {
        let mut inflate = 1.0;
        let mut latency = SimDuration::ZERO;
        let mut cap = f64::INFINITY;
        for stage in &self.stages {
            let c = stage.transfer_cost();
            inflate *= 1.0 + c.byte_overhead;
            latency = latency + c.connect_latency;
            cap = cap.min(c.rate_cap);
        }
        TransferCost {
            byte_overhead: inflate - 1.0,
            connect_latency: latency,
            rate_cap: cap,
        }
    }

    fn exit_address(&self, client_public: Ip) -> Ip {
        // Each stage sees the previous stage's exit as "the client".
        let mut addr = client_public;
        for stage in &self.stages {
            addr = stage.exit_address(addr);
        }
        addr
    }

    fn remote_dns(&self) -> bool {
        // Safe iff the innermost stage already keeps DNS off the LAN.
        self.stages.first().expect("non-empty").remote_dns()
    }

    fn save_state(&self) -> Vec<u8> {
        // Length-prefixed concatenation of stage states.
        let mut out = Vec::new();
        for stage in &self.stages {
            let blob = stage.save_state();
            out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        out
    }

    fn restore_state(&mut self, blob: &[u8]) -> bool {
        let mut off = 0usize;
        for stage in &mut self.stages {
            if blob.len() < off + 4 {
                return false;
            }
            let len = u32::from_le_bytes(blob[off..off + 4].try_into().expect("4 bytes")) as usize;
            off += 4;
            if blob.len() < off + len {
                return false;
            }
            if !stage.restore_state(&blob[off..off + len]) {
                return false;
            }
            off += len;
        }
        off == blob.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dissent::DissentNet;
    use crate::incognito::Incognito;
    use crate::tor::{TorClient, TorDirectory};
    use nymix_sim::Rng;

    fn tor() -> TorClient {
        let dir = TorDirectory::generate(3, 100);
        let mut rng = Rng::seed_from(1);
        let mut t = TorClient::bootstrap(&dir, &mut rng);
        t.build_circuit(&dir, &mut rng).unwrap();
        t
    }

    #[test]
    fn tor_over_dissent_composes_costs() {
        let chain = SerialChain::new(vec![
            Box::new(tor()),
            Box::new(DissentNet::new(4, 3, 64, 9)),
        ]);
        assert_eq!(chain.len(), 2);
        let cost = chain.transfer_cost();
        // 1.12 * 1.30 - 1 = 0.456.
        assert!((cost.byte_overhead - 0.456).abs() < 1e-9);
        assert!(cost.rate_cap.is_finite());
        let tor_only = tor().transfer_cost().connect_latency;
        assert!(cost.connect_latency > tor_only);
        assert!(chain.hides_source());
    }

    #[test]
    fn exit_is_last_stage() {
        let chain = SerialChain::new(vec![
            Box::new(tor()),
            Box::new(DissentNet::new(4, 3, 64, 9)),
        ]);
        let exit = chain.exit_address(Ip::parse("203.0.113.9"));
        assert_eq!(exit, Ip([198, 19, 0, 1])); // Dissent's servers.
    }

    #[test]
    fn incognito_inside_chain_still_hides_if_outer_hides() {
        let chain = SerialChain::new(vec![Box::new(Incognito::new()), Box::new(tor())]);
        assert!(chain.hides_source());
        // But DNS safety is the *innermost* stage's property.
        assert!(!chain.remote_dns());
    }

    #[test]
    fn startup_concatenates_stages() {
        let chain = SerialChain::new(vec![Box::new(tor()), Box::new(Incognito::new())]);
        let phases = chain.startup_phases(true);
        assert!(phases.iter().any(|p| p.label.contains("stage0[tor]")));
        assert!(phases.iter().any(|p| p.label.contains("stage1[incognito]")));
        let total = chain.startup_time(true);
        let parts = tor().startup_time(true) + Incognito::new().startup_time(true);
        assert_eq!(total, parts);
    }

    #[test]
    fn state_roundtrip_through_chain() {
        let mut chain = SerialChain::new(vec![Box::new(tor()), Box::new(Incognito::new())]);
        let blob = chain.save_state();
        assert!(chain.restore_state(&blob));
        assert!(!chain.restore_state(&blob[..blob.len() - 1]));
        assert!(!chain.restore_state(&[blob.clone(), vec![0u8; 3]].concat()));
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_rejected() {
        let _ = SerialChain::new(vec![]);
    }
}
