//! Pluggable anonymizers — the CommVM's contents.
//!
//! §3.3/§4.1: "Nymix treats the anonymizer as a pluggable module, and
//! offers the user a choice of several alternative anonymizers
//! pre-configured to address different security/performance tradeoffs."
//! The prototype ships Tor, Dissent, SWEET, and a lightweight incognito
//! (NAT) mode, and supports combining anonymizers in serial.
//!
//! Each anonymizer implements the [`Anonymizer`] trait: a startup plan
//! (what Figure 7's "Start Tor" phase measures), a transfer cost model
//! (Figure 5's ~12% Tor overhead), an exit-address/linkability contract
//! (what the §5.1 leak analysis checks), and optional persistent state
//! (Tor entry guards — the §3.5 security argument for quasi-persistent
//! nyms).
//!
//! Modules:
//!
//! * [`api`] — the trait and shared request/cost types.
//! * [`tor`] — onion routing: directory, guards, 3-hop circuits, layered
//!   cell encryption (real ChaCha20 layers), guard persistence.
//! * [`dissent`] — an anytrust DC-net with XOR ciphertexts and verified
//!   message recovery.
//! * [`incognito`] — the NAT-based incognito mode (weak, fast).
//! * [`sweet`] — the email-tunnel transport.
//! * [`chain`] — serial composition ("best of both worlds", §3.3).
//! * [`stegotorus`] — the StegoTorus camouflage transport (§4).
//! * [`socks`] — the RFC 1928 SOCKS5 codec the AnonVM browser speaks
//!   to the CommVM (§4.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod chain;
pub mod dissent;
pub mod incognito;
pub mod socks;
pub mod stegotorus;
pub mod sweet;
pub mod tor;

pub use api::{Anonymizer, AnonymizerKind, StartupPhase, TransferCost};
pub use chain::SerialChain;
pub use dissent::DissentNet;
pub use incognito::Incognito;
pub use stegotorus::{Chopper, CoverProtocol, StegoTorus};
pub use sweet::Sweet;
pub use tor::{TorClient, TorDirectory, TorState};
