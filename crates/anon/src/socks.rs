//! SOCKS5 (RFC 1928) message codec.
//!
//! §4.1: "Nymix has the necessary configuration to support anonymizers,
//! circumvention tools, and other communication tools that use either a
//! SOCKS or virtual network interfaces." The AnonVM's browser speaks
//! SOCKS5 to the CommVM's anonymizer (Chromium is launched with
//! `--proxy=socks5://10.0.2.2:9050`); this module implements the wire
//! messages of the handshake and CONNECT request so that path carries
//! real, parseable bytes.

use nymix_net::Ip;

/// SOCKS protocol version byte.
pub const VERSION: u8 = 0x05;

/// Authentication methods (we support NO AUTH, as tor does locally).
pub const METHOD_NO_AUTH: u8 = 0x00;
const METHOD_NO_ACCEPTABLE: u8 = 0xFF;

/// A CONNECT destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocksAddr {
    /// IPv4 literal.
    V4(Ip),
    /// Domain name (resolved remotely — the leak-free path; Tor's
    /// SOCKS interface resolves names at the exit).
    Domain(String),
}

/// Reply codes (RFC 1928 §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyCode {
    /// Succeeded.
    Succeeded = 0x00,
    /// General failure.
    GeneralFailure = 0x01,
    /// Network unreachable.
    NetworkUnreachable = 0x03,
    /// Host unreachable.
    HostUnreachable = 0x04,
    /// TTL expired.
    TtlExpired = 0x06,
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocksError {
    /// Input ended early.
    Truncated,
    /// Wrong version byte.
    BadVersion(u8),
    /// Server offered no acceptable method.
    NoAcceptableMethod,
    /// Unknown address type.
    BadAddressType(u8),
    /// Malformed domain string.
    BadDomain,
}

impl core::fmt::Display for SocksError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SocksError::Truncated => write!(f, "socks message truncated"),
            SocksError::BadVersion(v) => write!(f, "bad socks version {v:#x}"),
            SocksError::NoAcceptableMethod => write!(f, "no acceptable auth method"),
            SocksError::BadAddressType(t) => write!(f, "bad address type {t:#x}"),
            SocksError::BadDomain => write!(f, "malformed domain"),
        }
    }
}

impl std::error::Error for SocksError {}

/// Encodes the client method-selection greeting.
pub fn encode_greeting() -> Vec<u8> {
    vec![VERSION, 1, METHOD_NO_AUTH]
}

/// Parses the server's method selection; returns the chosen method.
pub fn parse_method_selection(bytes: &[u8]) -> Result<u8, SocksError> {
    if bytes.len() < 2 {
        return Err(SocksError::Truncated);
    }
    if bytes[0] != VERSION {
        return Err(SocksError::BadVersion(bytes[0]));
    }
    if bytes[1] == METHOD_NO_ACCEPTABLE {
        return Err(SocksError::NoAcceptableMethod);
    }
    Ok(bytes[1])
}

/// Encodes a CONNECT request.
pub fn encode_connect(dest: &SocksAddr, port: u16) -> Vec<u8> {
    let mut out = vec![VERSION, 0x01 /* CONNECT */, 0x00 /* RSV */];
    match dest {
        SocksAddr::V4(ip) => {
            out.push(0x01);
            out.extend_from_slice(&ip.0);
        }
        SocksAddr::Domain(name) => {
            out.push(0x03);
            out.push(name.len() as u8);
            out.extend_from_slice(name.as_bytes());
        }
    }
    out.extend_from_slice(&port.to_be_bytes());
    out
}

/// Parses a CONNECT request; returns `(dest, port)`.
pub fn parse_connect(bytes: &[u8]) -> Result<(SocksAddr, u16), SocksError> {
    if bytes.len() < 4 {
        return Err(SocksError::Truncated);
    }
    if bytes[0] != VERSION {
        return Err(SocksError::BadVersion(bytes[0]));
    }
    let (addr, rest) = match bytes[3] {
        0x01 => {
            if bytes.len() < 8 {
                return Err(SocksError::Truncated);
            }
            (
                SocksAddr::V4(Ip([bytes[4], bytes[5], bytes[6], bytes[7]])),
                &bytes[8..],
            )
        }
        0x03 => {
            if bytes.len() < 5 {
                return Err(SocksError::Truncated);
            }
            let len = bytes[4] as usize;
            if bytes.len() < 5 + len {
                return Err(SocksError::Truncated);
            }
            let name =
                core::str::from_utf8(&bytes[5..5 + len]).map_err(|_| SocksError::BadDomain)?;
            (SocksAddr::Domain(name.to_string()), &bytes[5 + len..])
        }
        t => return Err(SocksError::BadAddressType(t)),
    };
    if rest.len() < 2 {
        return Err(SocksError::Truncated);
    }
    Ok((addr, u16::from_be_bytes([rest[0], rest[1]])))
}

/// Encodes a server reply with a bind address of 0.0.0.0:0 (as tor
/// does).
pub fn encode_reply(code: ReplyCode) -> Vec<u8> {
    let mut out = vec![VERSION, code as u8, 0x00, 0x01];
    out.extend_from_slice(&[0, 0, 0, 0, 0, 0]);
    out
}

/// Parses a server reply; returns the code.
pub fn parse_reply(bytes: &[u8]) -> Result<ReplyCode, SocksError> {
    if bytes.len() < 2 {
        return Err(SocksError::Truncated);
    }
    if bytes[0] != VERSION {
        return Err(SocksError::BadVersion(bytes[0]));
    }
    Ok(match bytes[1] {
        0x00 => ReplyCode::Succeeded,
        0x03 => ReplyCode::NetworkUnreachable,
        0x04 => ReplyCode::HostUnreachable,
        0x06 => ReplyCode::TtlExpired,
        _ => ReplyCode::GeneralFailure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_roundtrip() {
        let greeting = encode_greeting();
        assert_eq!(greeting, vec![0x05, 0x01, 0x00]);
        assert_eq!(
            parse_method_selection(&[0x05, 0x00]).unwrap(),
            METHOD_NO_AUTH
        );
        assert_eq!(
            parse_method_selection(&[0x05, 0xFF]),
            Err(SocksError::NoAcceptableMethod)
        );
        assert_eq!(
            parse_method_selection(&[0x04, 0x00]),
            Err(SocksError::BadVersion(0x04))
        );
    }

    #[test]
    fn connect_domain_roundtrip() {
        // The leak-free form: the name goes to the anonymizer, not to
        // a local resolver.
        let req = encode_connect(&SocksAddr::Domain("twitter.com".into()), 443);
        let (addr, port) = parse_connect(&req).unwrap();
        assert_eq!(addr, SocksAddr::Domain("twitter.com".into()));
        assert_eq!(port, 443);
    }

    #[test]
    fn connect_ipv4_roundtrip() {
        let ip = Ip::parse("198.51.100.11");
        let req = encode_connect(&SocksAddr::V4(ip), 80);
        let (addr, port) = parse_connect(&req).unwrap();
        assert_eq!(addr, SocksAddr::V4(ip));
        assert_eq!(port, 80);
    }

    #[test]
    fn connect_rejects_malformed() {
        assert_eq!(parse_connect(&[0x05, 0x01]), Err(SocksError::Truncated));
        let mut req = encode_connect(&SocksAddr::Domain("x.com".into()), 1);
        req[0] = 0x04;
        assert_eq!(parse_connect(&req), Err(SocksError::BadVersion(0x04)));
        assert_eq!(
            parse_connect(&[0x05, 0x01, 0x00, 0x02, 0, 0]),
            Err(SocksError::BadAddressType(0x02))
        );
        let truncated = encode_connect(&SocksAddr::Domain("example.org".into()), 443);
        assert_eq!(
            parse_connect(&truncated[..truncated.len() - 3]),
            Err(SocksError::Truncated)
        );
    }

    #[test]
    fn reply_roundtrip() {
        for code in [
            ReplyCode::Succeeded,
            ReplyCode::NetworkUnreachable,
            ReplyCode::HostUnreachable,
            ReplyCode::TtlExpired,
        ] {
            let bytes = encode_reply(code);
            assert_eq!(parse_reply(&bytes).unwrap(), code);
            assert_eq!(bytes.len(), 10);
        }
        assert_eq!(
            parse_reply(&[0x05, 0x5A]).unwrap(),
            ReplyCode::GeneralFailure
        );
        assert_eq!(parse_reply(&[0x05]), Err(SocksError::Truncated));
    }
}
