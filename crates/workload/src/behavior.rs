//! Typical user behaviours on a page.
//!
//! §5.2: "Where applicable, we signed into Web sites and simulated some
//! typical user behaviors, such as reading the latest news." Behaviours
//! matter to the resource model because they differ in what they write
//! (drafts, uploads, downloads) and how much CPU/network they burn
//! beyond the page load.

use nymix_fs::Path;
use nymix_sim::SimDuration;

use crate::browser::BrowserSession;
use crate::sites::Site;

/// A scripted user action inside a loaded page.
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// Scroll through the latest items (network: incremental fetches).
    ReadLatestNews,
    /// Compose and submit a post of `len` characters (writes a draft,
    /// uploads a small body).
    Post(usize),
    /// Upload an attachment of `bytes` (e.g. Bob's scrubbed photo).
    Upload(u64),
    /// Download an attachment of `bytes`.
    Download(u64),
}

/// Resource cost of one behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorCost {
    /// Bytes fetched.
    pub down_bytes: u64,
    /// Bytes sent.
    pub up_bytes: u64,
    /// Interactive CPU time.
    pub cpu: SimDuration,
}

impl Behavior {
    /// The behaviour's resource cost on `site`.
    pub fn cost(&self, site: Site) -> BehaviorCost {
        let profile = site.profile();
        match self {
            Behavior::ReadLatestNews => BehaviorCost {
                down_bytes: profile.revisit_cache_growth / 2,
                up_bytes: 4_096,
                cpu: SimDuration::from_millis(2_500),
            },
            Behavior::Post(len) => BehaviorCost {
                down_bytes: 16_384,
                up_bytes: *len as u64 + 2_048,
                cpu: SimDuration::from_millis(800),
            },
            Behavior::Upload(bytes) => BehaviorCost {
                down_bytes: 8_192,
                up_bytes: *bytes + 4_096,
                cpu: SimDuration::from_millis(400),
            },
            Behavior::Download(bytes) => BehaviorCost {
                down_bytes: *bytes,
                up_bytes: 2_048,
                cpu: SimDuration::from_millis(300),
            },
        }
    }

    /// Executes the behaviour's client-side effects in the browser
    /// (drafts, downloaded files); returns the cost.
    pub fn perform(&self, session: &mut BrowserSession<'_>, site: Site) -> BehaviorCost {
        let cost = self.cost(site);
        match self {
            Behavior::Post(len) => {
                session.write_profile_file(
                    &Path::new(&format!(
                        "/home/user/.config/chromium/drafts/{}",
                        site.profile().domain
                    )),
                    vec![b'x'; *len / session.scale() as usize + 1],
                );
            }
            Behavior::Download(bytes) => {
                session.write_profile_file(
                    &Path::new("/home/user/Downloads/attachment.bin"),
                    vec![0xD0; (*bytes / session.scale()).max(1) as usize],
                );
            }
            Behavior::ReadLatestNews | Behavior::Upload(_) => {}
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymix_fs::Layer;
    use nymix_sim::Rng;
    use nymix_vmm::{Vm, VmConfig, VmId};

    fn vm() -> Vm {
        let mut vm = Vm::new(
            VmId(1),
            VmConfig::anonvm(),
            nymix_fs::BaseImage::minimal().to_layer(),
            Layer::new(nymix_fs::LayerKind::Config),
        );
        vm.boot(0.05, 0.3);
        vm
    }

    #[test]
    fn costs_scale_with_site_and_kind() {
        let read_fb = Behavior::ReadLatestNews.cost(Site::Facebook);
        let read_tb = Behavior::ReadLatestNews.cost(Site::TorBlog);
        assert!(read_fb.down_bytes > read_tb.down_bytes);
        let up = Behavior::Upload(1_000_000).cost(Site::Twitter);
        assert!(up.up_bytes > up.down_bytes);
        let down = Behavior::Download(1_000_000).cost(Site::Twitter);
        assert!(down.down_bytes > down.up_bytes);
    }

    #[test]
    fn post_leaves_a_draft() {
        let mut vm = vm();
        {
            let mut session = BrowserSession::new(&mut vm, Rng::seed_from(1), 64);
            session.visit(Site::Twitter);
            Behavior::Post(280).perform(&mut session, Site::Twitter);
        }
        assert!(vm
            .disk()
            .exists(&Path::new("/home/user/.config/chromium/drafts/twitter.com")));
    }

    #[test]
    fn download_lands_in_downloads() {
        let mut vm = vm();
        {
            let mut session = BrowserSession::new(&mut vm, Rng::seed_from(2), 64);
            session.visit(Site::Gmail);
            Behavior::Download(500_000).perform(&mut session, Site::Gmail);
        }
        assert!(vm
            .disk()
            .exists(&Path::new("/home/user/Downloads/attachment.bin")));
    }
}
