//! Synthetic workloads reproducing the paper's evaluation inputs.
//!
//! The evaluation (§5) drives Nymix with: interactive visits to eight
//! real websites (Gmail, Twitter, Youtube, Tor Blog, BBC, Facebook,
//! Slashdot, ESPN), the Peacekeeper JavaScript CPU benchmark, and bulk
//! downloads of linux-3.14.2. None of those exist inside a simulation,
//! so this crate models their *resource behaviour*:
//!
//! * [`sites`] — per-site profiles: page weight, cache/cookie growth
//!   per visit, login state, memory dirtying. Calibrated so Figure 6's
//!   archive-size trajectories come out at the paper's magnitudes.
//! * [`browser`] — a Chromium-like session over a VM: writes real cache
//!   bytes into the AnonVM's writable layer (cap 83 MB, the Chromium
//!   default the paper cites), stores credentials, dirties guest
//!   memory, and can be *stained* (evercookie injection) to test
//!   amnesia.
//! * [`peacekeeper`] — the CPU benchmark as core-seconds of work with
//!   score calibration (Figure 4).
//! * [`download`] — the bulk-transfer workload (Figure 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod browser;
pub mod download;
pub mod peacekeeper;
pub mod sites;

pub use behavior::{Behavior, BehaviorCost};
pub use browser::{BrowserSession, BrowserState, CACHE_CAP_BYTES};
pub use download::DownloadSpec;
pub use peacekeeper::{peacekeeper_score, PEACEKEEPER_WORK};
pub use sites::{Site, SiteProfile};
