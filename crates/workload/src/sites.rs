//! Per-site behaviour profiles.
//!
//! §5.2 visits "Gmail, Twitter, Youtube, Tor Blog, BBC, Facebook,
//! Slashdot, and ESPN. Where applicable, we signed into Web sites and
//! simulated some typical user behaviors". §5.3 grows four persistent
//! nyms against Twitter, Facebook, Gmail, and the Tor Blog; "much of
//! [the growth] is dominated by contents in Chromium cache".
//!
//! Profiles are calibrated so the Figure 6 trajectories land at the
//! paper's magnitudes (tens of MB after ten save/restore cycles,
//! Facebook heaviest, Tor Blog lightest).

/// The eight evaluation sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// gmail.com (login).
    Gmail,
    /// twitter.com (login).
    Twitter,
    /// youtube.com.
    Youtube,
    /// blog.torproject.org.
    TorBlog,
    /// bbc.co.uk.
    Bbc,
    /// facebook.com (login).
    Facebook,
    /// slashdot.org.
    Slashdot,
    /// espn.com.
    Espn,
}

impl Site {
    /// The §5.2 visit order (one new site per added nym).
    pub const VISIT_ORDER: [Site; 8] = [
        Site::Gmail,
        Site::Twitter,
        Site::Youtube,
        Site::TorBlog,
        Site::Bbc,
        Site::Facebook,
        Site::Slashdot,
        Site::Espn,
    ];

    /// The four §5.3 storage-experiment sites.
    pub const STORAGE_SITES: [Site; 4] =
        [Site::Gmail, Site::Facebook, Site::Twitter, Site::TorBlog];

    /// The site's behaviour profile.
    pub fn profile(self) -> SiteProfile {
        match self {
            Site::Gmail => SiteProfile {
                domain: "gmail.com",
                login: true,
                page_weight: 2_600_000,
                first_visit_cache: 9_000_000,
                revisit_cache_growth: 4_200_000,
                compressible_fraction: 0.55,
                cookie_bytes: 9_000,
                memory_dirty_mib: 55,
            },
            Site::Twitter => SiteProfile {
                domain: "twitter.com",
                login: true,
                page_weight: 1_900_000,
                first_visit_cache: 6_000_000,
                revisit_cache_growth: 2_600_000,
                compressible_fraction: 0.45,
                cookie_bytes: 7_000,
                memory_dirty_mib: 45,
            },
            Site::Youtube => SiteProfile {
                domain: "youtube.com",
                login: false,
                page_weight: 3_400_000,
                first_visit_cache: 14_000_000,
                revisit_cache_growth: 8_000_000,
                compressible_fraction: 0.15,
                cookie_bytes: 4_000,
                memory_dirty_mib: 80,
            },
            Site::TorBlog => SiteProfile {
                domain: "blog.torproject.org",
                login: false,
                page_weight: 700_000,
                first_visit_cache: 1_600_000,
                revisit_cache_growth: 700_000,
                compressible_fraction: 0.75,
                cookie_bytes: 1_200,
                memory_dirty_mib: 20,
            },
            Site::Bbc => SiteProfile {
                domain: "bbc.co.uk",
                login: false,
                page_weight: 2_100_000,
                first_visit_cache: 7_500_000,
                revisit_cache_growth: 3_000_000,
                compressible_fraction: 0.40,
                cookie_bytes: 5_000,
                memory_dirty_mib: 40,
            },
            Site::Facebook => SiteProfile {
                domain: "facebook.com",
                login: true,
                page_weight: 2_800_000,
                first_visit_cache: 11_000_000,
                revisit_cache_growth: 5_400_000,
                compressible_fraction: 0.40,
                cookie_bytes: 12_000,
                memory_dirty_mib: 60,
            },
            Site::Slashdot => SiteProfile {
                domain: "slashdot.org",
                login: false,
                page_weight: 1_200_000,
                first_visit_cache: 3_000_000,
                revisit_cache_growth: 1_200_000,
                compressible_fraction: 0.70,
                cookie_bytes: 2_500,
                memory_dirty_mib: 25,
            },
            Site::Espn => SiteProfile {
                domain: "espn.com",
                login: false,
                page_weight: 2_500_000,
                first_visit_cache: 8_000_000,
                revisit_cache_growth: 3_600_000,
                compressible_fraction: 0.35,
                cookie_bytes: 4_500,
                memory_dirty_mib: 45,
            },
        }
    }
}

/// Behavioural parameters of one site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteProfile {
    /// DNS name.
    pub domain: &'static str,
    /// Whether the experiment signs in and stores credentials.
    pub login: bool,
    /// Bytes fetched to render the landing page (Figure 7's "Load
    /// webpage" phase).
    pub page_weight: u64,
    /// Cache bytes written on the first visit.
    pub first_visit_cache: u64,
    /// Additional cache bytes per subsequent visit ("triggering a fetch
    /// of any new site updates", §5.3).
    pub revisit_cache_growth: u64,
    /// Fraction of cache content that is compressible text/markup (the
    /// rest models already-compressed media).
    pub compressible_fraction: f64,
    /// Cookie-jar bytes after login/visit.
    pub cookie_bytes: u64,
    /// Guest memory dirtied by rendering, MiB (drives Figure 3's
    /// before/after gap).
    pub memory_dirty_mib: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sites_have_profiles() {
        for site in Site::VISIT_ORDER {
            let p = site.profile();
            assert!(!p.domain.is_empty());
            assert!(p.page_weight > 0);
            assert!((0.0..=1.0).contains(&p.compressible_fraction));
        }
    }

    #[test]
    fn storage_sites_ordering_matches_paper() {
        // Facebook grows fastest, Tor Blog slowest (Figure 6).
        let growth = |s: Site| s.profile().revisit_cache_growth;
        assert!(growth(Site::Facebook) > growth(Site::Gmail));
        assert!(growth(Site::Gmail) > growth(Site::Twitter));
        assert!(growth(Site::Twitter) > growth(Site::TorBlog));
    }

    #[test]
    fn login_sites_match_paper() {
        assert!(Site::Gmail.profile().login);
        assert!(Site::Twitter.profile().login);
        assert!(Site::Facebook.profile().login);
        assert!(!Site::TorBlog.profile().login);
    }
}
