//! The Peacekeeper CPU benchmark model (Figure 4).
//!
//! Peacekeeper is a single-threaded JavaScript benchmark; its score is
//! inversely proportional to how long the work takes. The model runs a
//! fixed number of core-seconds on the [`nymix_vmm::CpuHost`] and
//! converts elapsed time to a score, calibrated so the native run
//! scores ≈3000 and a single virtualized nymbox ≈2400 (the "about a
//! 20% overhead" of §5.2).

use nymix_vmm::CpuHost;

/// Native core-seconds of work one Peacekeeper run performs.
pub const PEACEKEEPER_WORK: f64 = 30.0;

/// Score calibration constant: `score = SCALE / elapsed_seconds`.
pub const SCORE_SCALE: f64 = 90_000.0;

/// Converts an elapsed wall-clock duration into a Peacekeeper score.
pub fn peacekeeper_score(elapsed_seconds: f64) -> f64 {
    assert!(elapsed_seconds > 0.0, "elapsed time must be positive");
    SCORE_SCALE / elapsed_seconds
}

/// Runs `n` simultaneous virtualized Peacekeeper instances on `cpu`
/// and returns their individual scores. With `n == 0`, runs a single
/// *native* instance (the Figure 4 x=0 point).
pub fn run_parallel(cpu: &mut CpuHost, n: usize) -> Vec<f64> {
    if n == 0 {
        let mut host = CpuHost::new(cpu.cores(), cpu.ht_uplift(), 0.0);
        host.submit_native(nymix_sim::SimTime::ZERO, PEACEKEEPER_WORK);
        let t = host
            .next_completion(nymix_sim::SimTime::ZERO)
            .expect("job running")
            .as_secs_f64();
        return vec![peacekeeper_score(t)];
    }
    cpu.run_batch_virtualized(PEACEKEEPER_WORK, n)
        .into_iter()
        .map(peacekeeper_score)
        .collect()
}

/// Figure 4's "Expected" curve: the single-nym score extrapolated to
/// `n` instances sharing the physical cores perfectly (no HT uplift,
/// no overlap benefit).
pub fn expected_score(single_nym_score: f64, cores: f64, n: usize) -> f64 {
    if n == 0 {
        return single_nym_score;
    }
    single_nym_score * (cores / n as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_score_calibration() {
        let mut cpu = CpuHost::paper_testbed();
        let native = run_parallel(&mut cpu, 0);
        assert_eq!(native.len(), 1);
        assert!((native[0] - 3000.0).abs() < 1.0, "native {}", native[0]);
    }

    #[test]
    fn single_nym_shows_20_percent_overhead() {
        let mut cpu = CpuHost::paper_testbed();
        let scores = run_parallel(&mut cpu, 1);
        assert_eq!(scores.len(), 1);
        assert!((scores[0] - 2400.0).abs() < 1.0, "virt {}", scores[0]);
        let native = run_parallel(&mut CpuHost::paper_testbed(), 0)[0];
        let overhead = 1.0 - scores[0] / native;
        assert!((overhead - 0.20).abs() < 0.01, "overhead {overhead}");
    }

    #[test]
    fn four_nyms_hold_per_nym_score() {
        let mut cpu = CpuHost::paper_testbed();
        let scores = run_parallel(&mut cpu, 4);
        for s in &scores {
            assert!((s - 2400.0).abs() < 1.0, "score {s}");
        }
    }

    #[test]
    fn eight_nyms_beat_the_naive_expectation() {
        let mut cpu = CpuHost::paper_testbed();
        let actual = run_parallel(&mut cpu, 8);
        let single = 2400.0;
        let expected = expected_score(single, 4.0, 8); // 1200
        assert!((expected - 1200.0).abs() < 1e-9);
        for s in &actual {
            assert!(
                *s > expected,
                "actual {s} should beat expected {expected} (HT overlap)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_elapsed_rejected() {
        let _ = peacekeeper_score(0.0);
    }
}
