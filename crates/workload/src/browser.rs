//! A Chromium-like browser session over an AnonVM.
//!
//! Visits write *real bytes* into the VM's writable layer — cache
//! objects with a per-site compressibility mix, a cookie jar, stored
//! credentials — so the quasi-persistence pipeline (archive → LZSS →
//! AEAD → cloud) measures honest sizes for Figure 6. The Chromium cache
//! cap is the 83 MB default the paper cites (§5.3); eviction is
//! oldest-first.
//!
//! The browser also models the attacks Nymix's amnesia defeats:
//! [`BrowserSession::inject_stain`] plants an evercookie-style stain
//! (\[38\], §3.3), which tests then show does not survive an ephemeral
//! nym but does survive a persistent one.

use nymix_fs::Path;
use nymix_sim::Rng;
use nymix_vmm::Vm;

use crate::sites::Site;

/// Chromium's default cache cap: 83 MB (§5.3).
pub const CACHE_CAP_BYTES: u64 = 83 * 1_000_000;

/// Where the profile lives in the AnonVM.
const PROFILE_DIR: &str = "/home/user/.config/chromium";
const CACHE_DIR: &str = "/home/user/.cache/chromium";

/// A browsing session bound to one AnonVM.
///
/// `scale` divides all written byte counts (and multiplies reported
/// sizes back) so debug-mode tests stay fast while the bench harness
/// can run near 1:1; compression ratios are scale-invariant because
/// content is generated with the same mix at any scale.
#[derive(Debug)]
pub struct BrowserSession<'a> {
    vm: &'a mut Vm,
    rng: Rng,
    scale: u64,
    cache_seq: u64,
    cache_bytes: u64, // unscaled (logical) bytes currently cached
    visits: u32,
    /// Reused by the cache-eviction sweep so repeated walks over the
    /// cache tree don't reallocate the path list.
    walk_scratch: Vec<Path>,
}

/// Suspended browser-session state: everything needed to resume the
/// same session later (or in a restored nym). Serializable so it can
/// ride inside a nym archive.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowserState {
    rng_state: [u64; 4],
    scale: u64,
    cache_seq: u64,
    cache_bytes: u64,
    visits: u32,
}

impl BrowserState {
    /// A fresh (never-browsed) state.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn fresh(rng: Rng, scale: u64) -> Self {
        assert!(scale > 0, "scale must be positive");
        Self {
            rng_state: rng.state(),
            scale,
            cache_seq: 0,
            cache_bytes: 0,
            visits: 0,
        }
    }

    /// Serializes the state (60 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(60);
        for w in self.rng_state {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.scale.to_le_bytes());
        out.extend_from_slice(&self.cache_seq.to_le_bytes());
        out.extend_from_slice(&self.cache_bytes.to_le_bytes());
        out.extend_from_slice(&self.visits.to_le_bytes());
        out
    }

    /// Parses a serialized state.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 60 {
            return None;
        }
        let w = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
        Some(Self {
            rng_state: [w(0), w(8), w(16), w(24)],
            scale: w(32),
            cache_seq: w(40),
            cache_bytes: w(48),
            visits: u32::from_le_bytes(bytes[56..60].try_into().expect("4 bytes")),
        })
    }
}

impl<'a> BrowserSession<'a> {
    /// Opens a session on `vm`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn new(vm: &'a mut Vm, rng: Rng, scale: u64) -> Self {
        assert!(scale > 0, "scale must be positive");
        Self {
            vm,
            rng,
            scale,
            cache_seq: 0,
            cache_bytes: 0,
            visits: 0,
            walk_scratch: Vec::new(),
        }
    }

    /// Resumes a suspended session on `vm`.
    pub fn resume(vm: &'a mut Vm, state: BrowserState) -> Self {
        Self {
            vm,
            rng: Rng::from_state(state.rng_state),
            scale: state.scale,
            cache_seq: state.cache_seq,
            cache_bytes: state.cache_bytes,
            visits: state.visits,
            walk_scratch: Vec::new(),
        }
    }

    /// Suspends the session, releasing the VM borrow.
    pub fn suspend(self) -> BrowserState {
        BrowserState {
            rng_state: self.rng.state(),
            scale: self.scale,
            cache_seq: self.cache_seq,
            cache_bytes: self.cache_bytes,
            visits: self.visits,
        }
    }

    /// Logical (unscaled) cache bytes currently stored.
    pub fn cache_bytes(&self) -> u64 {
        self.cache_bytes
    }

    /// The byte-scale divisor this session runs with.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Writes an arbitrary profile-area file (drafts, downloads) —
    /// used by scripted behaviours.
    pub fn write_profile_file(&mut self, path: &Path, data: Vec<u8>) {
        self.vm
            .disk_mut()
            .write(path, data)
            .expect("writable browser profile");
    }

    /// Number of visits performed.
    pub fn visits(&self) -> u32 {
        self.visits
    }

    /// Visits `site`: fetches the page, grows the cache, stores
    /// cookies (and credentials on login sites), dirties guest memory.
    /// Returns the logical bytes fetched over the network.
    pub fn visit(&mut self, site: Site) -> u64 {
        let profile = site.profile();
        let first = !self.has_profile_for(profile.domain);
        let cache_add = if first {
            profile.first_visit_cache
        } else {
            profile.revisit_cache_growth
        };
        self.write_cache_objects(site, cache_add, profile.compressible_fraction);
        self.write_cookies(profile.domain, profile.cookie_bytes);
        if profile.login {
            self.store_credentials(profile.domain);
        }
        self.vm.dirty_memory_mib(profile.memory_dirty_mib);
        self.visits += 1;
        profile.page_weight + cache_add
    }

    /// Whether credentials for `domain` are stored ("configure the
    /// browser to remember login information", §5.3).
    pub fn has_credentials(&self, domain: &str) -> bool {
        self.vm
            .disk()
            .exists(&Path::new(&format!("{PROFILE_DIR}/logins/{domain}")))
    }

    /// Plants an evercookie-style stain: redundant identifiers in
    /// cache, cookies, and local storage (§3.3, \[38\]).
    pub fn inject_stain(&mut self, marker: &str) {
        for place in [
            format!("{CACHE_DIR}/stain-{marker}"),
            format!("{PROFILE_DIR}/Local Storage/stain-{marker}"),
            format!("{PROFILE_DIR}/cookies-stain-{marker}"),
        ] {
            self.vm
                .disk_mut()
                .write(&Path::new(&place), marker.as_bytes().to_vec())
                .expect("writable browser profile");
        }
    }

    /// Whether any stain marker survives in this VM's visible disk.
    pub fn has_stain(&self, marker: &str) -> bool {
        self.vm
            .disk()
            .walk_files(&Path::new("/home/user"))
            .iter()
            .any(|p| p.to_string().contains(&format!("stain-{marker}")))
    }

    fn has_profile_for(&self, domain: &str) -> bool {
        self.vm
            .disk()
            .exists(&Path::new(&format!("{PROFILE_DIR}/site-{domain}")))
    }

    fn write_cookies(&mut self, domain: &str, bytes: u64) {
        let scaled = (bytes / self.scale).max(16) as usize;
        let mut jar = format!("# cookies for {domain}\n").into_bytes();
        while jar.len() < scaled {
            jar.extend_from_slice(
                format!(
                    "session={:016x}; tracking={:016x};\n",
                    self.rng.next_u64(),
                    self.rng.next_u64()
                )
                .as_bytes(),
            );
        }
        self.vm
            .disk_mut()
            .write(&Path::new(&format!("{PROFILE_DIR}/cookies/{domain}")), jar)
            .expect("writable profile");
        self.vm
            .disk_mut()
            .write(
                &Path::new(&format!("{PROFILE_DIR}/site-{domain}")),
                b"seen".to_vec(),
            )
            .expect("writable profile");
    }

    fn store_credentials(&mut self, domain: &str) {
        let cred = format!("user=nym-user;pass=correct-horse-{domain}");
        self.vm
            .disk_mut()
            .write(
                &Path::new(&format!("{PROFILE_DIR}/logins/{domain}")),
                cred.into_bytes(),
            )
            .expect("writable profile");
    }

    /// Writes `logical_bytes` of cache content as ~64 KiB objects with
    /// the given compressible fraction, then enforces the cache cap.
    fn write_cache_objects(&mut self, site: Site, logical_bytes: u64, compressible: f64) {
        let scaled_total = (logical_bytes / self.scale).max(64);
        let object_size = (65_536 / self.scale).max(64) as usize;
        let mut written = 0usize;
        while (written as u64) < scaled_total {
            let take = object_size.min(scaled_total as usize - written);
            let body = self.cache_object_body(take, compressible);
            let name = format!("{CACHE_DIR}/{:?}/obj-{:08}", site, self.cache_seq);
            self.cache_seq += 1;
            self.vm
                .disk_mut()
                .write(&Path::new(&name), body)
                .expect("writable cache");
            written += take;
        }
        self.cache_bytes += logical_bytes;
        self.enforce_cap();
    }

    /// Content mix: a compressible HTML-ish template or incompressible
    /// keystream, chosen per object.
    fn cache_object_body(&mut self, len: usize, compressible: f64) -> Vec<u8> {
        if self.rng.chance(compressible) {
            let template = b"<div class=\"post\"><span>timeline entry</span></div>\n";
            let mut out = Vec::with_capacity(len);
            while out.len() < len {
                let take = template.len().min(len - out.len());
                out.extend_from_slice(&template[..take]);
            }
            out
        } else {
            let mut out = vec![0u8; len];
            self.rng.fill_bytes(&mut out);
            out
        }
    }

    /// Evicts oldest cache objects above the (scaled) cap.
    fn enforce_cap(&mut self) {
        if self.cache_bytes <= CACHE_CAP_BYTES {
            return;
        }
        // walk_files_into sorts, and obj-%08d sorts oldest-first within
        // a site dir; the path list reuses the session scratch buffer.
        let mut files = std::mem::take(&mut self.walk_scratch);
        self.vm
            .disk()
            .walk_files_into(&Path::new(CACHE_DIR), &mut files);
        for path in &files {
            if self.cache_bytes <= CACHE_CAP_BYTES {
                break;
            }
            if let Ok(data) = self.vm.disk().read(path) {
                let logical = data.len() as u64 * self.scale;
                if self.vm.disk_mut().unlink(path).is_ok() {
                    self.cache_bytes = self.cache_bytes.saturating_sub(logical);
                }
            }
        }
        self.walk_scratch = files;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymix_fs::Layer;
    use nymix_vmm::{VmConfig, VmId};

    fn vm() -> Vm {
        Vm::new(
            VmId(1),
            VmConfig::anonvm(),
            nymix_fs::BaseImage::minimal().to_layer(),
            Layer::new(nymix_fs::LayerKind::Config),
        )
    }

    #[test]
    fn visit_writes_cache_and_cookies() {
        let mut vm = vm();
        vm.boot(0.05, 0.3);
        let mut b = BrowserSession::new(&mut vm, Rng::seed_from(1), 64);
        let fetched = b.visit(Site::Twitter);
        assert!(fetched > 0);
        assert_eq!(b.visits(), 1);
        assert!(b.cache_bytes() >= Site::Twitter.profile().first_visit_cache);
        assert!(b.has_credentials("twitter.com"));
        assert!(vm.disk().upper_bytes() > 0);
    }

    #[test]
    fn revisits_grow_less_than_first_visit() {
        let mut vm = vm();
        vm.boot(0.05, 0.3);
        let mut b = BrowserSession::new(&mut vm, Rng::seed_from(2), 64);
        let first = b.visit(Site::Gmail);
        let after_first = b.cache_bytes();
        let second = b.visit(Site::Gmail);
        let growth = b.cache_bytes() - after_first;
        assert!(second < first);
        assert_eq!(growth, Site::Gmail.profile().revisit_cache_growth);
    }

    #[test]
    fn cache_cap_enforced() {
        let mut vm = vm();
        vm.boot(0.05, 0.3);
        let mut b = BrowserSession::new(&mut vm, Rng::seed_from(3), 256);
        // Youtube adds 8 MB/revisit; 30 visits exceed 83 MB logical.
        for _ in 0..30 {
            b.visit(Site::Youtube);
        }
        assert!(
            b.cache_bytes() <= CACHE_CAP_BYTES,
            "cache {} over cap",
            b.cache_bytes()
        );
    }

    #[test]
    fn stain_visible_until_wipe() {
        let mut vm = vm();
        vm.boot(0.05, 0.3);
        {
            let mut b = BrowserSession::new(&mut vm, Rng::seed_from(4), 64);
            b.visit(Site::Bbc);
            b.inject_stain("gchq-mullenize");
            assert!(b.has_stain("gchq-mullenize"));
        }
        // Ephemeral nym shutdown: stain gone with the writable layer.
        vm.shutdown();
        assert!(vm.disk().upper().is_none());
    }

    #[test]
    fn no_login_no_credentials() {
        let mut vm = vm();
        vm.boot(0.05, 0.3);
        let mut b = BrowserSession::new(&mut vm, Rng::seed_from(5), 64);
        b.visit(Site::TorBlog);
        assert!(!b.has_credentials("blog.torproject.org"));
    }

    #[test]
    fn memory_dirtied_by_visit() {
        let mut vm = vm();
        vm.boot(0.05, 0.3);
        let before = vm.memory().census().2;
        let mut b = BrowserSession::new(&mut vm, Rng::seed_from(6), 64);
        b.visit(Site::Facebook);
        let after = vm.memory().census().2;
        assert!(after > before, "browsing must dirty guest pages");
    }

    #[test]
    fn compressible_sites_compress_better() {
        // Tor Blog's cache (75% text) should compress much better than
        // Youtube's (15% text) — this drives Figure 6's per-site gaps.
        let measure = |site: Site, seed: u64| -> f64 {
            let mut vm = vm();
            vm.boot(0.05, 0.3);
            let mut b = BrowserSession::new(&mut vm, Rng::seed_from(seed), 64);
            b.visit(site);
            let mut blob = Vec::new();
            for p in vm.disk().walk_files(&Path::new(CACHE_DIR)) {
                blob.extend(vm.disk().read(&p).unwrap());
            }
            nymix_store::lzss::ratio(&blob)
        };
        let torblog = measure(Site::TorBlog, 7);
        let youtube = measure(Site::Youtube, 7);
        assert!(torblog < youtube, "torblog {torblog} youtube {youtube}");
    }
}
