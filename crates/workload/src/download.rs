//! The bulk-download workload (Figure 5).
//!
//! §5.2: "we download the current Linux kernel version 3.14.2, from a
//! server running within DeterLab in order to guarantee the 10 Mbit
//! download rate. We varied the number of parallel downloading nyms...
//! As we scale the number of nyms, the performance remains relatively
//! linear, indicating that Tor ... has a fixed cost, approximately 12%
//! overhead."

use nymix_net::flow::calib as netcal;
use nymix_net::{FlowNet, LinkId};
use nymix_sim::{SimDuration, SimTime};

use crate::sites::Site;

/// A bulk transfer specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownloadSpec {
    /// Payload bytes.
    pub bytes: f64,
    /// Byte inflation applied by the transport (e.g. Tor's 0.12).
    pub overhead: f64,
}

impl DownloadSpec {
    /// The linux-3.14.2 artifact.
    pub fn linux_kernel(overhead: f64) -> Self {
        Self {
            bytes: netcal::LINUX_KERNEL_BYTES,
            overhead,
        }
    }

    /// A site page-load transfer (Figure 7's final phase).
    pub fn page_load(site: Site, overhead: f64) -> Self {
        Self {
            bytes: site.profile().page_weight as f64,
            overhead,
        }
    }

    /// Bytes that actually cross the wire.
    pub fn wire_bytes(&self) -> f64 {
        self.bytes * (1.0 + self.overhead)
    }
}

/// Runs `n` identical parallel downloads over one shared access link
/// and returns each download's completion time in seconds.
pub fn run_parallel_downloads(spec: DownloadSpec, n: usize) -> Vec<f64> {
    let mut net = FlowNet::new();
    let access: LinkId = net.add_link(netcal::ACCESS_LINK_BPS, netcal::ACCESS_ONE_WAY);
    let flows: Vec<_> = (0..n)
        .map(|_| net.start_flow(SimTime::ZERO, vec![access], spec.wire_bytes()))
        .collect();
    let done = net.run_to_completion();
    flows.iter().map(|f| done[f].as_secs_f64()).collect()
}

/// The "Ideal" series of Figure 5: `n` parallel raw downloads with no
/// transport overhead.
pub fn ideal_time(bytes: f64, n: usize) -> f64 {
    n as f64 * bytes / netcal::ACCESS_LINK_BPS
        + SimDuration::from_micros(netcal::ACCESS_ONE_WAY.as_micros()).as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_download_near_ideal_plus_overhead() {
        let spec = DownloadSpec::linux_kernel(netcal::TOR_BYTE_OVERHEAD);
        let t = run_parallel_downloads(spec, 1)[0];
        let ideal = ideal_time(netcal::LINUX_KERNEL_BYTES, 1);
        let ratio = t / ideal;
        assert!((ratio - 1.12).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn scaling_is_linear() {
        let spec = DownloadSpec::linux_kernel(netcal::TOR_BYTE_OVERHEAD);
        let t1 = run_parallel_downloads(spec, 1)[0];
        for n in [2usize, 4, 8] {
            let tn = run_parallel_downloads(spec, n);
            assert_eq!(tn.len(), n);
            for t in &tn {
                assert!(
                    (t / (t1 * n as f64) - 1.0).abs() < 0.02,
                    "n={n}: {t} vs {}",
                    t1 * n as f64
                );
            }
        }
    }

    #[test]
    fn no_overhead_download_matches_ideal() {
        let spec = DownloadSpec::linux_kernel(0.0);
        let t = run_parallel_downloads(spec, 1)[0];
        assert!((t - ideal_time(netcal::LINUX_KERNEL_BYTES, 1)).abs() < 0.01);
    }

    #[test]
    fn page_load_spec() {
        let spec = DownloadSpec::page_load(Site::Twitter, 0.12);
        assert!(spec.bytes > 1e6);
        assert!(spec.wire_bytes() > spec.bytes);
    }
}
