//! Property-based tests for the fluid flow network: max-min fairness
//! invariants that must hold for any topology.

use nymix_net::{FlowNet, LinkId};
use nymix_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Feasibility: per-link allocated rate never exceeds capacity.
    #[test]
    fn link_capacities_respected(
        capacities in proptest::collection::vec(1.0f64..100.0, 1..5),
        flows in proptest::collection::vec(
            (proptest::collection::vec(any::<proptest::sample::Index>(), 1..4), 10.0f64..1e6),
            1..10),
    ) {
        let mut net = FlowNet::new();
        let links: Vec<LinkId> = capacities
            .iter()
            .map(|c| net.add_link(*c, SimDuration::ZERO))
            .collect();
        let mut ids = Vec::new();
        let mut paths = Vec::new();
        for (idxs, bytes) in &flows {
            let mut path: Vec<LinkId> = idxs.iter().map(|i| links[i.index(links.len())]).collect();
            path.dedup();
            ids.push(net.start_flow(SimTime::ZERO, path.clone(), *bytes));
            paths.push(path);
        }
        // Per-link sum of crossing-flow rates <= capacity.
        for (li, cap) in capacities.iter().enumerate() {
            let sum: f64 = ids
                .iter()
                .zip(&paths)
                .filter(|(_, p)| p.iter().any(|l| l.0 == li))
                .map(|(id, _)| net.flow_rate(*id).unwrap_or(0.0))
                .sum();
            prop_assert!(sum <= cap + 1e-6, "link {li}: {sum} > {cap}");
        }
        // Every flow gets a strictly positive rate (no starvation).
        for id in &ids {
            prop_assert!(net.flow_rate(*id).expect("active") > 0.0);
        }
    }

    /// Max-min property: a flow's rate can only be limited by a link
    /// where the capacity is fully used.
    #[test]
    fn bottleneck_justification(
        capacities in proptest::collection::vec(1.0f64..50.0, 1..4),
        n_flows in 1usize..8,
    ) {
        let mut net = FlowNet::new();
        let links: Vec<LinkId> = capacities
            .iter()
            .map(|c| net.add_link(*c, SimDuration::ZERO))
            .collect();
        // Each flow crosses all links (a chain topology).
        let ids: Vec<_> = (0..n_flows)
            .map(|_| net.start_flow(SimTime::ZERO, links.clone(), 1e9))
            .collect();
        // All flows identical => identical rates, equal to the tightest
        // link's fair share.
        let min_cap = capacities.iter().cloned().fold(f64::INFINITY, f64::min);
        let expect = min_cap / n_flows as f64;
        for id in ids {
            let rate = net.flow_rate(id).expect("active");
            prop_assert!((rate - expect).abs() < 1e-6, "rate {rate} expect {expect}");
        }
    }

    /// Completion times are monotone in transfer size on a quiet link.
    #[test]
    fn completion_monotone_in_bytes(sizes in proptest::collection::vec(1.0f64..1e6, 2..6)) {
        let mut sorted = sizes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut times = Vec::new();
        for s in &sorted {
            let mut net = FlowNet::new();
            let l = net.add_link(1e5, SimDuration::from_millis(40));
            let f = net.start_flow(SimTime::ZERO, vec![l], *s);
            times.push(net.run_to_completion()[&f]);
        }
        for w in times.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }
}
