//! Fluid flows: bandwidth sharing and transfer completion times.
//!
//! Models the evaluation network of §5.2: a 10 Mbit/s shaped access link
//! with 80 ms RTT to a DeterLab-hosted Tor deployment. Flows follow
//! paths of links; rates are assigned by *global* max-min fairness
//! (progressive filling), the standard fluid approximation of long-lived
//! TCP sharing. Figure 5's eight parallel kernel downloads and the
//! Figure 6/7 archive transfers are flows in this model.

use std::collections::BTreeMap;

use nymix_sim::{SimDuration, SimTime};

/// Identifies a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// Identifies a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone)]
struct FlowLink {
    capacity: f64, // bytes/second
    latency: SimDuration,
}

#[derive(Debug, Clone)]
struct Flow {
    path: Vec<LinkId>,
    remaining: f64, // bytes
    rate: f64,      // bytes/second
    release: SimTime,
}

/// A network of capacity-limited links carrying max-min fair flows.
///
/// # Examples
///
/// ```
/// use nymix_net::{FlowNet};
/// use nymix_sim::{SimDuration, SimTime};
///
/// let mut net = FlowNet::new();
/// // 10 Mbit/s access link (1.25e6 bytes/s), 40 ms one-way.
/// let access = net.add_link(1.25e6, SimDuration::from_millis(40));
/// let f = net.start_flow(SimTime::ZERO, vec![access], 1.25e6);
/// let done = net.run_to_completion();
/// // 1 second of transfer + 40 ms propagation.
/// assert_eq!(done[&f], SimTime(1_040_000));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowNet {
    links: Vec<FlowLink>,
    flows: BTreeMap<FlowId, Flow>,
    now: SimTime,
    next_flow: u64,
    starts: BTreeMap<FlowId, SimTime>,
    completions: BTreeMap<FlowId, SimTime>,
}

impl FlowNet {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a link with `capacity` bytes/second and one-way `latency`.
    ///
    /// # Panics
    ///
    /// Panics unless capacity is positive and finite.
    pub fn add_link(&mut self, capacity: f64, latency: SimDuration) -> LinkId {
        assert!(capacity.is_finite() && capacity > 0.0, "bad capacity");
        self.links.push(FlowLink { capacity, latency });
        LinkId(self.links.len() - 1)
    }

    /// Current simulated time of the flow network.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Starts a flow of `bytes` along `path` at time `now`.
    ///
    /// The flow begins transferring after the path's one-way latency
    /// (connection/propagation delay) and completes when its last byte
    /// has been served.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty, references unknown links, or `now`
    /// is in the past.
    pub fn start_flow(&mut self, now: SimTime, path: Vec<LinkId>, bytes: f64) -> FlowId {
        assert!(!path.is_empty(), "flow path must not be empty");
        assert!(
            path.iter().all(|l| l.0 < self.links.len()),
            "unknown link in path"
        );
        assert!(bytes >= 0.0 && bytes.is_finite(), "bad byte count");
        self.advance(now);
        let latency: SimDuration = path
            .iter()
            .fold(SimDuration::ZERO, |acc, l| acc + self.links[l.0].latency);
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.starts.insert(id, now);
        self.flows.insert(
            id,
            Flow {
                path,
                remaining: bytes,
                rate: 0.0,
                release: now + latency,
            },
        );
        self.reallocate();
        id
    }

    /// Cancels a flow; returns remaining bytes if it was still active.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance(now);
        let f = self.flows.remove(&id)?;
        self.reallocate();
        Some(f.remaining)
    }

    /// Current rate of a flow (bytes/second), if active.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Remaining bytes of a flow, if active.
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    /// Completion times recorded so far.
    pub fn completions(&self) -> &BTreeMap<FlowId, SimTime> {
        &self.completions
    }

    /// Earliest pending internal event (flow release or completion).
    ///
    /// Completion candidates are rounded *up* to the next microsecond:
    /// an event time strictly after `now` guarantees the event loop
    /// always makes progress (sub-microsecond residue would otherwise
    /// schedule the same instant forever).
    pub fn next_event(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for f in self.flows.values() {
            let candidate = if f.release > self.now {
                f.release
            } else if f.rate > 0.0 {
                let dt_us = (f.remaining / f.rate * 1e6).ceil().max(1.0) as u64;
                self.now + SimDuration(dt_us)
            } else {
                continue;
            };
            best = Some(best.map_or(candidate, |b| b.min(candidate)));
        }
        best
    }

    /// Advances the fluid state to `to`, recording completions.
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past.
    pub fn advance(&mut self, to: SimTime) {
        assert!(to >= self.now, "flow network advanced backwards");
        while self.now < to {
            let next = self.next_event().filter(|t| *t <= to).unwrap_or(to);
            let dt = next.since(self.now).as_secs_f64();
            // Integrate.
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
            self.now = next;
            // Completions at `next`.
            let done: Vec<FlowId> = self
                .flows
                .iter()
                .filter(|(_, f)| f.release <= self.now && f.remaining <= 1e-6)
                .map(|(id, _)| *id)
                .collect();
            let released = self
                .flows
                .values()
                .any(|f| f.release == self.now && f.rate == 0.0);
            if !done.is_empty() {
                for id in &done {
                    self.flows.remove(id);
                    self.completions.insert(*id, self.now);
                }
            }
            if !done.is_empty() || released {
                self.reallocate();
            }
            if self.now == next && next == to {
                break;
            }
        }
    }

    /// Runs until every flow completes; returns all completion times.
    pub fn run_to_completion(&mut self) -> BTreeMap<FlowId, SimTime> {
        while let Some(next) = self.next_event() {
            self.advance(next);
        }
        assert!(
            self.flows.is_empty(),
            "flows remain but no event is pending (zero-rate livelock)"
        );
        self.completions.clone()
    }

    /// Total transfer duration of a completed flow (including initial
    /// path latency).
    pub fn duration_of(&self, id: FlowId) -> Option<SimDuration> {
        let end = self.completions.get(&id)?;
        let start = self.starts.get(&id)?;
        Some(end.since(*start))
    }

    /// Progressive filling: global weighted (all weights 1) max-min.
    fn reallocate(&mut self) {
        let now = self.now;
        // Zero-byte flows with elapsed release complete instantly at the
        // next advance; give them a token rate so next_event fires.
        let mut unfrozen: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.release <= now)
            .map(|(id, _)| *id)
            .collect();
        for f in self.flows.values_mut() {
            f.rate = 0.0;
        }
        let mut residual: Vec<f64> = self.links.iter().map(|l| l.capacity).collect();
        while !unfrozen.is_empty() {
            // Fair share per link among unfrozen flows crossing it.
            let mut users: Vec<usize> = vec![0; self.links.len()];
            for id in &unfrozen {
                for l in &self.flows[id].path {
                    users[l.0] += 1;
                }
            }
            let mut bottleneck: Option<(usize, f64)> = None;
            for (li, &n) in users.iter().enumerate() {
                if n > 0 {
                    let share = residual[li] / n as f64;
                    if bottleneck.is_none_or(|(_, s)| share < s) {
                        bottleneck = Some((li, share));
                    }
                }
            }
            let Some((bl, share)) = bottleneck else { break };
            // Freeze all unfrozen flows crossing the bottleneck.
            let (frozen, rest): (Vec<FlowId>, Vec<FlowId>) = unfrozen
                .into_iter()
                .partition(|id| self.flows[id].path.iter().any(|l| l.0 == bl));
            for id in &frozen {
                let f = self.flows.get_mut(id).expect("flow exists");
                f.rate = share;
                for l in &f.path {
                    residual[l.0] = (residual[l.0] - share).max(0.0);
                }
            }
            unfrozen = rest;
        }
    }
}

/// Paper calibration constants for the evaluation network.
pub mod calib {
    use nymix_sim::SimDuration;

    /// Shaped access-link rate: 10 Mbit/s in bytes/second (§5.2).
    pub const ACCESS_LINK_BPS: f64 = 10_000_000.0 / 8.0;

    /// One-way access latency: half the 80 ms DeterLab RTT.
    pub const ACCESS_ONE_WAY: SimDuration = SimDuration(40_000);

    /// Fixed Tor bandwidth overhead: "approximately 12%" (§5.2).
    pub const TOR_BYTE_OVERHEAD: f64 = 0.12;

    /// linux-3.14.2.tar.xz size in bytes (the Figure 5 artifact).
    pub const LINUX_KERNEL_BYTES: f64 = 76.8 * 1024.0 * 1024.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime((s * 1e6).round() as u64)
    }

    #[test]
    fn single_flow_full_rate() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0, SimDuration::ZERO);
        let f = net.start_flow(SimTime::ZERO, vec![l], 1000.0);
        assert_eq!(net.flow_rate(f), Some(100.0));
        let done = net.run_to_completion();
        assert_eq!(done[&f], secs(10.0));
    }

    #[test]
    fn latency_delays_start() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0, SimDuration::from_secs(1));
        let f = net.start_flow(SimTime::ZERO, vec![l], 100.0);
        assert_eq!(net.flow_rate(f), Some(0.0));
        let done = net.run_to_completion();
        assert_eq!(done[&f], secs(2.0));
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0, SimDuration::ZERO);
        let a = net.start_flow(SimTime::ZERO, vec![l], 50.0);
        let b = net.start_flow(SimTime::ZERO, vec![l], 100.0);
        assert_eq!(net.flow_rate(a), Some(5.0));
        assert_eq!(net.flow_rate(b), Some(5.0));
        let done = net.run_to_completion();
        // a: 50 bytes at 5/s → t=10. b: 50 served by t=10, 50 left at
        // 10/s → t=15.
        assert_eq!(done[&a], secs(10.0));
        assert_eq!(done[&b], secs(15.0));
    }

    #[test]
    fn n_parallel_downloads_scale_linearly() {
        // The Figure 5 shape: n equal flows on one shared link finish
        // together at n * t1.
        let mut single = FlowNet::new();
        let l = single.add_link(calib::ACCESS_LINK_BPS, calib::ACCESS_ONE_WAY);
        let f = single.start_flow(SimTime::ZERO, vec![l], calib::LINUX_KERNEL_BYTES);
        let t1 = single.run_to_completion()[&f].as_secs_f64();

        for n in [2usize, 4, 8] {
            let mut net = FlowNet::new();
            let l = net.add_link(calib::ACCESS_LINK_BPS, calib::ACCESS_ONE_WAY);
            let ids: Vec<FlowId> = (0..n)
                .map(|_| net.start_flow(SimTime::ZERO, vec![l], calib::LINUX_KERNEL_BYTES))
                .collect();
            let done = net.run_to_completion();
            for id in ids {
                let tn = done[&id].as_secs_f64();
                let ideal = t1 * n as f64;
                assert!(
                    (tn - ideal).abs() / ideal < 0.01,
                    "n={n} tn={tn} ideal={ideal}"
                );
            }
        }
    }

    #[test]
    fn multi_link_bottleneck() {
        let mut net = FlowNet::new();
        let fast = net.add_link(100.0, SimDuration::ZERO);
        let slow = net.add_link(10.0, SimDuration::ZERO);
        let f = net.start_flow(SimTime::ZERO, vec![fast, slow], 100.0);
        assert_eq!(net.flow_rate(f), Some(10.0));
    }

    #[test]
    fn max_min_across_links() {
        // Classic example: flow A uses link1+link2, flow B only link1,
        // flow C only link2. cap(link1)=10, cap(link2)=20.
        let mut net = FlowNet::new();
        let l1 = net.add_link(10.0, SimDuration::ZERO);
        let l2 = net.add_link(20.0, SimDuration::ZERO);
        let a = net.start_flow(SimTime::ZERO, vec![l1, l2], 1e9);
        let b = net.start_flow(SimTime::ZERO, vec![l1], 1e9);
        let c = net.start_flow(SimTime::ZERO, vec![l2], 1e9);
        // Bottleneck link1: A and B get 5 each; C then gets 20-5=15.
        assert_eq!(net.flow_rate(a), Some(5.0));
        assert_eq!(net.flow_rate(b), Some(5.0));
        assert_eq!(net.flow_rate(c), Some(15.0));
    }

    #[test]
    fn staggered_arrivals() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0, SimDuration::ZERO);
        let a = net.start_flow(SimTime::ZERO, vec![l], 100.0);
        // At t=5, a has 50 left; b joins.
        let b = net.start_flow(secs(5.0), vec![l], 25.0);
        assert_eq!(net.flow_rate(a), Some(5.0));
        assert_eq!(net.flow_rate(b), Some(5.0));
        let done = net.run_to_completion();
        // b: 25 bytes at 5/s → t=10. a: 50-25=25 left at t=10, full
        // rate → t=12.5.
        assert_eq!(done[&b], secs(10.0));
        assert_eq!(done[&a], secs(12.5));
    }

    #[test]
    fn cancel_frees_bandwidth() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0, SimDuration::ZERO);
        let a = net.start_flow(SimTime::ZERO, vec![l], 1000.0);
        let b = net.start_flow(SimTime::ZERO, vec![l], 100.0);
        let left = net.cancel_flow(secs(2.0), a).unwrap();
        assert!((left - 990.0).abs() < 1e-6);
        assert_eq!(net.flow_rate(b), Some(10.0));
        assert!(net.cancel_flow(secs(2.0), a).is_none());
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0, SimDuration::from_millis(40));
        let f = net.start_flow(SimTime::ZERO, vec![l], 0.0);
        let done = net.run_to_completion();
        assert_eq!(done[&f], SimTime(40_000));
    }

    #[test]
    fn kernel_download_time_matches_arithmetic() {
        // 76.8 MiB at 10 Mbit/s = 64.4 s + 40 ms latency.
        let mut net = FlowNet::new();
        let l = net.add_link(calib::ACCESS_LINK_BPS, calib::ACCESS_ONE_WAY);
        let f = net.start_flow(SimTime::ZERO, vec![l], calib::LINUX_KERNEL_BYTES);
        let done = net.run_to_completion();
        let expect = calib::LINUX_KERNEL_BYTES / calib::ACCESS_LINK_BPS + 0.04;
        assert!((done[&f].as_secs_f64() - expect).abs() < 0.01);
    }
}
