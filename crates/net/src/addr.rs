//! Link- and network-layer addresses.
//!
//! §4.2: "Each independent set of AnonVMs and CommVMs have the same
//! Ethernet and IP addresses" — address *uniformity* across nymboxes is
//! a fingerprinting defence, so addresses are first-class values here
//! and tests assert that every AnonVM sees the identical pair.

use core::fmt;

/// A 48-bit Ethernet address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mac(pub [u8; 6]);

impl Mac {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: Mac = Mac([0xff; 6]);

    /// The fixed, homogenized MAC every AnonVM presents (QEMU's default
    /// vendor prefix) — one more bit of cross-user uniformity.
    pub const ANONVM_FIXED: Mac = Mac([0x52, 0x54, 0x00, 0x12, 0x34, 0x56]);

    /// The fixed MAC every CommVM presents.
    pub const COMMVM_FIXED: Mac = Mac([0x52, 0x54, 0x00, 0x12, 0x34, 0x57]);

    /// A deterministic "hardware" MAC for host NICs, derived from an id.
    pub fn host_nic(id: u32) -> Mac {
        let b = id.to_be_bytes();
        Mac([0x00, 0x1b, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ip(pub [u8; 4]);

impl Ip {
    /// The fixed AnonVM-side address of the virtual wire (identical in
    /// every nymbox, per §4.2).
    pub const ANONVM_FIXED: Ip = Ip([10, 0, 2, 15]);

    /// The fixed CommVM-side address of the virtual wire.
    pub const COMMVM_WIRE: Ip = Ip([10, 0, 2, 2]);

    /// Parses dotted-quad notation.
    ///
    /// # Panics
    ///
    /// Panics on malformed input — addresses in this simulator are
    /// always program constants.
    pub fn parse(s: &str) -> Ip {
        let mut out = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut out {
            *slot = parts
                .next()
                .and_then(|p| p.parse().ok())
                .expect("malformed IPv4 literal");
        }
        assert!(parts.next().is_none(), "malformed IPv4 literal");
        Ip(out)
    }

    /// Whether the address is in RFC 1918 private space.
    pub fn is_private(&self) -> bool {
        let [a, b, _, _] = self.0;
        a == 10 || (a == 172 && (16..=31).contains(&b)) || (a == 192 && b == 168)
    }

    /// Whether `self` lies within `network/prefix_len`.
    pub fn in_subnet(&self, network: Ip, prefix_len: u8) -> bool {
        let mask = if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len as u32)
        };
        (u32::from_be_bytes(self.0) & mask) == (u32::from_be_bytes(network.0) & mask)
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let ip = Ip::parse("192.168.1.7");
        assert_eq!(ip, Ip([192, 168, 1, 7]));
        assert_eq!(ip.to_string(), "192.168.1.7");
        assert_eq!(Mac::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn parse_rejects_garbage() {
        let _ = Ip::parse("1.2.3");
    }

    #[test]
    fn private_space() {
        assert!(Ip::parse("10.1.2.3").is_private());
        assert!(Ip::parse("172.16.0.1").is_private());
        assert!(Ip::parse("172.31.255.255").is_private());
        assert!(!Ip::parse("172.32.0.1").is_private());
        assert!(Ip::parse("192.168.0.1").is_private());
        assert!(!Ip::parse("8.8.8.8").is_private());
    }

    #[test]
    fn subnets() {
        let net = Ip::parse("10.0.2.0");
        assert!(Ip::parse("10.0.2.15").in_subnet(net, 24));
        assert!(!Ip::parse("10.0.3.15").in_subnet(net, 24));
        assert!(Ip::parse("10.99.0.1").in_subnet(Ip::parse("10.0.0.0"), 8));
        assert!(Ip::parse("1.2.3.4").in_subnet(Ip::parse("9.9.9.9"), 0));
    }

    #[test]
    fn fixed_addresses_are_uniform() {
        // Homogenization: the constants are the same for every nymbox by
        // construction; this test pins them against accidental change.
        assert_eq!(Ip::ANONVM_FIXED.to_string(), "10.0.2.15");
        assert_eq!(Mac::ANONVM_FIXED.to_string(), "52:54:00:12:34:56");
    }

    #[test]
    fn host_nics_are_distinct() {
        assert_ne!(Mac::host_nic(1), Mac::host_nic(2));
    }
}
