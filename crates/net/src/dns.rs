//! Name resolution.
//!
//! DNS is the classic anonymizer-bypass channel: a browser that resolves
//! names directly (UDP/53) leaks every visited domain to the local
//! resolver even when page fetches ride the anonymizer. §4.1: "While Tor
//! does not support UDP redirection, it has a built-in DNS server" — so
//! in Nymix the AnonVM's resolver points *into* the CommVM, and the
//! anonymizer resolves names remotely.

use std::collections::BTreeMap;

use crate::addr::Ip;

/// A name→address database (the simulated global DNS).
#[derive(Debug, Clone, Default)]
pub struct DnsDb {
    records: BTreeMap<String, Ip>,
}

impl DnsDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The well-known site set used by the paper's experiments (§5.2),
    /// plus experiment infrastructure, mapped into documentation/test
    /// address space.
    pub fn with_eval_sites() -> Self {
        let mut db = Self::new();
        let sites = [
            ("gmail.com", "198.51.100.10"),
            ("twitter.com", "198.51.100.11"),
            ("youtube.com", "198.51.100.12"),
            ("blog.torproject.org", "198.51.100.13"),
            ("bbc.co.uk", "198.51.100.14"),
            ("facebook.com", "198.51.100.15"),
            ("slashdot.org", "198.51.100.16"),
            ("espn.com", "198.51.100.17"),
            ("kernel.deterlab.net", "198.51.100.20"),
            ("cloud.dropbox.example", "198.51.100.30"),
            ("cloud.drive.example", "198.51.100.31"),
        ];
        for (name, ip) in sites {
            db.insert(name, Ip::parse(ip));
        }
        db
    }

    /// Adds or replaces a record.
    pub fn insert(&mut self, name: &str, ip: Ip) {
        self.records.insert(name.to_ascii_lowercase(), ip);
    }

    /// Looks up a name.
    pub fn resolve(&self, name: &str) -> Option<Ip> {
        self.records.get(&name.to_ascii_lowercase()).copied()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// How a nymbox resolves names — determines whether lookups leak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolverMode {
    /// Resolve through the anonymizer (Tor's DNS port / Dissent UDP
    /// proxying): no cleartext DNS ever leaves the CommVM.
    ThroughAnonymizer,
    /// Resolve directly against a LAN resolver: leaks visited names.
    /// Present to model the misconfiguration Nymix prevents.
    DirectUdp53,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_sites_present() {
        let db = DnsDb::with_eval_sites();
        assert_eq!(db.resolve("twitter.com"), Some(Ip::parse("198.51.100.11")));
        assert_eq!(db.resolve("TWITTER.COM"), Some(Ip::parse("198.51.100.11")));
        assert!(db.resolve("example.invalid").is_none());
        assert!(db.len() >= 8);
        assert!(!db.is_empty());
    }

    #[test]
    fn insert_replaces() {
        let mut db = DnsDb::new();
        db.insert("a.example", Ip::parse("1.1.1.1"));
        db.insert("a.example", Ip::parse("2.2.2.2"));
        assert_eq!(db.resolve("a.example"), Some(Ip::parse("2.2.2.2")));
        assert_eq!(db.len(), 1);
    }
}
