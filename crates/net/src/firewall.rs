//! Per-node packet filtering.
//!
//! The CommVM's iptables configuration is what forces all AnonVM traffic
//! into the anonymizer and blocks everything else (§4.1: "Our incognito
//! mode makes use of Linux' IPTables masquerade mode"). Firewalls here
//! are ordered rule lists with a default action, evaluated per packet
//! and direction.

use crate::addr::Ip;
use crate::fabric::{Packet, Proto};

/// Allow or drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Let the packet through.
    Allow,
    /// Silently drop the packet (probes see "no response, as if the
    /// host did not exist" — §5.1).
    Drop,
}

/// Direction relative to the node evaluating the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Packet arriving at the node.
    In,
    /// Packet leaving the node.
    Out,
}

/// A single match-and-act rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Which direction this rule applies to.
    pub direction: Direction,
    /// Source subnet filter (`None` matches any).
    pub src: Option<(Ip, u8)>,
    /// Destination subnet filter (`None` matches any).
    pub dst: Option<(Ip, u8)>,
    /// Protocol filter (`None` matches any).
    pub proto: Option<Proto>,
    /// Destination-port filter (`None` matches any).
    pub dst_port: Option<u16>,
    /// What to do on match.
    pub action: Action,
}

impl Rule {
    /// An allow-everything rule for a direction.
    pub fn allow_all(direction: Direction) -> Rule {
        Rule {
            direction,
            src: None,
            dst: None,
            proto: None,
            dst_port: None,
            action: Action::Allow,
        }
    }

    fn matches(&self, direction: Direction, packet: &Packet) -> bool {
        if self.direction != direction {
            return false;
        }
        if let Some((net, len)) = self.src {
            if !packet.src.in_subnet(net, len) {
                return false;
            }
        }
        if let Some((net, len)) = self.dst {
            if !packet.dst.in_subnet(net, len) {
                return false;
            }
        }
        if let Some(proto) = self.proto {
            if packet.proto != proto {
                return false;
            }
        }
        if let Some(port) = self.dst_port {
            if packet.dst_port != port {
                return false;
            }
        }
        true
    }
}

/// An ordered rule list with a default action.
///
/// # Examples
///
/// ```
/// use nymix_net::firewall::{Action, Direction, Firewall, Rule};
/// use nymix_net::fabric::{Packet, Proto};
/// use nymix_net::Ip;
///
/// // Default-deny with one allow rule.
/// let mut fw = Firewall::default_drop();
/// fw.push(Rule {
///     direction: Direction::Out,
///     src: None,
///     dst: Some((Ip::parse("10.0.2.0"), 24)),
///     proto: None,
///     dst_port: None,
///     action: Action::Allow,
/// });
/// let pkt = Packet::udp(Ip::parse("10.0.2.15"), Ip::parse("10.0.2.2"), 9030, 64);
/// assert_eq!(fw.check(Direction::Out, &pkt), Action::Allow);
/// let leak = Packet::udp(Ip::parse("10.0.2.15"), Ip::parse("8.8.8.8"), 53, 64);
/// assert_eq!(fw.check(Direction::Out, &leak), Action::Drop);
/// ```
#[derive(Debug, Clone)]
pub struct Firewall {
    rules: Vec<Rule>,
    default: Action,
}

impl Firewall {
    /// A firewall that allows everything (external Internet nodes).
    pub fn permissive() -> Self {
        Self {
            rules: Vec::new(),
            default: Action::Allow,
        }
    }

    /// A firewall that drops everything not explicitly allowed.
    pub fn default_drop() -> Self {
        Self {
            rules: Vec::new(),
            default: Action::Drop,
        }
    }

    /// Appends a rule (evaluated in insertion order, first match wins).
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Evaluates the packet.
    pub fn check(&self, direction: Direction, packet: &Packet) -> Action {
        for rule in &self.rules {
            if rule.matches(direction, packet) {
                return rule.action;
            }
        }
        self.default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: &str, dst: &str, proto: Proto, port: u16) -> Packet {
        Packet {
            src: Ip::parse(src),
            dst: Ip::parse(dst),
            proto,
            dst_port: port,
            bytes: 100,
        }
    }

    #[test]
    fn default_actions() {
        let p = pkt("1.1.1.1", "2.2.2.2", Proto::Tcp, 80);
        assert_eq!(
            Firewall::permissive().check(Direction::In, &p),
            Action::Allow
        );
        assert_eq!(
            Firewall::default_drop().check(Direction::In, &p),
            Action::Drop
        );
    }

    #[test]
    fn first_match_wins() {
        let mut fw = Firewall::default_drop();
        fw.push(Rule {
            direction: Direction::Out,
            src: None,
            dst: None,
            proto: Some(Proto::Udp),
            dst_port: Some(53),
            action: Action::Drop,
        });
        fw.push(Rule::allow_all(Direction::Out));
        // DNS blocked even though a later rule allows everything.
        assert_eq!(
            fw.check(Direction::Out, &pkt("10.0.2.15", "8.8.8.8", Proto::Udp, 53)),
            Action::Drop
        );
        assert_eq!(
            fw.check(
                Direction::Out,
                &pkt("10.0.2.15", "8.8.8.8", Proto::Tcp, 443)
            ),
            Action::Allow
        );
    }

    #[test]
    fn direction_is_honoured() {
        let mut fw = Firewall::default_drop();
        fw.push(Rule::allow_all(Direction::Out));
        let p = pkt("1.1.1.1", "2.2.2.2", Proto::Tcp, 80);
        assert_eq!(fw.check(Direction::Out, &p), Action::Allow);
        assert_eq!(fw.check(Direction::In, &p), Action::Drop);
    }

    #[test]
    fn subnet_filters() {
        let mut fw = Firewall::default_drop();
        fw.push(Rule {
            direction: Direction::In,
            src: Some((Ip::parse("10.0.2.0"), 24)),
            dst: None,
            proto: None,
            dst_port: None,
            action: Action::Allow,
        });
        assert_eq!(
            fw.check(
                Direction::In,
                &pkt("10.0.2.99", "10.0.2.2", Proto::Tcp, 9050)
            ),
            Action::Allow
        );
        assert_eq!(
            fw.check(
                Direction::In,
                &pkt("10.9.9.9", "10.0.2.2", Proto::Tcp, 9050)
            ),
            Action::Drop
        );
    }
}
