//! Virtual networking for Nymix.
//!
//! Two complementary layers model the prototype's network (§4.2):
//!
//! * A **packet layer** ([`fabric`]) answers *who can talk to whom*: it
//!   models nodes, interfaces, point-to-point links, NAT, firewalls and
//!   DNS, and records every frame on every link ([`trace`]) — the
//!   simulated Wireshark used to validate isolation exactly as §5.1 does.
//! * A **fluid layer** ([`flow`]) answers *how fast*: flows across paths
//!   of capacity-limited links receive global max-min fair rates, which
//!   yields download/upload completion times for the Figure 5/6/7
//!   experiments.
//!
//! The Nymix topology built on these (in the `nymix` core crate) is:
//! each AnonVM has a single virtual wire to its CommVM ("a UDP port,
//! effectively setting a virtual wire connecting the two machines"); the
//! CommVM reaches the Internet through KVM user-mode NAT; nothing else
//! is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod dns;
pub mod fabric;
pub mod firewall;
pub mod flow;
pub mod trace;

pub use addr::{Ip, Mac};
pub use fabric::{DeliveryStatus, Fabric, NodeId, NodeKind};
pub use firewall::{Action, Firewall, Rule};
pub use flow::{FlowId, FlowNet, LinkId};
pub use trace::{TraceEntry, Tracer};
