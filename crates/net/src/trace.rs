//! Frame tracing — the simulated Wireshark.
//!
//! §5.1 validates Nymix by tunnelling the hypervisor's traffic through a
//! host NAT and watching it with Wireshark: "The Nymix hypervisor
//! emitted only traffic for DHCP and anonymizer traffic, while the
//! AnonVM transmitted no traffic." The [`Tracer`] records every frame
//! crossing every link so integration tests can assert exactly that.

use crate::addr::Ip;
use crate::fabric::{Packet, Proto};

/// One observed frame on one link.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Index of the link the frame crossed.
    pub link: usize,
    /// Name of the transmitting node.
    pub from_node: String,
    /// Name of the receiving node.
    pub to_node: String,
    /// The packet as it appeared on this link (post-NAT if applicable).
    pub packet: Packet,
    /// Monotone sequence number (capture order).
    pub seq: u64,
}

/// Records frames crossing links.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    entries: Vec<TraceEntry>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a frame.
    pub fn record(&mut self, link: usize, from_node: &str, to_node: &str, packet: &Packet) {
        let seq = self.entries.len() as u64;
        self.entries.push(TraceEntry {
            link,
            from_node: from_node.to_string(),
            to_node: to_node.to_string(),
            packet: packet.clone(),
            seq,
        });
    }

    /// All captured entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Frames observed on a given link.
    pub fn on_link(&self, link: usize) -> Vec<&TraceEntry> {
        self.entries.iter().filter(|e| e.link == link).collect()
    }

    /// Frames transmitted by the named node (on any link).
    pub fn sent_by(&self, node: &str) -> Vec<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| e.from_node == node)
            .collect()
    }

    /// Whether any captured frame satisfies `pred`.
    pub fn any(&self, pred: impl Fn(&TraceEntry) -> bool) -> bool {
        self.entries.iter().any(pred)
    }

    /// Whether any frame reveals `ip` as a source address — the leak
    /// check: the host's public IP must never appear in AnonVM-visible
    /// traffic, and the AnonVM's IP must never appear on the wide-area
    /// side.
    pub fn reveals_source_ip(&self, ip: Ip) -> bool {
        self.any(|e| e.packet.src == ip)
    }

    /// Whether a plaintext DNS query (UDP/53) appears anywhere — the
    /// classic anonymizer-bypass leak.
    pub fn has_cleartext_dns(&self) -> bool {
        self.any(|e| e.packet.proto == Proto::Udp && e.packet.dst_port == 53)
    }

    /// Clears the capture buffer.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: &str, dst: &str, proto: Proto, port: u16) -> Packet {
        Packet {
            src: Ip::parse(src),
            dst: Ip::parse(dst),
            proto,
            dst_port: port,
            bytes: 60,
        }
    }

    #[test]
    fn record_and_query() {
        let mut t = Tracer::new();
        t.record(
            0,
            "anonvm",
            "commvm",
            &pkt("10.0.2.15", "10.0.2.2", Proto::Udp, 9030),
        );
        t.record(
            1,
            "commvm",
            "internet",
            &pkt("203.0.113.9", "198.51.100.1", Proto::Tcp, 443),
        );
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.on_link(0).len(), 1);
        assert_eq!(t.sent_by("commvm").len(), 1);
        assert_eq!(t.entries()[0].seq, 0);
        assert_eq!(t.entries()[1].seq, 1);
    }

    #[test]
    fn leak_predicates() {
        let mut t = Tracer::new();
        t.record(0, "a", "b", &pkt("10.0.2.15", "8.8.8.8", Proto::Udp, 53));
        assert!(t.has_cleartext_dns());
        assert!(t.reveals_source_ip(Ip::parse("10.0.2.15")));
        assert!(!t.reveals_source_ip(Ip::parse("1.2.3.4")));
        t.clear();
        assert!(!t.has_cleartext_dns());
    }
}
