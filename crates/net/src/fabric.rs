//! The packet-level network fabric.
//!
//! Nodes own interfaces; interfaces attach to point-to-point links;
//! packets are routed hop by hop with per-node firewalls and optional
//! NAT. Every traversal is captured by the fabric's [`Tracer`].
//!
//! The fabric is deliberately *synchronous*: `send` walks the packet to
//! its fate and reports what happened. Timing lives in the fluid layer
//! ([`crate::flow`]); the fabric answers reachability and leak questions
//! (the §5.1 validation matrix).

use std::collections::BTreeMap;

use crate::addr::{Ip, Mac};
use crate::firewall::{Action, Direction, Firewall};
use crate::trace::Tracer;

/// Transport protocol of a simulated packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// TCP segment.
    Tcp,
    /// UDP datagram.
    Udp,
    /// ICMP (probes).
    Icmp,
}

/// A simulated packet (network + transport header summary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source address (rewritten by NAT hops).
    pub src: Ip,
    /// Destination address.
    pub dst: Ip,
    /// Transport protocol.
    pub proto: Proto,
    /// Destination port (0 for ICMP).
    pub dst_port: u16,
    /// Payload size in bytes (accounting only).
    pub bytes: u32,
}

impl Packet {
    /// Convenience UDP packet.
    pub fn udp(src: Ip, dst: Ip, dst_port: u16, bytes: u32) -> Packet {
        Packet {
            src,
            dst,
            proto: Proto::Udp,
            dst_port,
            bytes,
        }
    }

    /// Convenience TCP packet.
    pub fn tcp(src: Ip, dst: Ip, dst_port: u16, bytes: u32) -> Packet {
        Packet {
            src,
            dst,
            proto: Proto::Tcp,
            dst_port,
            bytes,
        }
    }

    /// Convenience ICMP probe.
    pub fn icmp(src: Ip, dst: Ip) -> Packet {
        Packet {
            src,
            dst,
            proto: Proto::Icmp,
            dst_port: 0,
            bytes: 64,
        }
    }
}

/// What a node is, which shapes forwarding behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An endpoint (VM or physical host): accepts packets addressed to
    /// it, originates packets, never forwards.
    Host,
    /// A NAT gateway: rewrites the source address to its own egress
    /// address and forwards; inbound packets only pass for established
    /// mappings.
    Nat,
    /// A plain router: forwards per its routing table.
    Router,
    /// The abstract wide-area Internet: accepts anything addressed to a
    /// public IP it hosts.
    Internet,
}

/// Identifies a node in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Outcome of a `send`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryStatus {
    /// The packet reached a node that accepted it.
    Delivered {
        /// Accepting node.
        node: NodeId,
        /// Hop count (links traversed).
        hops: usize,
    },
    /// Dropped with no response ("as if the host did not exist", §5.1).
    Dropped {
        /// Node at which the packet died.
        at: NodeId,
        /// Why.
        reason: DropReason,
    },
}

impl DeliveryStatus {
    /// Whether the packet was delivered.
    pub fn delivered(&self) -> bool {
        matches!(self, DeliveryStatus::Delivered { .. })
    }
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// No route toward the destination.
    NoRoute,
    /// An egress firewall rule refused it.
    EgressFiltered,
    /// An ingress firewall rule refused it.
    IngressFiltered,
    /// A NAT had no mapping for an inbound packet.
    NoNatMapping,
    /// TTL exhausted (routing loop guard).
    TtlExpired,
    /// Addressed to a host that doesn't own the address.
    NotForMe,
}

#[derive(Debug, Clone)]
struct Iface {
    #[allow(dead_code)] // MACs surface in fingerprint tests via accessors.
    mac: Mac,
    ip: Ip,
    link: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct RouteEntry {
    network: Ip,
    prefix: u8,
    iface: usize,
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: NodeKind,
    ifaces: Vec<Iface>,
    routes: Vec<RouteEntry>,
    firewall: Firewall,
    /// Established NAT mappings: original source -> seen.
    nat_mappings: BTreeMap<(Ip, Ip, u16), ()>,
}

#[derive(Debug, Clone, Copy)]
struct Link {
    a: (NodeId, usize),
    b: (NodeId, usize),
}

/// The network fabric: nodes, links, tracer.
///
/// # Examples
///
/// ```
/// use nymix_net::{Fabric, Ip, NodeKind};
/// use nymix_net::fabric::Packet;
///
/// let mut fabric = Fabric::new();
/// let a = fabric.add_node("a", NodeKind::Host);
/// let b = fabric.add_node("b", NodeKind::Host);
/// let ia = fabric.add_iface(a, nymix_net::Mac::host_nic(1), Ip::parse("10.0.0.1"));
/// let ib = fabric.add_iface(b, nymix_net::Mac::host_nic(2), Ip::parse("10.0.0.2"));
/// fabric.connect(a, ia, b, ib);
/// fabric.add_route(a, Ip::parse("10.0.0.0"), 24, ia);
/// let status = fabric.send(a, Packet::icmp(Ip::parse("10.0.0.1"), Ip::parse("10.0.0.2")));
/// assert!(status.delivered());
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    nodes: Vec<Node>,
    links: Vec<Link>,
    tracer: Tracer,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    /// An empty fabric.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            links: Vec::new(),
            tracer: Tracer::new(),
        }
    }

    /// Adds a node with a permissive firewall.
    pub fn add_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
            ifaces: Vec::new(),
            routes: Vec::new(),
            firewall: Firewall::permissive(),
            nat_mappings: BTreeMap::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds an interface to a node; returns its index on that node.
    pub fn add_iface(&mut self, node: NodeId, mac: Mac, ip: Ip) -> usize {
        let n = &mut self.nodes[node.0];
        n.ifaces.push(Iface {
            mac,
            ip,
            link: None,
        });
        n.ifaces.len() - 1
    }

    /// Connects two interfaces with a point-to-point link.
    ///
    /// # Panics
    ///
    /// Panics if either interface is already connected.
    pub fn connect(&mut self, na: NodeId, ia: usize, nb: NodeId, ib: usize) -> usize {
        assert!(
            self.nodes[na.0].ifaces[ia].link.is_none()
                && self.nodes[nb.0].ifaces[ib].link.is_none(),
            "interface already linked"
        );
        let id = self.links.len();
        self.links.push(Link {
            a: (na, ia),
            b: (nb, ib),
        });
        self.nodes[na.0].ifaces[ia].link = Some(id);
        self.nodes[nb.0].ifaces[ib].link = Some(id);
        id
    }

    /// Adds a route on `node`: traffic for `network/prefix` leaves via
    /// interface `iface`. More-specific prefixes win.
    pub fn add_route(&mut self, node: NodeId, network: Ip, prefix: u8, iface: usize) {
        self.nodes[node.0].routes.push(RouteEntry {
            network,
            prefix,
            iface,
        });
    }

    /// Replaces a node's firewall.
    pub fn set_firewall(&mut self, node: NodeId, firewall: Firewall) {
        self.nodes[node.0].firewall = firewall;
    }

    /// Node name.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// IP of an interface.
    pub fn iface_ip(&self, node: NodeId, iface: usize) -> Ip {
        self.nodes[node.0].ifaces[iface].ip
    }

    /// MAC of an interface.
    pub fn iface_mac(&self, node: NodeId, iface: usize) -> Mac {
        self.nodes[node.0].ifaces[iface].mac
    }

    /// The capture buffer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Clears the capture buffer.
    pub fn clear_trace(&mut self) {
        self.tracer.clear();
    }

    /// Sends `packet` from `src`, walking it hop by hop to its fate.
    pub fn send(&mut self, src: NodeId, packet: Packet) -> DeliveryStatus {
        self.forward(src, packet, 16, 0)
    }

    fn forward(
        &mut self,
        current: NodeId,
        mut packet: Packet,
        ttl: u32,
        hops: usize,
    ) -> DeliveryStatus {
        if ttl == 0 {
            return DeliveryStatus::Dropped {
                at: current,
                reason: DropReason::TtlExpired,
            };
        }
        // Route lookup: longest prefix match.
        let node = &self.nodes[current.0];
        let mut best: Option<(u8, usize)> = None;
        for route in &node.routes {
            if packet.dst.in_subnet(route.network, route.prefix)
                && best.is_none_or(|(p, _)| route.prefix > p)
            {
                best = Some((route.prefix, route.iface));
            }
        }
        let Some((_, iface_idx)) = best else {
            return DeliveryStatus::Dropped {
                at: current,
                reason: DropReason::NoRoute,
            };
        };
        // OUTPUT/FORWARD filtering at this node, before any source
        // rewrite (iptables ordering: filter precedes POSTROUTING).
        if node.firewall.check(Direction::Out, &packet) == Action::Drop {
            return DeliveryStatus::Dropped {
                at: current,
                reason: DropReason::EgressFiltered,
            };
        }
        // NAT source rewrite on the way out.
        if node.kind == NodeKind::Nat {
            let egress_ip = node.ifaces[iface_idx].ip;
            let key = (packet.src, packet.dst, packet.dst_port);
            self.nodes[current.0].nat_mappings.insert(key, ());
            packet.src = egress_ip;
        }
        let node = &self.nodes[current.0];
        let Some(link_id) = node.ifaces[iface_idx].link else {
            return DeliveryStatus::Dropped {
                at: current,
                reason: DropReason::NoRoute,
            };
        };
        let link = self.links[link_id];
        let (peer, _peer_iface) = if link.a.0 == current && link.a.1 == iface_idx {
            link.b
        } else {
            link.a
        };
        // The frame crosses the wire: record it.
        let from_name = self.nodes[current.0].name.clone();
        let to_name = self.nodes[peer.0].name.clone();
        self.tracer.record(link_id, &from_name, &to_name, &packet);

        // Ingress firewall at the peer.
        if self.nodes[peer.0].firewall.check(Direction::In, &packet) == Action::Drop {
            return DeliveryStatus::Dropped {
                at: peer,
                reason: DropReason::IngressFiltered,
            };
        }
        let peer_node = &self.nodes[peer.0];
        let addressed_here = peer_node.ifaces.iter().any(|i| i.ip == packet.dst);
        match peer_node.kind {
            NodeKind::Host => {
                if addressed_here {
                    DeliveryStatus::Delivered {
                        node: peer,
                        hops: hops + 1,
                    }
                } else {
                    // Hosts do not forward.
                    DeliveryStatus::Dropped {
                        at: peer,
                        reason: DropReason::NotForMe,
                    }
                }
            }
            NodeKind::Internet => {
                if addressed_here {
                    DeliveryStatus::Delivered {
                        node: peer,
                        hops: hops + 1,
                    }
                } else {
                    DeliveryStatus::Dropped {
                        at: peer,
                        reason: DropReason::NoRoute,
                    }
                }
            }
            NodeKind::Router => self.forward(peer, packet, ttl - 1, hops + 1),
            NodeKind::Nat => {
                if addressed_here {
                    // Traffic from the inside (private sources) reaches
                    // local services (e.g. the CommVM's SOCKS/DNS ports)
                    // directly; inbound from the public side needs an
                    // established mapping. (Simplified: any established
                    // outbound to that peer admits the reply.)
                    let from_inside = packet.src.is_private();
                    let established = self.nodes[peer.0]
                        .nat_mappings
                        .keys()
                        .any(|(_, dst, _)| *dst == packet.src);
                    if from_inside || established {
                        DeliveryStatus::Delivered {
                            node: peer,
                            hops: hops + 1,
                        }
                    } else {
                        DeliveryStatus::Dropped {
                            at: peer,
                            reason: DropReason::NoNatMapping,
                        }
                    }
                } else {
                    self.forward(peer, packet, ttl - 1, hops + 1)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firewall::Rule;

    /// Builds: host --- nat --- internet(198.51.100.1)
    fn nat_topology() -> (Fabric, NodeId, NodeId, NodeId) {
        let mut f = Fabric::new();
        let host = f.add_node("host", NodeKind::Host);
        let nat = f.add_node("nat", NodeKind::Nat);
        let inet = f.add_node("internet", NodeKind::Internet);
        let hi = f.add_iface(host, Mac::host_nic(1), Ip::parse("10.0.0.2"));
        let ni_in = f.add_iface(nat, Mac::host_nic(2), Ip::parse("10.0.0.1"));
        let ni_out = f.add_iface(nat, Mac::host_nic(3), Ip::parse("203.0.113.9"));
        let ii = f.add_iface(inet, Mac::host_nic(4), Ip::parse("198.51.100.1"));
        f.connect(host, hi, nat, ni_in);
        f.connect(nat, ni_out, inet, ii);
        f.add_route(host, Ip::parse("0.0.0.0"), 0, hi);
        f.add_route(nat, Ip::parse("10.0.0.0"), 24, ni_in);
        f.add_route(nat, Ip::parse("0.0.0.0"), 0, ni_out);
        f.add_route(inet, Ip::parse("0.0.0.0"), 0, ii);
        (f, host, nat, inet)
    }

    #[test]
    fn nat_rewrites_source() {
        let (mut f, host, _, inet) = nat_topology();
        let status = f.send(
            host,
            Packet::tcp(Ip::parse("10.0.0.2"), Ip::parse("198.51.100.1"), 443, 1000),
        );
        assert_eq!(
            status,
            DeliveryStatus::Delivered {
                node: inet,
                hops: 2
            }
        );
        // On the WAN link, the private source must not appear.
        let wan = f.tracer().on_link(1);
        assert_eq!(wan.len(), 1);
        assert_eq!(wan[0].packet.src, Ip::parse("203.0.113.9"));
        assert!(!f
            .tracer()
            .on_link(1)
            .iter()
            .any(|e| e.packet.src == Ip::parse("10.0.0.2")));
    }

    #[test]
    fn inbound_without_mapping_dropped() {
        let (mut f, _host, nat, inet) = nat_topology();
        let status = f.send(
            inet,
            Packet::tcp(Ip::parse("198.51.100.1"), Ip::parse("203.0.113.9"), 80, 100),
        );
        assert_eq!(
            status,
            DeliveryStatus::Dropped {
                at: nat,
                reason: DropReason::NoNatMapping
            }
        );
    }

    #[test]
    fn inbound_with_mapping_delivered() {
        let (mut f, host, nat, inet) = nat_topology();
        // Outbound first establishes the mapping.
        f.send(
            host,
            Packet::tcp(Ip::parse("10.0.0.2"), Ip::parse("198.51.100.1"), 443, 100),
        );
        let status = f.send(
            inet,
            Packet::tcp(
                Ip::parse("198.51.100.1"),
                Ip::parse("203.0.113.9"),
                443,
                100,
            ),
        );
        assert_eq!(status, DeliveryStatus::Delivered { node: nat, hops: 1 });
    }

    #[test]
    fn no_route_drops() {
        let mut f = Fabric::new();
        let a = f.add_node("a", NodeKind::Host);
        let _ = f.add_iface(a, Mac::host_nic(1), Ip::parse("10.0.0.1"));
        let status = f.send(a, Packet::icmp(Ip::parse("10.0.0.1"), Ip::parse("8.8.8.8")));
        assert_eq!(
            status,
            DeliveryStatus::Dropped {
                at: a,
                reason: DropReason::NoRoute
            }
        );
    }

    #[test]
    fn host_does_not_forward() {
        // a --- b --- c with b a mere Host: a's packet to c dies at b.
        let mut f = Fabric::new();
        let a = f.add_node("a", NodeKind::Host);
        let b = f.add_node("b", NodeKind::Host);
        let c = f.add_node("c", NodeKind::Host);
        let ia = f.add_iface(a, Mac::host_nic(1), Ip::parse("10.0.0.1"));
        let ib1 = f.add_iface(b, Mac::host_nic(2), Ip::parse("10.0.0.2"));
        let ib2 = f.add_iface(b, Mac::host_nic(3), Ip::parse("10.0.1.2"));
        let ic = f.add_iface(c, Mac::host_nic(4), Ip::parse("10.0.1.3"));
        f.connect(a, ia, b, ib1);
        f.connect(b, ib2, c, ic);
        f.add_route(a, Ip::parse("0.0.0.0"), 0, ia);
        let status = f.send(
            a,
            Packet::icmp(Ip::parse("10.0.0.1"), Ip::parse("10.0.1.3")),
        );
        assert_eq!(
            status,
            DeliveryStatus::Dropped {
                at: b,
                reason: DropReason::NotForMe
            }
        );
    }

    #[test]
    fn egress_firewall_blocks_before_wire() {
        let (mut f, host, _, _) = nat_topology();
        let mut fw = Firewall::default_drop();
        fw.push(Rule {
            direction: crate::firewall::Direction::Out,
            src: None,
            dst: Some((Ip::parse("10.0.0.0"), 24)),
            proto: None,
            dst_port: None,
            action: Action::Allow,
        });
        f.set_firewall(host, fw);
        let status = f.send(
            host,
            Packet::tcp(Ip::parse("10.0.0.2"), Ip::parse("198.51.100.1"), 443, 100),
        );
        assert!(!status.delivered());
        // Nothing crossed any wire.
        assert!(f.tracer().entries().is_empty());
    }

    #[test]
    fn ingress_firewall_blocks_at_peer() {
        let (mut f, host, nat, _) = nat_topology();
        let mut fw = Firewall::default_drop();
        f.set_firewall(nat, {
            fw.push(Rule::allow_all(crate::firewall::Direction::Out));
            fw
        });
        let status = f.send(
            host,
            Packet::tcp(Ip::parse("10.0.0.2"), Ip::parse("198.51.100.1"), 443, 100),
        );
        assert_eq!(
            status,
            DeliveryStatus::Dropped {
                at: nat,
                reason: DropReason::IngressFiltered
            }
        );
        // The frame did cross the first wire (and was captured).
        assert_eq!(f.tracer().on_link(0).len(), 1);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut f = Fabric::new();
        let r = f.add_node("r", NodeKind::Router);
        let a = f.add_node("a", NodeKind::Host);
        let b = f.add_node("b", NodeKind::Host);
        let ra = f.add_iface(r, Mac::host_nic(1), Ip::parse("10.0.0.1"));
        let rb = f.add_iface(r, Mac::host_nic(2), Ip::parse("10.0.1.1"));
        let ia = f.add_iface(a, Mac::host_nic(3), Ip::parse("10.0.0.2"));
        let ib = f.add_iface(b, Mac::host_nic(4), Ip::parse("10.0.1.2"));
        f.connect(r, ra, a, ia);
        f.connect(r, rb, b, ib);
        f.add_route(r, Ip::parse("0.0.0.0"), 0, ra); // default to a
        f.add_route(r, Ip::parse("10.0.1.0"), 24, rb); // specific to b
        let src = f.add_node("src", NodeKind::Host);
        let is = f.add_iface(src, Mac::host_nic(5), Ip::parse("10.0.2.2"));
        let r3 = f.add_iface(r, Mac::host_nic(6), Ip::parse("10.0.2.1"));
        f.connect(src, is, r, r3);
        f.add_route(src, Ip::parse("0.0.0.0"), 0, is);
        let status = f.send(
            src,
            Packet::icmp(Ip::parse("10.0.2.2"), Ip::parse("10.0.1.2")),
        );
        assert_eq!(status, DeliveryStatus::Delivered { node: b, hops: 2 });
    }

    #[test]
    fn ttl_guard_stops_loops() {
        // Two routers pointing default routes at each other.
        let mut f = Fabric::new();
        let r1 = f.add_node("r1", NodeKind::Router);
        let r2 = f.add_node("r2", NodeKind::Router);
        let i1 = f.add_iface(r1, Mac::host_nic(1), Ip::parse("10.0.0.1"));
        let i2 = f.add_iface(r2, Mac::host_nic(2), Ip::parse("10.0.0.2"));
        f.connect(r1, i1, r2, i2);
        f.add_route(r1, Ip::parse("0.0.0.0"), 0, i1);
        f.add_route(r2, Ip::parse("0.0.0.0"), 0, i2);
        let status = f.send(
            r1,
            Packet::icmp(Ip::parse("10.0.0.1"), Ip::parse("8.8.8.8")),
        );
        assert!(matches!(
            status,
            DeliveryStatus::Dropped {
                reason: DropReason::TtlExpired,
                ..
            }
        ));
    }
}
