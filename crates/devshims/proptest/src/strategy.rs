//! The [`Strategy`] trait and the built-in strategies the workspace uses.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_in(0..self.arms.len());
        self.arms[i].new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types that can be generated unconstrained; used through [`any`].
pub trait Arbitrary {
    /// Generates an unconstrained random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy generating unconstrained values of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` entry point: unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only — what property tests over rates/sizes expect.
        rng.next_f64() * 2e9 - 1e9
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )+
    };
}

range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )+
    };
}

range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// String strategies from a regex-lite pattern: sequences of literal
/// characters and `[a-z0-9]`-style classes, each optionally repeated
/// `{m}` / `{m,n}` times. Covers the patterns used in the workspace
/// (e.g. `"[a-z]{1,12}"`, plain literals in `prop_oneof!`).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (choices, lo, hi) in &atoms {
            let n = if lo == hi {
                *lo
            } else {
                rng.usize_in(*lo..hi + 1)
            };
            for _ in 0..n {
                let i = rng.usize_in(0..choices.len());
                out.push(choices[i]);
            }
        }
        out
    }
}

/// One pattern atom: candidate characters + repetition bounds.
type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (a, b) = (chars[j], chars[j + 2]);
                    for c in a..=b {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("repeat lower bound"),
                    b.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((choices, lo, hi));
    }
    atoms
}
