//! Offline drop-in shim for the `proptest` property-testing crate.
//!
//! The build container has no crates.io access, so this crate implements the
//! subset of the proptest API the workspace's `tests/prop.rs` suites use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`/`boxed`, [`prop_oneof!`] unions,
//! * `any::<T>()` for primitive ints, arrays and [`sample::Index`],
//! * [`collection::vec`] / [`collection::btree_map`] with size ranges,
//! * numeric `Range` strategies, tuple strategies, and literal/char-class
//!   string strategies (`"[a-z]{1,12}"`),
//! * `prop_assert!`-family macros and `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking: cases are generated from a
//! deterministic per-test RNG (seeded by test name + case index), so any
//! failure reproduces exactly on re-run.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with at most `size.end - 1` entries.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates maps from `key`/`value` strategies; duplicate keys collapse,
    /// so the final size may be below the drawn target (as in proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len)
                .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
                .collect()
        }
    }
}

/// Sampling helpers (`Index`).
pub mod sample {
    use crate::strategy::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a runtime-sized collection, as in proptest.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// Maps this abstract index onto a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Everything a prop test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each contained `#[test] fn name(pat in strategy, ..) { body }` over
/// many generated cases. Supports a leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg).cases as usize; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ 48usize; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cases:expr; $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: usize = $cases;
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    // One closure per case so `prop_assume!` can skip the
                    // remainder of the case with a plain `return`.
                    let mut __run = |__rng: &mut $crate::test_runner::TestRng| {
                        $( let $p = $crate::strategy::Strategy::new_value(&($s), __rng); )+
                        $body
                    };
                    __run(&mut __rng);
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current generated case when its inputs don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
