//! Deterministic RNG and run configuration for the proptest shim.

use std::ops::Range;

/// Per-test configuration; only `cases` is honored by the shim.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

/// SplitMix64-based RNG, seeded from the test path and case index so every
/// failure reproduces bit-for-bit on re-run.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(h ^ case.wrapping_mul(0x9e3779b97f4a7c15))
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}
