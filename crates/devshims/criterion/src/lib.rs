//! Offline drop-in shim for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access, so this crate provides the
//! subset of the criterion API the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Throughput`, the `criterion_group!`
//! / `criterion_main!` macros and `black_box` — backed by a real measuring
//! loop (warm-up, auto-scaled iteration batches, median-of-samples).
//!
//! Output is one line per benchmark:
//!
//! ```text
//! primitives/aead_seal_64k  time:   61.21 us/iter   thrpt: 1021.2 MiB/s
//! ```
//!
//! Set `NYMIX_BENCH_JSON=/path/out.json` to also append machine-readable
//! records (used to produce `BENCH_crypto.json` / `BENCH_store.json`).
//! Set `NYMIX_BENCH_SMOKE=1` to run each benchmark exactly once with no
//! calibration — the CI smoke job uses this to keep bench bodies
//! compiling and running without paying measurement time.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver (shim).
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_count: 15 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_count: 15,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, None, self.sample_count, &mut f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to report MiB/s or elem/s.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(3);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.throughput, self.sample_count, &mut f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the closure given to `bench_function`; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    f: &mut F,
) {
    // Smoke mode (CI): prove every bench body runs, with one iteration
    // and no calibration, so the job cost is compile + epsilon.
    if std::env::var_os("NYMIX_BENCH_SMOKE").is_some() {
        let t = run_once(f, 1);
        println!(
            "{name:<40} time: {:>12}/iter   (smoke: 1 iteration)",
            fmt_ns(t.as_nanos() as f64)
        );
        return;
    }
    // Warm up and discover an iteration count that runs ~10 ms per sample.
    let mut iters = 1u64;
    loop {
        let t = run_once(f, iters);
        if t >= Duration::from_millis(10) || iters >= 1 << 30 {
            break;
        }
        let scale = if t.is_zero() {
            16
        } else {
            (Duration::from_millis(12).as_nanos() / t.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(scale);
    }
    let mut per_iter_ns: Vec<f64> = (0..samples.max(3))
        .map(|_| run_once(f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let thrpt = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (1024.0 * 1024.0) / (median * 1e-9);
            format!("   thrpt: {mib_s:9.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (median * 1e-9);
            format!("   thrpt: {elem_s:9.0} elem/s")
        }
        None => String::new(),
    };
    println!("{name:<40} time: {:>12}/iter{thrpt}", fmt_ns(median));

    if let Ok(path) = std::env::var("NYMIX_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let bytes = match throughput {
                Some(Throughput::Bytes(b)) => b,
                _ => 0,
            };
            let _ = writeln!(
                file,
                "{{\"bench\": \"{name}\", \"ns_per_iter\": {median:.1}, \"bytes_per_iter\": {bytes}}}"
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
